//! The sans-IO endpoint driving contract.
//!
//! The engine's event loop is generic over a [`TxEndpoint`] /
//! [`RxEndpoint`] pair so different protocols run over byte-for-byte
//! identical channel realisations (common random numbers — the
//! comparison the paper's §4 makes analytically). Endpoints never see
//! the event queue: the loop polls them and owns all scheduling.

use bytes::Bytes;
use sim_core::Instant;
use telemetry::Registry;

/// Size/class metadata the link needs to serialise a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    /// Encoded length in bytes (before FEC expansion).
    pub bytes: usize,
    /// Information frame (true) or control frame (false) — selects the
    /// FEC grade.
    pub is_info: bool,
}

/// The sending side of a protocol.
pub trait TxEndpoint {
    /// The protocol's frame type.
    type Frame: Clone;

    /// Link-up notification.
    fn start(&mut self, now: Instant);
    /// Accept an SDU (returns false if the sender refused it).
    fn push(&mut self, id: u64, payload: Bytes) -> bool;
    /// Next outbound frame, if transmission is allowed now.
    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame>;
    /// Inject a frame from the reverse channel (`ok` = clean).
    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool);
    /// Fire due timers.
    fn on_timeout(&mut self, now: Instant);
    /// Earliest pending timer/transmission instant.
    fn poll_timeout(&self) -> Option<Instant>;
    /// Sending-buffer occupancy in frames (queued + outstanding).
    fn buffered(&self) -> usize;
    /// Sender has declared the link failed.
    fn is_failed(&self) -> bool {
        false
    }
    /// Size/class of a frame.
    fn meta(frame: &Self::Frame) -> FrameMeta;
    /// Drain (holding-time, release) samples recorded since the last call:
    /// `(held_seconds)` per released frame.
    fn drain_holding(&mut self, out: &mut Vec<f64>);
    /// Current flow-controlled sending-rate fraction (1.0 when the
    /// protocol has no rate control).
    fn rate(&self) -> f64 {
        1.0
    }
    /// Total I-frame transmissions so far (first + retransmissions).
    fn transmissions(&self) -> u64;
    /// Retransmissions so far.
    fn retransmissions(&self) -> u64;
    /// Protocol-specific counters for experiment reports.
    fn extra_stats(&self) -> Registry {
        Registry::new()
    }
}

/// The receiving side of a protocol.
pub trait RxEndpoint {
    /// The protocol's frame type.
    type Frame: Clone;

    /// Link-up notification.
    fn start(&mut self, now: Instant);
    /// Inject a frame from the forward channel.
    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool);
    /// Fire due timers (checkpoint emission etc.).
    fn on_timeout(&mut self, now: Instant);
    /// Earliest pending instant.
    fn poll_timeout(&self) -> Option<Instant>;
    /// Next outbound (control) frame.
    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame>;
    /// Next completed delivery: `(id, payload_len)`.
    fn poll_deliver(&mut self, now: Instant) -> Option<(u64, usize)>;
    /// Receive-side buffer occupancy in frames.
    fn occupancy(&self) -> usize;
    /// Size/class of a frame.
    fn meta(frame: &Self::Frame) -> FrameMeta;
    /// Protocol-specific counters for experiment reports.
    fn extra_stats(&self) -> Registry {
        Registry::new()
    }
}
