//! Stop-Go flow control (§3.4): a receiver that processes at half the
//! line rate forces the sender to throttle. The rate trace shows the
//! multiplicative-decrease / stepwise-increase dynamics; overflow
//! discards occur at the receiver but nothing is lost end-to-end.
//!
//! Run with: `cargo run --release --example flow_control`

use harness::{run_lams, Pattern, ScenarioConfig};
use sim_core::Duration;

fn main() {
    let mut cfg = ScenarioConfig::paper_default();
    let t_f = cfg.t_f();
    cfg.pattern = Pattern::Cbr { interval: t_f }; // offered load = line rate
    cfg.n_packets = (1.0 / t_f.as_secs_f64()) as u64; // ~1 s of traffic
    cfg.t_proc = Duration::from_nanos(t_f.as_nanos() * 2); // slow receiver
    cfg.rx_capacity = Some((64, 24)); // small queue, Stop at 24
    cfg.sample_every = Duration::from_millis(2);
    cfg.deadline = Duration::from_secs(60);

    let report = run_lams(&cfg);

    println!(
        "offered load      : line rate (1 SDU per t_f = {:.1} µs)",
        t_f.as_micros_f64()
    );
    println!(
        "receiver service  : one SDU per {:.1} µs (half speed)",
        2.0 * t_f.as_micros_f64()
    );
    println!(
        "delivered         : {}/{}",
        report.delivered_unique, report.offered
    );
    println!("lost              : {}", report.lost);
    println!(
        "overflow discards : {}",
        report
            .extra("lams.receiver.overflow_discards")
            .unwrap_or(0.0)
    );
    println!("elapsed           : {:.1} ms", report.elapsed_s() * 1e3);

    println!("\nsend-rate trace (flow-control fraction of line rate):");
    let decimated = report.rate.decimate(30);
    for &(t, v) in decimated.points() {
        let bar = "#".repeat((v * 40.0) as usize);
        println!("  {:>9.3} ms  {v:>5.2}  {bar}", t.as_secs_f64() * 1e3);
    }

    assert_eq!(report.lost, 0, "congestion must not translate into loss");
    let min_rate = report
        .rate
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum rate reached: {min_rate:.2} (Stop-Go engaged)");
}
