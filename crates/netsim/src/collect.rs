//! The measurement contract the engine feeds.
//!
//! The engine is generic over its collector so the harness can keep its
//! report machinery (resequencer-based dedup, delay summaries, JSON
//! rendering) out of this crate. The engine calls these hooks at the
//! exact points the original hand-rolled loops did: `on_push` when an
//! SDU enters a source sender, `on_deliver` when a sink receiver
//! completes a delivery, `on_holding` after holding samples drain, and
//! `sample` on the periodic sampling tick.

use sim_core::Instant;

/// Per-flow measurement hooks driven by the engine.
pub trait Collect {
    /// An SDU entered the flow's source sender.
    fn on_push(&mut self, now: Instant, id: u64);
    /// The flow's sink receiver completed a delivery.
    fn on_deliver(&mut self, now: Instant, id: u64);
    /// A batch of sender holding-time samples (seconds).
    fn on_holding(&mut self, samples: &[f64]);
    /// Periodic occupancy sample: sender buffer, worst receiver buffer,
    /// flow-controlled rate fraction.
    fn sample(&mut self, now: Instant, tx_buffered: usize, rx_occupancy: usize, rate: f64);
    /// Unique deliveries so far — drives the run-completion check.
    fn delivered_unique(&self) -> u64;
}
