//! Benchmark kernels shared by the criterion benches (`benches/`) and
//! the `bench_suite` binary that `scripts/bench.py` drives.
//!
//! Two kinds of kernel live here:
//!
//! * **Micro-kernels** exercising the simulation core's hot paths in
//!   isolation: the [`sim_core::EventQueue`] schedule/pop/cancel/
//!   reschedule mix, [`telemetry::Registry`] counter increments (name
//!   lookup vs pre-resolved handle), and trace emission (the disabled
//!   fast path and the full JSONL render+write path).
//! * **Experiment kernels** running each quick-sized paper experiment
//!   through [`harness::experiments::run_by_id`] and draining the
//!   per-thread perf accumulator, so the suite reports the same
//!   events/sec figure as `repro --quick --json`.
//!
//! Every kernel is deterministic (xorshift-derived workloads, fixed
//! seeds) so that run-to-run variance comes from the machine, not the
//! workload, and medians over repetitions are meaningful.

use sim_core::{Duration, EventQueue, Instant, QueueProfile};

/// One timed micro-kernel result.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Kernel name (stable identifier used in `BENCH_*.json`).
    pub name: &'static str,
    /// Iterations executed.
    pub iters: u64,
    /// Primitive operations performed (≥ `iters` for mixed kernels).
    pub ops: u64,
    /// Wall-clock seconds for the whole kernel.
    pub wall_secs: f64,
}

impl MicroResult {
    /// Nanoseconds per primitive operation.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.wall_secs * 1e9 / self.ops as f64
    }

    /// Primitive operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.wall_secs
    }
}

/// One quick experiment kernel result: the experiment's merged queue
/// profile and wall clock, exactly as `repro`'s per-experiment perf
/// block reports them. `perf` is `None` for analysis-only experiments
/// that run no simulations.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`e1`..`e17`).
    pub id: String,
    /// `(merged queue profile, wall seconds, simulation runs)`.
    pub perf: Option<(QueueProfile, f64, u64)>,
}

/// Small deterministic xorshift64* generator for kernel workloads.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn time<F: FnOnce() -> u64>(name: &'static str, iters: u64, f: F) -> MicroResult {
    let start = std::time::Instant::now();
    let ops = f();
    MicroResult {
        name,
        iters,
        ops,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Schedule/pop/cancel/reschedule mix on [`EventQueue`] — the engine's
/// event-loop workload shape: per round, two schedules at pseudorandom
/// future offsets, one reschedule of a pending event to an earlier
/// time (the wake-dedup pattern), one cancel, and two pops.
pub fn queue_mix(iters: u64) -> MicroResult {
    time("event_queue_mix", iters, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = XorShift::new(0x51AB_517E);
        let mut pending = Vec::with_capacity(64);
        let mut now = Instant::ZERO;
        let mut ops = 0u64;
        let mut sink = 0u64;
        for i in 0..iters {
            for _ in 0..2 {
                let at = now + Duration::from_nanos(1 + (rng.next() & 0xFFFF));
                pending.push((at, q.schedule(at, i)));
                ops += 1;
            }
            if pending.len() > 1 {
                let pick = rng.next() as usize % pending.len();
                let (at, id) = pending.swap_remove(pick);
                // Pull the event closer to now, like a wake re-arm.
                let earlier = now + Duration::from_nanos(1 + (at - now).as_nanos() / 2);
                if let Some(new_id) = q.reschedule(id, earlier) {
                    pending.push((earlier, new_id));
                }
                ops += 1;
            }
            if pending.len() > 8 {
                let pick = rng.next() as usize % pending.len();
                let (_, id) = pending.swap_remove(pick);
                q.cancel(id);
                ops += 1;
            }
            for _ in 0..2 {
                if let Some((at, v)) = q.pop() {
                    now = at;
                    sink = sink.wrapping_add(v);
                    pending.retain(|&(t, _)| t > now);
                    ops += 1;
                }
            }
        }
        std::hint::black_box(sink);
        ops
    })
}

/// Pure schedule+pop churn — the steady-state hot path with no
/// cancellations, where per-event overhead dominates.
pub fn queue_hot(iters: u64) -> MicroResult {
    time("event_queue_hot", iters, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = XorShift::new(0xC0FF_EE00);
        let mut now = Instant::ZERO;
        let mut sink = 0u64;
        // Keep a standing population of 32 pending events.
        for i in 0..32 {
            let at = now + Duration::from_nanos(1 + (rng.next() & 0xFFF));
            q.schedule(at, i);
        }
        for i in 0..iters {
            let (at, v) = q.pop().expect("queue is never empty");
            now = at;
            sink = sink.wrapping_add(v);
            let at = now + Duration::from_nanos(1 + (rng.next() & 0xFFF));
            q.schedule(at, i);
        }
        std::hint::black_box(sink);
        iters * 2
    })
}

/// Counter increments through name lookup on every call.
pub fn registry_inc_by_name(iters: u64) -> MicroResult {
    time("registry_inc_name", iters, || {
        let mut reg = telemetry::Registry::new();
        for _ in 0..iters {
            reg.inc("bench.counter.hits");
        }
        std::hint::black_box(reg.get("bench.counter.hits"));
        iters
    })
}

/// Counter increments through a pre-resolved [`telemetry::CounterHandle`]
/// — the hot-path form used by the harness collector.
pub fn registry_inc_by_handle(iters: u64) -> MicroResult {
    time("registry_inc_handle", iters, || {
        let mut reg = telemetry::Registry::new();
        let h = reg.handle("bench.counter.hits");
        for _ in 0..iters {
            reg.inc_handle(h);
        }
        std::hint::black_box(reg.get("bench.counter.hits"));
        iters
    })
}

/// Span open/close on a **disabled** [`profile::Prof`] handle — the
/// cost every instrumented hot path pays when not profiling. Must stay
/// in the same class as [`trace_emit_disabled`] (one branch).
pub fn span_disabled(iters: u64) -> MicroResult {
    time("span_disabled", iters, || {
        let prof = profile::Prof::disabled();
        for i in 0..iters {
            let _g = prof.span("bench.span");
            std::hint::black_box(i);
        }
        iters
    })
}

/// Span open/close with a live profiler — the per-span cost a profiled
/// run pays (clock read, tree walk, refcount round-trip).
pub fn span_enabled(iters: u64) -> MicroResult {
    time("span_enabled", iters, || {
        profile::install();
        let prof = profile::current();
        for i in 0..iters {
            let _g = prof.span("bench.span");
            std::hint::black_box(i);
        }
        let report = profile::take().expect("installed");
        assert_eq!(report.dropped, 0);
        iters
    })
}

/// Trace emission with **no** sink installed — the disabled fast path
/// every simulation pays per protocol event.
pub fn trace_emit_disabled(iters: u64) -> MicroResult {
    time("trace_emit_disabled", iters, || {
        telemetry::uninstall_global();
        let handle = telemetry::global_handle("bench");
        for i in 0..iters {
            handle.emit(Instant::from_nanos(i), || telemetry::TraceEvent::Nak {
                seq: i,
                cp_index: 0,
            });
        }
        iters
    })
}

/// Full JSONL trace path: render each record and write it through the
/// buffered [`telemetry::JsonlSink`] into a discarding writer.
pub fn trace_emit_jsonl(iters: u64) -> MicroResult {
    time("trace_emit_jsonl", iters, || {
        use telemetry::TraceSink;
        let mut sink = telemetry::JsonlSink::to_writer(std::io::sink());
        for i in 0..iters {
            sink.record(&telemetry::TraceRecord {
                t: Instant::from_nanos(i),
                node: "bench",
                event: telemetry::TraceEvent::Nak {
                    seq: i,
                    cp_index: 0,
                },
            });
        }
        sink.flush();
        assert_eq!(sink.dropped(), 0);
        iters
    })
}

/// The default micro suite at a common iteration count.
pub fn run_micro_suite(iters: u64) -> Vec<MicroResult> {
    vec![
        queue_mix(iters),
        queue_hot(iters),
        registry_inc_by_name(iters),
        registry_inc_by_handle(iters),
        span_disabled(iters),
        span_enabled(iters),
        trace_emit_disabled(iters),
        trace_emit_jsonl(iters),
    ]
}

/// Run one quick experiment and capture its merged perf block.
/// Returns `None` for unknown ids.
///
/// Goes through [`harness::runner::run_experiments`] — live protocol
/// monitor included — so the measured events/sec is the **same
/// quantity** `repro --quick --json` reports, and `BENCH_*.json`
/// trajectories are comparable against `repro` perf blocks.
pub fn run_experiment_kernel(id: &str) -> Option<ExperimentResult> {
    let runs = harness::runner::run_experiments(&[id.to_string()], true);
    let run = runs.into_iter().next()?;
    run.output.as_ref()?;
    assert_eq!(run.audit.total_findings, 0, "{id}: protocol audit failed");
    Some(ExperimentResult {
        id: run.id,
        perf: run.perf,
    })
}

/// Run every quick experiment kernel (`e1`..`e17`) in index order.
pub fn run_experiment_suite() -> Vec<ExperimentResult> {
    harness::experiments::ALL
        .iter()
        .filter_map(|id| run_experiment_kernel(id))
        .collect()
}

/// Run every quick experiment with the span profiler on and fold the
/// per-experiment self-profiles into one suite-wide breakdown
/// (call-path-matched tree merge, summed wall clock and counters,
/// absorbed queue-depth samples, one allocation delta for the pass).
///
/// This pass is **separate** from [`run_experiment_suite`]: the timed
/// suite stays unprofiled so the committed events/sec trajectory is
/// never perturbed by profiling overhead.
pub fn run_profiled_suite() -> harness::profile_report::ExperimentProfile {
    use harness::profile_report::ExperimentProfile;
    let ids: Vec<String> = harness::experiments::ALL
        .iter()
        .map(|s| s.to_string())
        .collect();
    let alloc0 = profile::alloc::snapshot();
    let runs = harness::runner::run_experiments_with(&ids, true, true);
    let alloc = profile::alloc::snapshot().map(|now| now.since(&alloc0.unwrap_or_default()));
    let mut agg = ExperimentProfile::default();
    for run in &runs {
        let Some(p) = &run.profile else { continue };
        agg.tree.absorb(&p.tree);
        agg.wall_ns += p.wall_ns;
        agg.dropped += p.dropped;
        agg.truncated += p.truncated;
        agg.queue_depth.absorb(&p.queue_depth);
    }
    agg.alloc = alloc;
    agg
}

/// One point of the core-count scaling sweep: the sharded chain kernel
/// at a fixed workload, one shard count.
#[derive(Clone, Debug)]
pub struct ShardSweepPoint {
    /// Shard (thread) count the simulation was split across.
    pub shards: usize,
    /// Wall-clock seconds for the whole sharded run.
    pub wall_secs: f64,
    /// Events popped across all shard queues. Protocol events are
    /// identical at every count; the total can differ slightly because
    /// wake timers coalesce per shard queue.
    pub popped: u64,
    /// `popped / wall_secs`.
    pub events_per_sec: f64,
    /// Parallel efficiency `Σ busy / (shards × wall)` from the
    /// coordinator's superstep accounting (1.0 for one shard).
    pub efficiency: f64,
    /// Load-imbalance factor `max busy / mean busy` across shards.
    pub imbalance: f64,
}

/// The sharded-chain scaling kernel: one fixed many-hop LAMS-DLC relay
/// chain (the e18 workload shape) run once per shard count. Simulated
/// results must be identical at every count — the sweep asserts the
/// finish instant and the delivery and transmission counts agree — so
/// the only thing that varies is the wall clock.
///
/// Wall-clock scaling is a property of the host: on a single core the
/// extra shards are pure coordination overhead; speedup appears as
/// cores do.
pub fn run_shard_sweep(counts: &[usize]) -> Vec<ShardSweepPoint> {
    let mut base = harness::ScenarioConfig::paper_default();
    base.n_packets = 3_000;
    base.data_residual_ber = 1e-5;
    base.ctrl_residual_ber = 1e-6;
    base.deadline = Duration::from_secs(600);
    let cfg = harness::RelayConfig { hops: 8, base };
    let mut witness: Option<(Instant, u64, u64, u64)> = None;
    counts
        .iter()
        .map(|&shards| {
            let _ = harness::metrics::shard_take(); // isolate this run's accounting
            let r = harness::run_chain_lams(&cfg, shards);
            let shard = harness::metrics::shard_take().map(|acc| acc.profile);
            let key = (
                r.finished_at,
                r.delivered_unique,
                r.transmissions,
                r.retransmissions,
            );
            match &witness {
                None => witness = Some(key),
                Some(k) => assert_eq!(
                    *k, key,
                    "shard sweep must be deterministic across shard counts"
                ),
            }
            ShardSweepPoint {
                shards,
                wall_secs: r.wall_secs,
                popped: r.queue.popped,
                events_per_sec: r.queue.events_per_sec(r.wall_secs),
                efficiency: shard.as_ref().map_or(1.0, |p| p.efficiency()),
                imbalance: shard.as_ref().map_or(1.0, |p| p.imbalance()),
            }
        })
        .collect()
}

/// The default shard-count ladder for the committed baseline.
pub const SHARD_SWEEP_COUNTS: &[usize] = &[1, 2, 4];

/// Fold per-experiment perf into the quick-all total: the merged queue
/// profile, total simulation wall seconds, and total runs.
pub fn total_perf(experiments: &[ExperimentResult]) -> (QueueProfile, f64, u64) {
    let mut total = QueueProfile::default();
    let mut wall = 0.0;
    let mut runs = 0;
    for e in experiments {
        if let Some((q, w, r)) = &e.perf {
            total.absorb(q);
            wall += w;
            runs += r;
        }
    }
    (total, wall, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_kernels_report_ops() {
        for r in run_micro_suite(256) {
            assert!(
                r.ops >= r.iters,
                "{}: {} ops < {} iters",
                r.name,
                r.ops,
                r.iters
            );
            assert!(r.wall_secs >= 0.0);
            assert!(r.ns_per_op() >= 0.0);
        }
    }

    #[test]
    fn micro_names_are_unique() {
        let names: Vec<&str> = run_micro_suite(8).iter().map(|r| r.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn experiment_kernel_captures_perf() {
        let r = run_experiment_kernel("e1").expect("known id");
        let (q, wall, runs) = r.perf.expect("e1 runs simulations");
        assert!(q.popped > 0);
        assert!(wall > 0.0);
        assert!(runs > 0);
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment_kernel("e999").is_none());
    }

    #[test]
    fn disabled_span_stays_near_trace_disabled_cost() {
        // Satellite check for the profiler's disabled fast path: a
        // disabled span open/close must stay within ~2x of the
        // trace-emit disabled branch (both are one Option check). A
        // small absolute floor keeps timer noise at tiny per-op costs
        // from flaking the ratio.
        let iters = 2_000_000;
        // Warm up, then measure; take the best of 3 to shed scheduler
        // noise in CI.
        let best = |f: fn(u64) -> MicroResult| {
            (0..3)
                .map(|_| f(iters).ns_per_op())
                .fold(f64::INFINITY, f64::min)
        };
        let span = best(span_disabled);
        let trace = best(trace_emit_disabled);
        assert!(
            span <= 2.0 * trace + 2.0,
            "disabled span {span:.3} ns/op vs disabled trace {trace:.3} ns/op"
        );
    }

    #[test]
    fn profiled_suite_aggregates_across_experiments() {
        let agg = run_profiled_suite();
        assert!(agg.wall_ns > 0);
        assert!(!agg.tree.is_empty());
        assert_eq!(agg.dropped, 0);
        // The merged tree keeps call-path identity: one "experiment"
        // root covering all 17 experiments' runs.
        let roots: Vec<&str> = agg
            .tree
            .roots()
            .iter()
            .map(|&r| agg.tree.node(r).name)
            .collect();
        assert!(roots.contains(&"experiment"), "{roots:?}");
        assert!(agg.queue_depth.count > 0, "sample ticks recorded depths");
    }

    #[test]
    fn shard_sweep_is_deterministic_and_reports_throughput() {
        let pts = run_shard_sweep(&[1, 2]);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].shards, 1);
        assert_eq!(pts[1].shards, 2);
        for p in &pts {
            assert!(p.popped > 0);
            assert!(p.wall_secs > 0.0);
            assert!(p.events_per_sec > 0.0);
            assert!(p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-9, "{p:?}");
            assert!(p.imbalance >= 1.0, "{p:?}");
        }
        assert_eq!(pts[0].efficiency, 1.0, "one shard is degenerate");
        assert_eq!(pts[0].imbalance, 1.0);
        // The cross-count identity assertion lives inside the sweep;
        // reaching here means 1 and 2 shards agreed.
    }

    #[test]
    fn total_absorbs_all_runs() {
        let a = run_experiment_kernel("e1").expect("known id");
        let b = run_experiment_kernel("e7").expect("known id");
        let (total, wall, runs) = total_perf(&[a.clone(), b.clone()]);
        let (qa, wa, ra) = a.perf.expect("perf");
        let (qb, wb, rb) = b.perf.expect("perf");
        assert_eq!(total.popped, qa.popped + qb.popped);
        assert!((wall - (wa + wb)).abs() < 1e-12);
        assert_eq!(runs, ra + rb);
    }
}
