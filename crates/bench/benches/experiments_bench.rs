//! One bench per paper artifact: each target regenerates the
//! corresponding table/figure kernel (quick-sized) — run
//! `cargo bench -p bench --bench experiments_bench` to time the full
//! regeneration, or `cargo run -p harness --bin repro` to print the
//! results themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments;
use std::hint::black_box;

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function(id, |b| {
        b.iter(|| {
            let out = experiments::run_by_id(black_box(id), true).expect("known id");
            black_box(out.tables.len())
        })
    });
    g.finish();
}

fn e1(c: &mut Criterion) {
    bench_experiment(c, "e1");
}
fn e2(c: &mut Criterion) {
    bench_experiment(c, "e2");
}
fn e3(c: &mut Criterion) {
    bench_experiment(c, "e3");
}
fn e4(c: &mut Criterion) {
    bench_experiment(c, "e4");
}
fn e5(c: &mut Criterion) {
    bench_experiment(c, "e5");
}
fn e6(c: &mut Criterion) {
    bench_experiment(c, "e6");
}
fn e7(c: &mut Criterion) {
    bench_experiment(c, "e7");
}
fn e8(c: &mut Criterion) {
    bench_experiment(c, "e8");
}
fn e9(c: &mut Criterion) {
    bench_experiment(c, "e9");
}
fn e10(c: &mut Criterion) {
    bench_experiment(c, "e10");
}
fn e11(c: &mut Criterion) {
    bench_experiment(c, "e11");
}
fn e12(c: &mut Criterion) {
    bench_experiment(c, "e12");
}
fn e13(c: &mut Criterion) {
    bench_experiment(c, "e13");
}
fn e14(c: &mut Criterion) {
    bench_experiment(c, "e14");
}
fn e15(c: &mut Criterion) {
    bench_experiment(c, "e15");
}
fn e16(c: &mut Criterion) {
    bench_experiment(c, "e16");
}
fn e17(c: &mut Criterion) {
    bench_experiment(c, "e17");
}

criterion_group!(
    benches, e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14, e15, e16, e17
);
criterion_main!(benches);
