//! Optimal frame length (§1's NBDT discussion: absolute numbering
//! "allows the frame size to be controlled for the optimal size" —
//! LAMS-DLC's bounded renumbering gives the same freedom).
//!
//! For payload `L` bits, per-frame overhead `OH` bits (header + FCS +
//! the FEC tail), and residual bit error rate `p`, the user-goodput
//! fraction of a NAK-based protocol at saturation is approximately
//!
//! ```text
//! g(L) = L / (L + OH) · (1 − p)^(L + OH)
//! ```
//!
//! (the fraction of each slot that is payload, times the probability the
//! frame needs no retransmission; `1/(1−P_F) = s̄` retransmissions cost a
//! slot each). Maximising over `L` gives the classic optimum
//!
//! ```text
//! L* = OH/2 · (√(1 − 4 / (OH·ln(1−p))) − 1)
//! ```

use crate::params::frame_error_prob;

/// Goodput fraction for payload `l_bits`, overhead `oh_bits`, residual
/// BER `p` (the `g(L)` above).
pub fn goodput_fraction(l_bits: f64, oh_bits: f64, p: f64) -> f64 {
    assert!(l_bits > 0.0 && oh_bits >= 0.0);
    let total = l_bits + oh_bits;
    let p_ok = 1.0 - frame_error_prob(p, total.round() as u64);
    (l_bits / total) * p_ok
}

/// The optimal payload length in bits. Returns `None` when `p` is 0 (the
/// optimum is unbounded — bigger is always better on a clean channel).
pub fn optimal_payload_bits(oh_bits: f64, p: f64) -> Option<f64> {
    assert!(oh_bits > 0.0, "overhead must be positive");
    if p <= 0.0 {
        return None;
    }
    let ln1p = f64::ln_1p(-p); // negative
    let disc = 1.0 - 4.0 / (oh_bits * ln1p);
    Some(oh_bits / 2.0 * (disc.sqrt() - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_has_no_finite_optimum() {
        assert_eq!(optimal_payload_bits(200.0, 0.0), None);
    }

    #[test]
    fn optimum_is_a_maximum_of_goodput() {
        for p in [1e-6, 1e-5, 1e-4] {
            let oh = 200.0;
            let l = optimal_payload_bits(oh, p).unwrap();
            assert!(l > 0.0, "p={p}: l={l}");
            let g = goodput_fraction(l, oh, p);
            // Strictly better than ±20% perturbations.
            assert!(g > goodput_fraction(l * 0.8, oh, p), "p={p}");
            assert!(g > goodput_fraction(l * 1.2, oh, p), "p={p}");
        }
    }

    #[test]
    fn optimum_shrinks_with_error_rate() {
        let oh = 200.0;
        let l5 = optimal_payload_bits(oh, 1e-5).unwrap();
        let l4 = optimal_payload_bits(oh, 1e-4).unwrap();
        assert!(l4 < l5, "l4={l4} l5={l5}");
    }

    #[test]
    fn optimum_grows_with_overhead() {
        let p = 1e-5;
        let small = optimal_payload_bits(100.0, p).unwrap();
        let large = optimal_payload_bits(400.0, p).unwrap();
        assert!(large > small);
    }

    #[test]
    fn paper_regime_scale() {
        // At residual 1e-6 with ~200-bit overhead the optimum is tens of
        // kilobits — i.e. the paper's 1 kB frames sit below it (header
        // amortisation dominates), while at 1e-4 the optimum drops to
        // ~1-2 kbit.
        let l6 = optimal_payload_bits(200.0, 1e-6).unwrap();
        assert!(l6 > 8_000.0, "l6={l6}");
        let l4 = optimal_payload_bits(200.0, 1e-4).unwrap();
        assert!(l4 < 8_000.0, "l4={l4}");
    }

    #[test]
    fn goodput_fraction_limits() {
        // Tiny payload: overhead dominates. Huge payload: errors dominate.
        let p = 1e-4;
        let oh = 200.0;
        assert!(goodput_fraction(1.0, oh, p) < 0.01);
        assert!(goodput_fraction(1e6, oh, p) < 0.01);
    }
}
