//! Multi-pass transfers: a bulk dataset carried across *successive
//! visibility windows* of a satellite pair.
//!
//! §1–2 of the paper define the LAMS environment by its short link
//! lifetimes ("in the order of several minutes") and the retargeting
//! overhead that consumes the start of each window. A transfer larger
//! than one pass must therefore survive link teardown: whatever is
//! undelivered when the window closes re-enters the sending buffer for
//! the next pass (the datagram-service model — the network layer owns
//! the data, the DLC owns one link's lifetime).

use crate::metrics::RunReport;
use crate::scenario::{run_lams_in, ScenarioConfig, ScenarioQueue};
use orbit::{visibility_windows, LinkConstraints, LinkProfile, Satellite};
use sim_core::{Duration, EventQueue};

/// One pass's outcome.
#[derive(Clone, Debug)]
pub struct PassSummary {
    /// Window start, seconds after epoch.
    pub start_s: f64,
    /// Usable transfer time after retargeting, seconds.
    pub usable_s: f64,
    /// SDUs offered at the start of the pass.
    pub offered: u64,
    /// SDUs delivered during the pass.
    pub delivered: u64,
    /// Whether the pass ended by exhausting its window (vs finishing the
    /// backlog early).
    pub window_exhausted: bool,
}

/// Outcome of a multi-pass transfer.
#[derive(Clone, Debug)]
pub struct MultiPassReport {
    /// Per-pass summaries, in order.
    pub passes: Vec<PassSummary>,
    /// Total SDUs delivered across all passes.
    pub total_delivered: u64,
    /// SDUs never delivered within the horizon.
    pub remaining: u64,
    /// Wall time from epoch to the completion of the last needed pass,
    /// seconds (includes inter-pass gaps).
    pub total_time_s: f64,
}

/// Transfer `total` SDUs between `a` and `b` across visibility windows
/// inside `[0, horizon_s]`, spending `retarget_s` of each window on
/// acquisition. Link parameters (rate, BER, protocol knobs) come from
/// `base`; its traffic/deadline fields are overridden per pass.
pub fn run_multi_pass(
    a: &Satellite,
    b: &Satellite,
    total: u64,
    base: &ScenarioConfig,
    retarget_s: f64,
    horizon_s: f64,
) -> MultiPassReport {
    run_multi_pass_limited(a, b, total, base, retarget_s, horizon_s, None)
}

/// [`run_multi_pass`] with an optional per-pass transmit-time cap
/// (operational constraints — power/thermal budgets — often allow less
/// than the full geometric window).
#[allow(clippy::too_many_arguments)]
pub fn run_multi_pass_limited(
    a: &Satellite,
    b: &Satellite,
    total: u64,
    base: &ScenarioConfig,
    retarget_s: f64,
    horizon_s: f64,
    pass_limit_s: Option<f64>,
) -> MultiPassReport {
    let windows = visibility_windows(a, b, horizon_s, 5.0, &LinkConstraints::default());
    let mut remaining = total;
    let mut passes = Vec::new();
    let mut total_time_s = 0.0;
    // One event queue serves every pass: successive windows reuse its
    // heap allocation instead of growing a fresh one per pass.
    let mut q: ScenarioQueue<lams_dlc::Frame> = EventQueue::new();
    for (k, w) in windows.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let profile = LinkProfile::build(a, b, *w, 5.0, retarget_s);
        let usable = match pass_limit_s {
            Some(lim) => profile.usable_s().min(lim),
            None => profile.usable_s(),
        };
        if usable <= 1.0 {
            continue; // window too short to even acquire
        }
        let mut cfg = base.clone();
        cfg.seed = base.seed.wrapping_add(77 * (k as u64 + 1));
        cfg.n_packets = remaining;
        cfg.alpha = Duration::from_secs_f64(2.0 * profile.alpha_s());
        cfg.profile = Some((profile, retarget_s));
        cfg.deadline = Duration::from_secs_f64(usable);
        let report: RunReport = run_lams_in(&cfg, &mut q);
        let delivered = report.delivered_unique;
        let exhausted = report.deadline_hit || report.link_failed;
        passes.push(PassSummary {
            start_s: w.start_s,
            usable_s: usable,
            offered: remaining,
            delivered,
            window_exhausted: exhausted,
        });
        remaining -= delivered.min(remaining);
        total_time_s = w.start_s
            + retarget_s
            + if exhausted {
                usable
            } else {
                report.elapsed_s()
            };
        if remaining == 0 {
            break;
        }
    }
    MultiPassReport {
        passes,
        total_delivered: total - remaining,
        remaining,
        total_time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Satellite, Satellite) {
        (
            Satellite::new(1000.0, 80.0, 0.0, 0.0),
            Satellite::new(1000.0, 80.0, 90.0, 0.0),
        )
    }

    fn base() -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_default();
        c.data_residual_ber = 1e-6;
        c.ctrl_residual_ber = 1e-7;
        c
    }

    #[test]
    fn small_transfer_fits_one_pass() {
        let (a, b) = pair();
        let horizon = 2.0 * a.period_s();
        let r = run_multi_pass(&a, &b, 20_000, &base(), 30.0, horizon);
        assert_eq!(r.total_delivered, 20_000);
        assert_eq!(r.remaining, 0);
        assert_eq!(r.passes.len(), 1, "20k frames fit in one pass");
        assert!(!r.passes[0].window_exhausted);
    }

    #[test]
    fn huge_transfer_spans_passes() {
        // Throttled link + capped pass time force multiple passes at a
        // test-friendly frame count.
        let (a, b) = pair();
        let mut cfg = base();
        cfg.rate_bps = 2e6; // 2 Mbps test link: ~120 frames/s
        let horizon = 4.0 * a.period_s();
        let total = 6_000; // ≈ 1.7 pass-loads at the 30 s cap below
        let r = super::run_multi_pass_limited(&a, &b, total, &cfg, 30.0, horizon, Some(30.0));
        assert!(
            r.passes.len() >= 2,
            "expected multiple passes: {:?}",
            r.passes.len()
        );
        assert!(
            r.passes[0].window_exhausted,
            "first pass must fill its window"
        );
        assert!(r.total_delivered > 0);
        // Deliveries are cumulative and never exceed the offer.
        let sum: u64 = r.passes.iter().map(|p| p.delivered).sum();
        assert_eq!(sum, r.total_delivered);
        assert_eq!(r.total_delivered + r.remaining, total);
    }

    #[test]
    fn zero_transfer_trivially_done() {
        let (a, b) = pair();
        let r = run_multi_pass(&a, &b, 0, &base(), 30.0, 7000.0);
        assert_eq!(r.total_delivered, 0);
        assert_eq!(r.remaining, 0);
        assert!(r.passes.is_empty());
    }
}
