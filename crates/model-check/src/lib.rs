#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # model-check
//!
//! Deterministic adversarial model checking for the sans-IO LAMS-DLC
//! machines. The explorer itself depends on `proto-core` and
//! `lams-dlc` only — no simulator: it is the existence proof that the
//! protocol state machines can be explored as pure functions of
//! `(time, frame)` inputs. (`telemetry` is used at the edges, for
//! machine-readable coverage documents and replayable failure
//! artifacts — never inside the exploration itself.)
//!
//! Each [`Schedule`] derives, from a single index, a seeded channel
//! adversary that may **drop**, **duplicate**, **reorder** (extra
//! delay), or **corrupt** frames in either direction, and may bound the
//! channel's in-flight **capacity** (overflow behaves as loss). The
//! explorer advances a virtual clock from event to event — next frame
//! arrival or next machine deadline — exactly like a host would, and
//! checks on every step:
//!
//! * **exactly-once, in-order delivery** — the resequenced application
//!   stream is `0, 1, 2, …` with no duplicate and no gap;
//! * **monotone wire numbering** — every information frame the sender
//!   emits carries a strictly larger logical sequence number than the
//!   previous one (renumbering never reuses);
//! * **bounded numbering** — every frame survives a wire round-trip
//!   (`wire::encode` → `wire::decode` against the receiver's current
//!   reference); if the compressed sequence window were ever outrun,
//!   the decode would disagree with the original frame;
//! * **progress** — with SDUs undelivered there is always a pending
//!   arrival or an armed timer, and the whole run finishes within a
//!   generous step budget.
//!
//! A run ends in [`Outcome::Complete`] when every SDU has been
//! delivered and the sender has released every buffer, or in
//! [`Outcome::LinkFailed`] when the sender's failure timer fired — the
//! protocol's *declared* terminal state, acceptable only because the
//! adversary really was severing the link ([`Schedule::drop_pct`] or
//! [`Schedule::corrupt_pct`] non-zero).

use bytes::Bytes;
use lams_dlc::{
    wire, Frame, LamsConfig, PacketId, Receiver, Resequencer, RxStatus, Sender, SenderState,
};
use proto_core::{Duration, Instant};
use telemetry::Json;

mod rng;
pub use rng::Rng;

/// One adversarial channel schedule, fully determined by its fields.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// RNG seed for every per-frame adversary decision.
    pub seed: u64,
    /// SDUs to transfer.
    pub sdus: u64,
    /// Percent of frames dropped outright.
    pub drop_pct: u8,
    /// Percent of frames duplicated (the copy takes a longer path).
    pub dup_pct: u8,
    /// Percent of frames given extra delay (causes reordering).
    pub reorder_pct: u8,
    /// Percent of frames delivered payload-corrupted: information
    /// frames take the receiver's NAK path, control frames are dropped
    /// by the sender's FEC check — the paper's corrupt-feedback case.
    pub corrupt_pct: u8,
    /// Channel capacity: frames in flight beyond this are lost
    /// (`usize::MAX` = unbounded).
    pub capacity: usize,
    /// Known-bad-machine fault: after the sender's `n`-th information
    /// frame emission, the harness replays the *first* emitted
    /// information frame as if a buggy sender re-emitted it without
    /// renumbering — a guaranteed monotone-numbering violation (use
    /// `n ≥ 2`). `0` disables the fault; the standard sweep never sets
    /// it. This exists to prove the checker and its failure artifacts
    /// work end to end.
    pub replay_stale_after: u64,
}

impl Schedule {
    /// Derive the `index`-th schedule of the standard sweep: a
    /// deterministic spread over loss, duplication, reordering,
    /// corruption and capacity regimes (including the clean channel).
    pub fn derive(index: u64) -> Schedule {
        let mut r = Rng::new(0x9E37_79B9_7F4A_7C15 ^ (index.wrapping_mul(0xA24B_AED4_963E_E407)));
        let seed = r.next_u64();
        Schedule {
            seed,
            sdus: [20, 50, 100][(r.next_u64() % 3) as usize],
            drop_pct: [0, 5, 10, 20, 30][(r.next_u64() % 5) as usize],
            dup_pct: [0, 5, 15][(r.next_u64() % 3) as usize],
            reorder_pct: [0, 10, 25][(r.next_u64() % 3) as usize],
            corrupt_pct: [0, 5, 15][(r.next_u64() % 3) as usize],
            capacity: [8, 32, usize::MAX, usize::MAX][(r.next_u64() % 4) as usize],
            replay_stale_after: 0,
        }
    }

    fn is_adversarial(&self) -> bool {
        self.drop_pct > 0 || self.corrupt_pct > 0 || self.capacity != usize::MAX
    }

    /// The artifact-header JSON form: every field exactly (capacities
    /// past 2⁵³ round-trip via exact-integer JSON).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.into()),
            ("sdus", self.sdus.into()),
            ("drop_pct", u64::from(self.drop_pct).into()),
            ("dup_pct", u64::from(self.dup_pct).into()),
            ("reorder_pct", u64::from(self.reorder_pct).into()),
            ("corrupt_pct", u64::from(self.corrupt_pct).into()),
            ("capacity", (self.capacity as u64).into()),
            ("replay_stale_after", self.replay_stale_after.into()),
        ])
    }

    /// Parse the artifact-header form back.
    pub fn from_json(v: &Json) -> Result<Schedule, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("schedule field {name} missing or not an integer"))
        };
        let pct = |name: &str| -> Result<u8, String> {
            let n = field(name)?;
            u8::try_from(n).map_err(|_| format!("schedule field {name} out of range: {n}"))
        };
        Ok(Schedule {
            seed: field("seed")?,
            sdus: field("sdus")?,
            drop_pct: pct("drop_pct")?,
            dup_pct: pct("dup_pct")?,
            reorder_pct: pct("reorder_pct")?,
            corrupt_pct: pct("corrupt_pct")?,
            capacity: field("capacity")? as usize,
            replay_stale_after: field("replay_stale_after")?,
        })
    }
}

/// What one schedule (or a whole sweep) actually exercised: adversary
/// actions that fired, protocol recovery machinery that ran, and
/// sender state transitions observed. A sweep whose coverage shows a
/// zero for some knob proved nothing about that knob.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coverage {
    /// Frames dropped by the random-loss knob.
    pub drops: u64,
    /// Frames duplicated.
    pub dups: u64,
    /// Frames delayed onto a reordering path.
    pub reorders: u64,
    /// Frames delivered payload-corrupted.
    pub corruptions: u64,
    /// Frames lost to the capacity bound.
    pub capacity_losses: u64,
    /// Checkpoints the receiver emitted.
    pub checkpoints: u64,
    /// Sender retransmissions.
    pub retransmissions: u64,
    /// Request-NAK probes (enforced recovery entries).
    pub request_naks: u64,
    /// Enforced-NAK answers from the receiver.
    pub enforced_naks: u64,
    /// Explorer steps taken.
    pub steps: u64,
    /// Sender state transitions observed, as `"from->to"` labels with
    /// counts, in first-seen order.
    pub transitions: Vec<(String, u64)>,
}

impl Coverage {
    fn transition(&mut self, from: SenderState, to: SenderState) {
        let label = format!("{}->{}", state_name(from), state_name(to));
        match self.transitions.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => self.transitions.push((label, 1)),
        }
    }

    /// Fold another coverage record into this one.
    pub fn absorb(&mut self, other: &Coverage) {
        self.drops += other.drops;
        self.dups += other.dups;
        self.reorders += other.reorders;
        self.corruptions += other.corruptions;
        self.capacity_losses += other.capacity_losses;
        self.checkpoints += other.checkpoints;
        self.retransmissions += other.retransmissions;
        self.request_naks += other.request_naks;
        self.enforced_naks += other.enforced_naks;
        self.steps += other.steps;
        for (label, n) in &other.transitions {
            match self.transitions.iter_mut().find(|(l, _)| l == label) {
                Some((_, total)) => *total += n,
                None => self.transitions.push((label.clone(), *n)),
            }
        }
    }

    /// The `coverage` block of the `lams-dlc.mcheck/1` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("drops", self.drops.into()),
            ("dups", self.dups.into()),
            ("reorders", self.reorders.into()),
            ("corruptions", self.corruptions.into()),
            ("capacity_losses", self.capacity_losses.into()),
            ("checkpoints", self.checkpoints.into()),
            ("retransmissions", self.retransmissions.into()),
            ("request_naks", self.request_naks.into()),
            ("enforced_naks", self.enforced_naks.into()),
            ("steps", self.steps.into()),
            (
                "transitions",
                Json::Obj(
                    self.transitions
                        .iter()
                        .map(|(l, n)| (l.clone(), (*n).into()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn state_name(s: SenderState) -> &'static str {
    match s {
        SenderState::Running => "running",
        SenderState::Enforced => "enforced",
        SenderState::Failed => "failed",
    }
}

/// Terminal state of one schedule run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All SDUs delivered exactly once in order; sender drained.
    Complete {
        /// Explorer steps taken.
        steps: u64,
        /// Virtual time consumed.
        elapsed: Duration,
        /// Sender retransmissions performed.
        retransmissions: u64,
    },
    /// The sender's failure timer fired and it declared the link dead —
    /// legitimate under a severing adversary, an invariant violation
    /// otherwise (reported as [`Violation`], not as this variant).
    LinkFailed {
        /// SDUs that made it through, in order, before the declaration.
        delivered: u64,
    },
}

/// A broken invariant, with enough context to replay the schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The offending schedule (re-run it to reproduce).
    pub schedule: Schedule,
    /// What broke.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} under {:?}", self.what, self.schedule)
    }
}

/// A frame in flight, queued for arrival.
struct InFlight {
    arrival: Instant,
    frame: Frame,
    status: RxStatus,
    /// Tie-break so equal arrival instants pop in send order.
    order: u64,
}

/// One direction of the adversarial channel.
struct AdversarialLink {
    in_flight: Vec<InFlight>,
    base_delay: Duration,
    next_order: u64,
}

impl AdversarialLink {
    fn new(base_delay: Duration) -> Self {
        AdversarialLink {
            in_flight: Vec::new(),
            base_delay,
            next_order: 0,
        }
    }

    /// Apply the adversary's per-frame decisions and enqueue, counting
    /// every decision that actually fired into `cov`.
    fn send(
        &mut self,
        now: Instant,
        frame: Frame,
        sched: &Schedule,
        rng: &mut Rng,
        cov: &mut Coverage,
    ) {
        if self.in_flight.len() >= sched.capacity {
            cov.capacity_losses += 1;
            return; // overflow looks like silence on the wire
        }
        if rng.chance(sched.drop_pct) {
            cov.drops += 1;
            return;
        }
        let status = if rng.chance(sched.corrupt_pct) {
            cov.corruptions += 1;
            RxStatus::PayloadCorrupted
        } else {
            RxStatus::Ok
        };
        let jitter = if rng.chance(sched.reorder_pct) {
            cov.reorders += 1;
            Duration::from_micros(rng.below(5_000))
        } else {
            Duration::ZERO
        };
        let duplicate = rng.chance(sched.dup_pct);
        let arrival = now + self.base_delay + jitter;
        self.push(arrival, frame.clone(), status);
        if duplicate && self.in_flight.len() < sched.capacity {
            cov.dups += 1;
            let late = arrival + Duration::from_micros(1_000 + rng.below(10_000));
            self.push(late, frame, status);
        }
    }

    fn push(&mut self, arrival: Instant, frame: Frame, status: RxStatus) {
        self.in_flight.push(InFlight {
            arrival,
            frame,
            status,
            order: self.next_order,
        });
        self.next_order += 1;
    }

    fn next_arrival(&self) -> Option<Instant> {
        self.in_flight.iter().map(|f| f.arrival).min()
    }

    /// Pop the earliest frame due at or before `now`, if any.
    fn pop_due(&mut self, now: Instant) -> Option<(Frame, RxStatus)> {
        let idx = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, f)| f.arrival <= now)
            .min_by_key(|(_, f)| (f.arrival, f.order))
            .map(|(i, _)| i)?;
        let f = self.in_flight.swap_remove(idx);
        Some((f.frame, f.status))
    }
}

/// Step budget per schedule: far beyond any legitimate run (a clean
/// 100-SDU transfer takes a few thousand steps), so hitting it means
/// livelock.
const MAX_STEPS: u64 = 500_000;

/// Run one schedule to its terminal state, checking every invariant on
/// the way.
pub fn run_schedule(sched: &Schedule) -> Result<Outcome, Violation> {
    let mut cov = Coverage::default();
    run_schedule_with(sched, None, &mut cov)
}

/// [`run_schedule`] plus the per-schedule [`Coverage`] record — which
/// adversary knobs actually fired and which recovery machinery ran.
pub fn run_schedule_observed(sched: &Schedule) -> (Result<Outcome, Violation>, Coverage) {
    let mut cov = Coverage::default();
    let result = run_schedule_with(sched, None, &mut cov);
    (result, cov)
}

/// [`run_schedule_observed`] with the machines traced into `sink`
/// (`telemetry::TraceRecord` stream, node labels `tx`/`rx`/`host`,
/// sim clock domain). Deterministic: the same schedule produces a
/// byte-identical stream — the basis of replayable failure artifacts.
pub fn run_schedule_traced(
    sched: &Schedule,
    sink: telemetry::SharedSink,
) -> (Result<Outcome, Violation>, Coverage) {
    let mut cov = Coverage::default();
    let result = run_schedule_with(sched, Some(sink), &mut cov);
    (result, cov)
}

/// Per-emission invariant checks: monotone wire numbering and the
/// encode→decode round trip against the receiver's current reference.
fn check_emission(
    frame: &Frame,
    last_info_seq: &mut Option<u64>,
    tx_reference: &mut u64,
    receiver_reference: u64,
    modulus: u64,
) -> Result<(), String> {
    if let Frame::Info(ref info) = frame {
        if let Some(prev) = *last_info_seq {
            if info.seq <= prev {
                return Err(format!(
                    "wire numbering not monotone: {} after {prev}",
                    info.seq
                ));
            }
        }
        *last_info_seq = Some(info.seq);
        *tx_reference = (*tx_reference).max(info.seq);
        let encoded = wire::encode(frame, modulus);
        match wire::decode(&encoded, receiver_reference, modulus) {
            Ok(decoded) if decoded == *frame => {}
            other => {
                return Err(format!(
                    "bounded numbering violated: seq {} does not survive the \
                     wire against reference {receiver_reference} (decode: {other:?})",
                    info.seq
                ));
            }
        }
    }
    Ok(())
}

fn run_schedule_with(
    sched: &Schedule,
    trace: Option<telemetry::SharedSink>,
    cov: &mut Coverage,
) -> Result<Outcome, Violation> {
    use proto_core::Machine as _;
    let cfg = LamsConfig::paper_default();
    let modulus = cfg.seq_modulus();
    // Nominal one-way delay just under half the configured round trip,
    // so an unmolested frame meets the paper's deterministic-RTT
    // assumption while any adversary jitter lands it late.
    let base_delay = Duration::from_nanos(cfg.expected_rtt.as_nanos() / 2 - 100_000);

    let violation = |what: String| Violation {
        schedule: sched.clone(),
        what,
    };

    let mut rng = Rng::new(sched.seed);
    let mut sender = Sender::new(cfg.clone());
    let mut receiver = Receiver::new(cfg);
    let mut data_link = AdversarialLink::new(base_delay); // sender → receiver
    let mut feedback_link = AdversarialLink::new(base_delay); // receiver → sender

    // Optional tracing: the machines feed `sink` exactly like they feed
    // a simulator or UDP host, and the checker frames the stream with
    // the same header/run events those hosts emit.
    let host_trace = trace
        .as_ref()
        .map(|s| telemetry::sink_trace(s.clone(), "host"));
    if let Some(sink) = &trace {
        sender.set_trace(telemetry::sink_trace(sink.clone(), "tx"));
        receiver.set_trace(telemetry::sink_trace(sink.clone(), "rx"));
    }

    let mut now = Instant::ZERO;
    if let Some(h) = &host_trace {
        h.emit(now, || telemetry::TraceEvent::TraceHeader {
            clock_domain: "sim",
        });
        h.emit(now, || telemetry::TraceEvent::RunStarted);
    }
    sender.start(now);
    receiver.start(now);

    let mut next_id: u64 = 0;
    let mut expected: u64 = 0;
    let mut reseq = Resequencer::new(0);
    let mut last_info_seq: Option<u64> = None;
    let mut tx_reference: u64 = 0;
    let mut steps: u64 = 0;
    let mut prev_state = sender.state();
    let mut emitted_info: u64 = 0;
    let mut stale_frame: Option<Frame> = None;

    let result = 'run: loop {
        steps += 1;
        if steps > MAX_STEPS {
            break 'run Err(violation(format!(
                "no termination within {MAX_STEPS} steps (delivered {expected}/{})",
                sched.sdus
            )));
        }

        // Feed the sender.
        while next_id < sched.sdus {
            let payload = Bytes::from(vec![(next_id & 0xff) as u8; 32]);
            match sender.push(PacketId(next_id), payload) {
                Ok(()) => next_id += 1,
                Err(_) => break,
            }
        }

        // Fire due timers.
        if sender.poll_timeout().is_some_and(|d| d <= now) {
            sender.on_timeout(now);
        }
        if receiver.poll_timeout().is_some_and(|d| d <= now) {
            receiver.on_timeout(now);
        }

        // Sender transmissions → data link, with the monotone-numbering
        // and wire round-trip checks at the emission point.
        while let Some(frame) = sender.poll_transmit(now) {
            if matches!(frame, Frame::Info(_)) {
                emitted_info += 1;
                if sched.replay_stale_after != 0 {
                    if stale_frame.is_none() {
                        stale_frame = Some(frame.clone());
                    }
                    if emitted_info == sched.replay_stale_after {
                        // The known-bad machine re-emits its first
                        // information frame without renumbering.
                        let stale = stale_frame.take().expect("saved above");
                        if let Err(what) = check_emission(
                            &stale,
                            &mut last_info_seq,
                            &mut tx_reference,
                            receiver.highest_seen(),
                            modulus,
                        ) {
                            break 'run Err(violation(what));
                        }
                        data_link.send(now, stale, sched, &mut rng, cov);
                    }
                }
            }
            if let Err(what) = check_emission(
                &frame,
                &mut last_info_seq,
                &mut tx_reference,
                receiver.highest_seen(),
                modulus,
            ) {
                break 'run Err(violation(what));
            }
            data_link.send(now, frame, sched, &mut rng, cov);
        }

        // Receiver feedback → feedback link, round-tripped against the
        // sender's reference.
        while let Some(frame) = receiver.poll_transmit(now) {
            let encoded = wire::encode(&frame, modulus);
            match wire::decode(&encoded, tx_reference, modulus) {
                Ok(decoded) if decoded == frame => {}
                other => {
                    break 'run Err(violation(format!(
                        "feedback frame does not survive the wire against \
                         reference {tx_reference} (decode: {other:?})"
                    )));
                }
            }
            feedback_link.send(now, frame, sched, &mut rng, cov);
        }

        // Arrivals due now.
        while let Some((frame, status)) = data_link.pop_due(now) {
            receiver.handle_frame(now, frame, status);
        }
        while let Some((frame, status)) = feedback_link.pop_due(now) {
            sender.handle_frame(now, frame, status);
        }

        // Application delivery: resequenced, exactly-once, in order.
        while let Some(d) = receiver.poll_deliver(now) {
            for (pid, _payload) in reseq.offer(d.packet_id, d.payload) {
                if pid.0 != expected {
                    break 'run Err(violation(format!(
                        "delivery order broken: released {} while expecting {expected}",
                        pid.0
                    )));
                }
                expected += 1;
            }
        }
        while sender.poll_event().is_some() {}
        while receiver.poll_event().is_some() {}

        // Sender state transitions (coverage of the recovery machine).
        let state = sender.state();
        if state != prev_state {
            cov.transition(prev_state, state);
            prev_state = state;
        }

        // Terminal states.
        if expected == sched.sdus && sender.buffered() == 0 {
            let stats = sender.stats();
            break 'run Ok(Outcome::Complete {
                steps,
                elapsed: now - Instant::ZERO,
                retransmissions: stats.retransmissions,
            });
        }
        if state == SenderState::Failed {
            if sched.is_adversarial() {
                break 'run Ok(Outcome::LinkFailed {
                    delivered: expected,
                });
            }
            break 'run Err(violation(
                "sender declared link failure on a clean channel".into(),
            ));
        }

        // Advance the clock to the next event.
        let mut next: Option<Instant> = None;
        let mut consider = |c: Option<Instant>| {
            next = match (next, c) {
                (None, c) => c,
                (Some(a), None) => Some(a),
                (Some(a), Some(b)) => Some(a.min(b)),
            };
        };
        consider(sender.poll_timeout());
        consider(receiver.poll_timeout());
        consider(data_link.next_arrival());
        consider(feedback_link.next_arrival());
        match next {
            Some(t) => now = now.max(t),
            None => {
                break 'run Err(violation(format!(
                    "deadlock: no pending event with {} of {} SDUs delivered",
                    expected, sched.sdus
                )));
            }
        }
    };

    // Fold the recovery-machinery counters and close the trace.
    let s = sender.stats();
    let r = receiver.stats();
    cov.steps += steps;
    cov.checkpoints += r.checkpoints_sent;
    cov.retransmissions += s.retransmissions;
    cov.request_naks += s.request_naks;
    cov.enforced_naks += r.enforced_sent;
    if let Some(h) = &host_trace {
        h.emit(now, || telemetry::TraceEvent::RunFinished {
            deadline_hit: result.is_err(),
        });
    }
    result
}

/// Aggregate result of a schedule sweep.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Schedules that delivered everything.
    pub complete: u64,
    /// Schedules ending in a (legitimately) declared link failure.
    pub link_failures: u64,
    /// Invariant violations found.
    pub violations: Vec<Violation>,
    /// Total retransmissions across completed schedules.
    pub retransmissions: u64,
    /// Aggregate coverage across every schedule in the sweep.
    pub coverage: Coverage,
}

impl Report {
    /// The machine-readable `lams-dlc.mcheck/1` sweep document.
    pub fn to_json(&self) -> Json {
        let schedules = self.complete + self.link_failures + self.violations.len() as u64;
        Json::obj([
            ("schema", MCHECK_SCHEMA.into()),
            ("schedules", schedules.into()),
            ("complete", self.complete.into()),
            ("link_failures", self.link_failures.into()),
            ("violations", (self.violations.len() as u64).into()),
            ("retransmissions", self.retransmissions.into()),
            ("coverage", self.coverage.to_json()),
        ])
    }
}

/// Run the standard sweep: schedules `0..count` via [`Schedule::derive`].
pub fn run_sweep(count: u64) -> Report {
    let mut report = Report::default();
    for index in 0..count {
        let sched = Schedule::derive(index);
        let (result, cov) = run_schedule_observed(&sched);
        report.coverage.absorb(&cov);
        match result {
            Ok(Outcome::Complete {
                retransmissions, ..
            }) => {
                report.complete += 1;
                report.retransmissions += retransmissions;
            }
            Ok(Outcome::LinkFailed { .. }) => report.link_failures += 1,
            Err(v) => report.violations.push(v),
        }
    }
    report
}

/// Schema tag of the sweep coverage document ([`Report::to_json`]).
pub const MCHECK_SCHEMA: &str = "lams-dlc.mcheck/1";

/// Schema tag of a replayable failure artifact
/// ([`write_artifact`] / [`read_artifact`]).
pub const ARTIFACT_SCHEMA: &str = "lams-dlc.mcheck-fail/1";

/// Write a replayable failure artifact: one header line carrying the
/// offending [`Schedule`] and the finding text, followed by the full
/// telemetry trace of a deterministic re-run of that schedule. The
/// trace body is a plain `TraceRecord` JSONL stream, so `trace-tools
/// summary`/`audit` can re-audit the artifact offline (the header is
/// skipped as a meta line), and [`read_artifact`] + a fresh run
/// reproduce the identical finding.
pub fn write_artifact(path: &std::path::Path, v: &Violation) -> Result<(), String> {
    use std::io::Write as _;
    let header = Json::obj([
        ("schema", ARTIFACT_SCHEMA.into()),
        ("schedule", v.schedule.to_json()),
        ("finding", v.what.as_str().into()),
    ]);
    let mut file = std::io::BufWriter::new(
        std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?,
    );
    writeln!(file, "{}", header.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    let jsonl = std::rc::Rc::new(std::cell::RefCell::new(telemetry::JsonlSink::to_writer(
        file,
    )));
    let shared: telemetry::SharedSink = jsonl.clone();
    let (replayed, _cov) = run_schedule_traced(&v.schedule, shared);
    jsonl
        .borrow_mut()
        .try_flush()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    // The re-run is deterministic; a diverging verdict means the
    // artifact would not reproduce the finding and must not be trusted.
    match replayed {
        Err(rv) if rv.what == v.what => Ok(()),
        other => Err(format!(
            "artifact re-run diverged: expected {:?}, got {:?}",
            v.what,
            other.err().map(|rv| rv.what)
        )),
    }
}

/// Parse a failure artifact's header: the [`Schedule`] to re-run and
/// the finding string the re-run must reproduce byte-identically.
pub fn read_artifact(path: &std::path::Path) -> Result<(Schedule, String), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let first = text
        .lines()
        .next()
        .ok_or_else(|| format!("{}: empty artifact", path.display()))?;
    let header = Json::parse(first).map_err(|e| format!("artifact header: {e}"))?;
    match header.get("schema").and_then(Json::as_str) {
        Some(s) if s == ARTIFACT_SCHEMA => {}
        other => {
            return Err(format!(
                "artifact schema mismatch: expected {ARTIFACT_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    let sched = header
        .get("schedule")
        .ok_or_else(|| "artifact header has no schedule".to_string())
        .and_then(Schedule::from_json)?;
    let finding = header
        .get("finding")
        .and_then(Json::as_str)
        .ok_or_else(|| "artifact header has no finding".to_string())?
        .to_string();
    Ok((sched, finding))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_completes() {
        let sched = Schedule {
            seed: 7,
            sdus: 50,
            drop_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            corrupt_pct: 0,
            capacity: usize::MAX,
            replay_stale_after: 0,
        };
        match run_schedule(&sched).expect("clean channel must hold invariants") {
            Outcome::Complete {
                retransmissions, ..
            } => assert_eq!(retransmissions, 0, "clean channel needs no retransmission"),
            other => panic!("clean channel did not complete: {other:?}"),
        }
    }

    #[test]
    fn lossy_channel_completes_with_retransmissions() {
        let sched = Schedule {
            seed: 42,
            sdus: 50,
            drop_pct: 20,
            dup_pct: 10,
            reorder_pct: 10,
            corrupt_pct: 10,
            capacity: usize::MAX,
            replay_stale_after: 0,
        };
        match run_schedule(&sched).expect("adversary must not break invariants") {
            Outcome::Complete {
                retransmissions, ..
            } => assert!(retransmissions > 0, "20% loss must force retransmission"),
            Outcome::LinkFailed { .. } => {} // legitimate under this adversary
        }
    }

    #[test]
    fn derived_schedules_are_deterministic() {
        let a = Schedule::derive(123);
        let b = Schedule::derive(123);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.sdus, b.sdus);
        assert_eq!(a.drop_pct, b.drop_pct);
        assert_eq!(a.capacity, b.capacity);
    }

    #[test]
    fn schedule_json_round_trips() {
        let mut sched = Schedule::derive(7);
        sched.replay_stale_after = 3;
        let back = Schedule::from_json(&sched.to_json()).expect("round trip");
        assert_eq!(format!("{sched:?}"), format!("{back:?}"));
    }

    #[test]
    fn lossy_schedule_reports_nonzero_coverage() {
        let sched = Schedule {
            seed: 42,
            sdus: 50,
            drop_pct: 20,
            dup_pct: 10,
            reorder_pct: 10,
            corrupt_pct: 10,
            capacity: usize::MAX,
            replay_stale_after: 0,
        };
        let (result, cov) = run_schedule_observed(&sched);
        result.expect("adversary must not break invariants");
        assert!(cov.drops > 0, "drop knob never fired");
        assert!(cov.dups > 0, "dup knob never fired");
        assert!(cov.reorders > 0, "reorder knob never fired");
        assert!(cov.corruptions > 0, "corrupt knob never fired");
        assert!(cov.checkpoints > 0, "no checkpoint observed");
        assert!(
            cov.retransmissions > 0,
            "20% loss must force retransmission"
        );
        assert!(cov.steps > 0);
    }

    #[test]
    fn stale_replay_fault_is_caught_as_monotone_violation() {
        let sched = Schedule {
            seed: 7,
            sdus: 20,
            drop_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            corrupt_pct: 0,
            capacity: usize::MAX,
            replay_stale_after: 3,
        };
        let v = run_schedule(&sched).expect_err("known-bad machine must violate");
        assert!(
            v.what.contains("not monotone"),
            "expected a monotone-numbering finding, got: {}",
            v.what
        );
    }

    #[test]
    fn failure_artifact_round_trips_to_identical_finding() {
        let sched = Schedule {
            seed: 7,
            sdus: 20,
            drop_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            corrupt_pct: 0,
            capacity: usize::MAX,
            replay_stale_after: 3,
        };
        let v = run_schedule(&sched).expect_err("known-bad machine must violate");
        let dir = std::env::temp_dir().join("lams-dlc-mcheck-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("artifact.jsonl");
        write_artifact(&path, &v).expect("artifact written and self-verified");

        let (sched_back, finding) = read_artifact(&path).expect("header parses");
        let replayed = run_schedule(&sched_back).expect_err("replay must violate");
        assert_eq!(
            replayed.what, finding,
            "replay verdict must be byte-identical"
        );

        // The trace body must be a valid TraceRecord stream that a
        // fresh traced run reproduces byte-for-byte.
        let text = std::fs::read_to_string(&path).expect("read artifact");
        let body: Vec<&str> = text.lines().skip(1).collect();
        assert!(!body.is_empty(), "artifact must carry the trace");
        for line in &body {
            telemetry::parse_line(line).expect("artifact body is a TraceRecord stream");
        }
        let jsonl = std::rc::Rc::new(std::cell::RefCell::new(telemetry::JsonlSink::to_writer(
            Vec::new(),
        )));
        let shared: telemetry::SharedSink = jsonl.clone();
        let _ = run_schedule_traced(&sched_back, shared);
        let fresh = std::rc::Rc::try_unwrap(jsonl)
            .ok()
            .expect("sole owner")
            .into_inner()
            .into_inner();
        let fresh = String::from_utf8(fresh).expect("utf8");
        assert_eq!(
            body.join("\n"),
            fresh.trim_end(),
            "traced replay must be byte-identical"
        );
        std::fs::remove_file(&path).ok();
    }
}
