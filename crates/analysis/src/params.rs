//! The parameter set of the §4 analysis.

use fec::FecGrade;
use orbit::LinkProfile;

/// All quantities the closed-form model depends on. Times in seconds;
/// probabilities dimensionless.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Mean round-trip time `R`.
    pub r: f64,
    /// I-frame transmission time `t_f`.
    pub t_f: f64,
    /// Control-frame transmission time `t_c`.
    pub t_c: f64,
    /// Deterministic processing time `t_proc`.
    pub t_proc: f64,
    /// Checkpoint interval `I_cp` (= `W_cp`).
    pub i_cp: f64,
    /// Cumulation depth `C_depth`.
    pub c_depth: u32,
    /// HDLC timeout slack `α` (`t_out = R + α`).
    pub alpha: f64,
    /// HDLC window `W`.
    pub w: u64,
    /// Probability an I-frame is residually erroneous, `P_F`.
    pub p_f: f64,
    /// Probability a control frame is residually erroneous, `P_C`.
    pub p_c: f64,
}

impl LinkParams {
    /// The paper's representative operating point: 4,000 km link
    /// (R ≈ 26.7 ms), 300 Mbps, 1 kB I-frames (8,192 info bits), 64-byte
    /// control frames, residual BER 1e-6 on I-frames with the stronger
    /// control FEC an order lower, `W_cp = 5 ms`, `C_depth = 3`,
    /// `α = 10 ms`, HDLC window = 1024.
    pub fn paper_default() -> Self {
        let frame_bits = 8.0 * 1024.0;
        let ctrl_bits = 8.0 * 64.0;
        let rate = 300e6;
        LinkParams {
            r: 2.0 * 4000.0 / 299_792.458,
            t_f: frame_bits / rate,
            t_c: ctrl_bits / rate,
            t_proc: 10e-6,
            i_cp: 5e-3,
            c_depth: 3,
            alpha: 10e-3,
            w: 1024,
            p_f: frame_error_prob(1e-6, frame_bits as u64),
            p_c: frame_error_prob(1e-7, ctrl_bits as u64),
        }
    }

    /// Derive `P_F`/`P_C` from a raw channel BER via the two FEC grades
    /// (assumption 4), holding the timing parameters fixed.
    pub fn with_raw_ber(mut self, raw_ber: f64, frame_bits: u64, ctrl_bits: u64) -> Self {
        self.p_f = FecGrade::IFRAME.frame_error_prob(raw_ber, frame_bits);
        self.p_c = FecGrade::CFRAME.frame_error_prob(raw_ber, ctrl_bits);
        self
    }

    /// Derive `P_F`/`P_C` directly from residual BERs (the paper's own
    /// parameterisation: residual 1e-5–1e-7).
    pub fn with_residual_ber(
        mut self,
        residual_i: f64,
        residual_c: f64,
        frame_bits: u64,
        ctrl_bits: u64,
    ) -> Self {
        self.p_f = frame_error_prob(residual_i, frame_bits);
        self.p_c = frame_error_prob(residual_c, ctrl_bits);
        self
    }

    /// Take `R` and `α` from an orbital link profile
    /// (`t_out = R + α`, §4).
    pub fn with_profile(mut self, profile: &LinkProfile) -> Self {
        self.r = profile.mean_rtt_s();
        self.alpha = profile.alpha_s();
        self
    }

    /// HDLC timeout `t_out = R + α`.
    pub fn t_out(&self) -> f64 {
        self.r + self.alpha
    }

    /// The paper's "link frame length": frames in transit at full rate,
    /// `(D_link · T_data) / (V · L_frame)` — equivalently one-way
    /// propagation over `t_f`.
    pub fn link_frame_length(&self) -> f64 {
        (self.r / 2.0) / self.t_f
    }

    /// Sanity-check ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("r", self.r),
            ("t_f", self.t_f),
            ("t_c", self.t_c),
            ("i_cp", self.i_cp),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.t_proc < 0.0 || self.alpha < 0.0 {
            return Err("t_proc and alpha must be non-negative".into());
        }
        for (name, p) in [("p_f", self.p_f), ("p_c", self.p_c)] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1), got {p}"));
            }
        }
        if self.c_depth == 0 || self.w == 0 {
            return Err("c_depth and w must be positive".into());
        }
        Ok(())
    }
}

/// `1 - (1 - ber)^bits`, computed stably.
pub fn frame_error_prob(ber: f64, bits: u64) -> f64 {
    if ber <= 0.0 || bits == 0 {
        0.0
    } else if ber >= 1.0 {
        1.0
    } else {
        1.0 - f64::exp(bits as f64 * f64::ln_1p(-ber))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        LinkParams::paper_default().validate().unwrap();
    }

    #[test]
    fn default_is_in_paper_regime() {
        let p = LinkParams::paper_default();
        // §2.1: 10–100 ms propagation, 2,000–10,000 km.
        assert!(p.r > 10e-3 && p.r < 100e-3, "r={}", p.r);
        // 1 kB at 300 Mbps ≈ 27 µs.
        assert!((p.t_f - 27.3e-6).abs() < 1e-6);
        // P_F ≈ 8.2e-3 at residual 1e-6 × 8192 bits.
        assert!((p.p_f - 8.16e-3).abs() < 2e-4, "p_f={}", p.p_f);
        assert!(p.p_c < p.p_f, "control frames must be better protected");
    }

    #[test]
    fn link_frame_length_matches_definition() {
        let p = LinkParams::paper_default();
        // 4000 km one way at 300 Mbps, 8192-bit frames:
        // 13.34 ms / 27.3 µs ≈ 489 frames in flight.
        let lfl = p.link_frame_length();
        assert!((lfl - 489.0).abs() < 5.0, "lfl={lfl}");
    }

    #[test]
    fn with_residual_ber_sets_probs() {
        let p = LinkParams::paper_default().with_residual_ber(1e-5, 1e-7, 8192, 512);
        assert!((p.p_f - frame_error_prob(1e-5, 8192)).abs() < 1e-15);
        assert!((p.p_c - frame_error_prob(1e-7, 512)).abs() < 1e-15);
    }

    #[test]
    fn with_raw_ber_uses_grades() {
        let p = LinkParams::paper_default().with_raw_ber(5e-4, 8192, 512);
        assert!(p.p_f > 0.0 && p.p_f < 1.0);
        assert!(p.p_c < p.p_f);
    }

    #[test]
    fn invalid_rejected() {
        let mut p = LinkParams::paper_default();
        p.p_f = 1.0;
        assert!(p.validate().is_err());
        let mut p = LinkParams::paper_default();
        p.r = 0.0;
        assert!(p.validate().is_err());
        let mut p = LinkParams::paper_default();
        p.c_depth = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn frame_error_prob_limits() {
        assert_eq!(frame_error_prob(0.0, 1000), 0.0);
        assert_eq!(frame_error_prob(1e-6, 0), 0.0);
        assert_eq!(frame_error_prob(1.0, 10), 1.0);
        let p = frame_error_prob(1e-7, 8192);
        assert!((p - 8.19e-4).abs() < 1e-5, "p={p}");
    }
}
