#!/usr/bin/env python3
"""Drive the `bench_suite` binary and record the perf trajectory.

Usage:
    bench.py [--reps N] [--out BENCH_0004.json] [--bin PATH]
             [--micro-iters N] [--no-build]
             [--check BASELINE.json] [--tolerance 0.10]
    bench.py --trajectory [--json]

Runs `bench_suite` (building it first unless --no-build) N times
(default 3), takes per-metric **medians** across the repetitions, and
writes one `lams-dlc.bench/1` document:

    {
      "schema": "lams-dlc.bench/1",
      "reps": N,
      "quick": true,
      "micro": [ {"name", "iters", "ops", "wall_secs",
                  "ns_per_op", "ops_per_sec"} ],
      "experiments": [ {"id", "runs", "wall_secs", "events_per_sec",
                        "queue": {...} | null} ],
      "shards": [ {"shards", "wall_secs", "events_per_sec", "popped"} ],
      "total": {"runs", "wall_secs", "events_per_sec", "popped"},
      "profile": {"wall_ns", "counters", "queue_depth", "alloc",
                  "spans": [...]} | null
    }

Workloads are deterministic, so counted fields (queue profiles, runs,
popped) must agree across repetitions — a mismatch fails the driver.
Only the wall-clock-bearing fields (wall_secs, events_per_sec,
ns_per_op, ops_per_sec) are medianed.

The profile block (bench_suite's separate span-profiled pass over the
quick experiments, plus its allocation delta) is wall-clock-bearing
throughout, so it is carried verbatim from the first repetition; later
repetitions run with --skip-profile. The timed suite itself is never
profiled, so the events/sec gate is unaffected.

With --check, compares the fresh quick-all total events/sec against the
committed baseline document and fails when it regresses by more than
--tolerance (default 10%). Used by CI as the perf regression gate.

With --trajectory, skips benchmarking entirely: reads every committed
BENCH_*.json in the repo root (one per PR that recorded a baseline,
numbered BENCH_0004.json, BENCH_0005.json, ...) and prints the
events-per-second trajectory across PRs as a table — or as JSON with
--json — so perf drift is visible at a glance.
"""

import argparse
import json
import statistics
import subprocess
import sys
from pathlib import Path

SCHEMA = "lams-dlc.bench/1"
REPO = Path(__file__).resolve().parent.parent


def fail(msg):
    print(f"bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_once(binary, micro_iters, skip_profile=False):
    cmd = [str(binary)]
    if micro_iters is not None:
        cmd += ["--micro-iters", str(micro_iters)]
    if skip_profile:
        cmd += ["--skip-profile"]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    except FileNotFoundError:
        fail(f"{binary} not found (build it, or drop --no-build)")
    except subprocess.CalledProcessError as e:
        fail(f"{binary} exited {e.returncode}: {e.stderr.strip()}")
    try:
        doc = json.loads(out.stdout)
    except json.JSONDecodeError as e:
        fail(f"{binary} produced invalid JSON: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{binary}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    return doc


def median_micro(reps):
    """Median the timing fields of each micro kernel across reps."""
    merged = []
    for i, first in enumerate(reps[0]["micro"]):
        rows = [r["micro"][i] for r in reps]
        names = {row["name"] for row in rows}
        if names != {first["name"]}:
            fail(f"micro kernel order differs across reps: {names}")
        merged.append({
            "name": first["name"],
            "iters": first["iters"],
            "ops": first["ops"],
            "wall_secs": statistics.median(row["wall_secs"] for row in rows),
            "ns_per_op": statistics.median(row["ns_per_op"] for row in rows),
            "ops_per_sec": statistics.median(row["ops_per_sec"] for row in rows),
        })
    return merged


def median_experiments(reps):
    """Median wall/events-per-sec per experiment; counted fields must be
    identical across reps (the workloads are deterministic)."""
    merged = []
    for i, first in enumerate(reps[0]["experiments"]):
        rows = [r["experiments"][i] for r in reps]
        if {row["id"] for row in rows} != {first["id"]}:
            fail("experiment order differs across reps")
        for row in rows:
            if row["queue"] != first["queue"] or row["runs"] != first["runs"]:
                fail(f"{first['id']}: counted fields differ across reps — "
                     f"the workload is not deterministic")
        entry = {
            "id": first["id"],
            "runs": first["runs"],
            "wall_secs": statistics.median(row["wall_secs"] for row in rows),
            "events_per_sec": None,
            "queue": first["queue"],
        }
        if first["queue"] is not None:
            entry["events_per_sec"] = statistics.median(
                row["events_per_sec"] for row in rows)
        merged.append(entry)
    return merged


def median_shards(reps):
    """Median the wall-clock fields of each shard-sweep point (including
    the efficiency/imbalance ratios, which read the wall clock); the
    shard count and popped totals are counted fields and must agree."""
    merged = []
    for i, first in enumerate(reps[0].get("shards", [])):
        rows = [r["shards"][i] for r in reps]
        for row in rows:
            if row["shards"] != first["shards"] or row["popped"] != first["popped"]:
                fail(f"shard sweep point {i}: counted fields differ across "
                     f"reps — the workload is not deterministic")
        point = {
            "shards": first["shards"],
            "wall_secs": statistics.median(row["wall_secs"] for row in rows),
            "events_per_sec": statistics.median(
                row["events_per_sec"] for row in rows),
            "popped": first["popped"],
        }
        if "efficiency" in first:
            point["efficiency"] = statistics.median(
                row["efficiency"] for row in rows)
            point["imbalance"] = statistics.median(
                row["imbalance"] for row in rows)
        merged.append(point)
    return merged


def median_total(reps):
    totals = [r["total"] for r in reps]
    first = totals[0]
    for t in totals:
        if t["popped"] != first["popped"] or t["runs"] != first["runs"]:
            fail("quick-all totals differ across reps — the workload is "
                 "not deterministic")
    return {
        "runs": first["runs"],
        "wall_secs": statistics.median(t["wall_secs"] for t in totals),
        "events_per_sec": statistics.median(
            t["events_per_sec"] for t in totals),
        "popped": first["popped"],
    }


def check_regression(doc, baseline_path, tolerance):
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{baseline_path}: {e}")
    if base.get("schema") != SCHEMA:
        fail(f"{baseline_path}: schema {base.get('schema')!r}, want {SCHEMA!r}")
    want = base["total"]["events_per_sec"]
    got = doc["total"]["events_per_sec"]
    if want <= 0:
        fail(f"{baseline_path}: baseline events_per_sec is {want}")
    ratio = got / want
    verdict = (f"quick-all {got / 1e6:.3f}M events/s vs baseline "
               f"{want / 1e6:.3f}M ({(ratio - 1) * 100:+.1f}%)")
    if ratio < 1.0 - tolerance:
        fail(f"{verdict} — regression exceeds {tolerance * 100:.0f}% gate")
    print(f"bench: OK: {verdict}")


def load_trajectory(root):
    """Read every committed BENCH_*.json in PR-number order."""
    docs = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path.name}: {e}")
        if doc.get("schema") != SCHEMA:
            fail(f"{path.name}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
        docs.append((path.name, doc))
    if not docs:
        fail(f"no BENCH_*.json documents under {root}")
    return docs


def print_trajectory(docs, as_json):
    """Per-PR events/s trajectory table (or JSON) over the committed
    baselines, with the delta against the previous baseline, plus the
    shard-scaling block of every baseline that recorded one
    (BENCH_0006.json onward)."""
    rows = []
    shard_rows = []
    prev = None
    for name, doc in docs:
        total = doc["total"]
        eps = total["events_per_sec"]
        delta = None if prev in (None, 0) else (eps / prev - 1.0) * 100.0
        rows.append({
            "baseline": name,
            "runs": total["runs"],
            "popped": total["popped"],
            "wall_secs": total["wall_secs"],
            "events_per_sec": eps,
            "delta_pct": delta,
        })
        prev = eps
        for point in doc.get("shards") or []:
            shard_rows.append({
                "baseline": name,
                "shards": point["shards"],
                "wall_secs": point["wall_secs"],
                "events_per_sec": point["events_per_sec"],
                "popped": point["popped"],
                "efficiency": point.get("efficiency"),
                "imbalance": point.get("imbalance"),
            })
    if as_json:
        print(json.dumps({"schema": "lams-dlc.bench-trajectory/1",
                          "trajectory": rows,
                          "shards": shard_rows}, indent=2))
        return
    print(f"{'baseline':<20} {'runs':>5} {'popped':>12} "
          f"{'wall s':>8} {'events/s':>12} {'delta':>8}")
    for row in rows:
        delta = ("      --" if row["delta_pct"] is None
                 else f"{row['delta_pct']:+7.1f}%")
        print(f"{row['baseline']:<20} {row['runs']:>5} {row['popped']:>12} "
              f"{row['wall_secs']:>8.3f} {row['events_per_sec']:>12.0f} "
              f"{delta}")
    if not shard_rows:
        return
    print()
    print(f"{'shard scaling':<20} {'shards':>6} {'popped':>12} "
          f"{'wall s':>8} {'events/s':>12} {'effic':>7} {'imbal':>7}")
    for row in shard_rows:
        eff = ("     --" if row["efficiency"] is None
               else f"{row['efficiency'] * 100:6.1f}%")
        imb = ("     --" if row["imbalance"] is None
               else f"{row['imbalance']:6.2f}x")
        print(f"{row['baseline']:<20} {row['shards']:>6} {row['popped']:>12} "
              f"{row['wall_secs']:>8.3f} {row['events_per_sec']:>12.0f} "
              f"{eff} {imb}")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, add_help=True,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--out", default=None,
                    help="output document (default: print to stdout)")
    ap.add_argument("--bin", default=str(REPO / "target/release/bench_suite"))
    ap.add_argument("--micro-iters", type=int, default=None)
    ap.add_argument("--no-build", action="store_true")
    ap.add_argument("--check", metavar="BASELINE.json", default=None)
    ap.add_argument("--tolerance", type=float, default=0.10)
    ap.add_argument("--trajectory", action="store_true",
                    help="print the events/s trajectory over committed "
                         "BENCH_*.json baselines and exit (no benchmarking)")
    ap.add_argument("--json", action="store_true",
                    help="with --trajectory, emit JSON instead of a table")
    args = ap.parse_args()
    if args.trajectory:
        print_trajectory(load_trajectory(REPO), args.json)
        return
    if args.reps < 1:
        fail("--reps must be >= 1")

    if not args.no_build:
        r = subprocess.run(
            ["cargo", "build", "--release", "-p", "bench"], cwd=REPO)
        if r.returncode != 0:
            fail("cargo build failed")

    reps = []
    for i in range(args.reps):
        doc = run_once(args.bin, args.micro_iters, skip_profile=(i > 0))
        total = doc["total"]
        eps = total["events_per_sec"]
        print(f"bench: rep {i + 1}/{args.reps}: quick-all "
              f"{eps / 1e6:.3f}M events/s over {total['runs']} run(s)",
              file=sys.stderr)
        reps.append(doc)

    merged = {
        "schema": SCHEMA,
        "reps": args.reps,
        "quick": True,
        "micro": median_micro(reps),
        "experiments": median_experiments(reps),
        "shards": median_shards(reps),
        "total": median_total(reps),
        # Wall-clock-bearing throughout: rep 1's profiled pass, verbatim.
        "profile": reps[0].get("profile"),
    }

    rendered = json.dumps(merged, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"bench: wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)

    if args.check:
        check_regression(merged, args.check, args.tolerance)


if __name__ == "__main__":
    main()
