//! End-to-end LAMS-DLC integration: the full protocol over the simulated
//! link across operating conditions, checking the §2/§3 service
//! guarantees — zero loss, duplicates confined to enforced recovery,
//! in-order release at the destination resequencer.

use harness::{run_lams, Outage, Pattern, ScenarioConfig};
use sim_core::{Duration, Instant};

fn base(n: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_default();
    cfg.n_packets = n;
    cfg.deadline = Duration::from_secs(120);
    cfg
}

#[test]
fn zero_loss_across_ber_sweep() {
    for (i, ber) in [1e-8f64, 1e-7, 1e-6, 1e-5, 5e-5].into_iter().enumerate() {
        let mut cfg = base(3_000);
        cfg.seed = 100 + i as u64;
        cfg.data_residual_ber = ber;
        cfg.ctrl_residual_ber = ber / 10.0;
        let r = run_lams(&cfg);
        assert_eq!(r.lost, 0, "ber={ber}: lost frames");
        assert!(!r.deadline_hit, "ber={ber}: did not converge");
        assert_eq!(r.delivered_unique, 3_000);
    }
}

#[test]
fn zero_loss_under_heavy_control_loss() {
    // The cumulative NAK's raison d'être: even with badly degraded
    // checkpoints nothing is lost (the unsafe-gap hardening covers the
    // C_depth-consecutive-loss corner).
    let mut cfg = base(2_000);
    cfg.data_residual_ber = 1e-5;
    cfg.ctrl_residual_ber = 1e-3; // ~27% of checkpoints corrupted
    cfg.deadline = Duration::from_secs(300);
    let r = run_lams(&cfg);
    assert_eq!(r.lost, 0);
    assert!(
        !r.link_failed,
        "control loss alone must not look like failure"
    );
}

#[test]
fn all_traffic_patterns_complete() {
    let t_f = ScenarioConfig::paper_default().t_f();
    let patterns: Vec<Pattern> = vec![
        Pattern::Batch,
        Pattern::Cbr { interval: t_f * 2 },
        Pattern::Poisson { mean: t_f * 2 },
        Pattern::OnOff {
            burst: 64,
            period: Duration::from_millis(10),
            spacing: t_f,
        },
    ];
    for (i, p) in patterns.into_iter().enumerate() {
        let mut cfg = base(2_000);
        cfg.seed = 200 + i as u64;
        cfg.pattern = p;
        cfg.data_residual_ber = 1e-6;
        let r = run_lams(&cfg);
        assert_eq!(r.lost, 0, "pattern {i}");
        assert_eq!(r.delivered_unique, 2_000, "pattern {i}");
    }
}

#[test]
fn holding_time_respects_resolving_bound() {
    // §3.3: no frame's (per-transmission) holding time may exceed the
    // resolving period — the bound that makes the numbering finite.
    let mut cfg = base(5_000);
    cfg.data_residual_ber = 1e-5;
    let bound = cfg.lams_config().resolving_period().as_secs_f64();
    let r = run_lams(&cfg);
    let max_holding = r.holding.max().unwrap_or(0.0);
    assert!(
        max_holding <= bound * 1.05,
        "max holding {max_holding}s exceeds resolving period {bound}s"
    );
}

#[test]
fn out_of_order_delivery_happens_and_resequencer_fixes_it() {
    // With non-trivial BER, retransmitted frames must arrive after later
    // ones (out-of-order link delivery — the relaxed constraint), yet the
    // destination releases strictly in order.
    let mut cfg = base(5_000);
    cfg.data_residual_ber = 1e-5;
    let r = run_lams(&cfg);
    assert!(r.reseq_peak > 0, "expected reordering at this BER");
    // In-order release means e2e delay ≥ link delay for every percentile
    // that exists; spot-check the means.
    assert!(r.e2e_delay.mean() >= r.delay.mean());
    assert_eq!(r.lost, 0);
}

#[test]
fn repeated_outages_recover() {
    let mut cfg = base(4_000);
    cfg.data_residual_ber = 1e-7;
    cfg.ctrl_residual_ber = 1e-8;
    for k in 0..3 {
        cfg.outages.push(Outage {
            from: Instant::from_millis(20 + 60 * k),
            until: Instant::from_millis(40 + 60 * k), // 20 ms each
        });
    }
    let r = run_lams(&cfg);
    assert_eq!(r.lost, 0, "repeated recoverable outages must not lose");
    assert!(!r.link_failed);
    assert_eq!(r.delivered_unique, 4_000);
}

#[test]
fn efficiency_close_to_ceiling_on_clean_link() {
    let mut cfg = base(20_000);
    cfg.data_residual_ber = 0.0;
    cfg.ctrl_residual_ber = 0.0;
    let r = run_lams(&cfg);
    assert!(
        r.efficiency() > 0.95,
        "clean-link efficiency {}",
        r.efficiency()
    );
    assert_eq!(r.retransmissions, 0);
}

#[test]
fn duplicates_only_under_unsafe_conditions() {
    // On a uniformly noisy (but outage-free) channel the protocol should
    // deliver exactly once: duplication is reserved for enforced-recovery
    // or unsafe-gap corners.
    let mut cfg = base(5_000);
    cfg.data_residual_ber = 1e-5;
    cfg.ctrl_residual_ber = 1e-6;
    let r = run_lams(&cfg);
    assert_eq!(r.duplicates, 0, "no duplicates expected without outages");
}

#[test]
fn small_payloads_and_large_payloads() {
    for (payload, seed) in [(64usize, 1u64), (4096, 2)] {
        let mut cfg = base(2_000);
        cfg.payload_bytes = payload;
        cfg.seed = seed;
        cfg.data_residual_ber = 1e-6;
        let r = run_lams(&cfg);
        assert_eq!(r.lost, 0, "payload {payload}");
        assert_eq!(r.delivered_unique, 2_000, "payload {payload}");
    }
}

#[test]
fn rate_control_only_engages_under_congestion() {
    let mut cfg = base(3_000);
    cfg.data_residual_ber = 1e-6;
    let r = run_lams(&cfg);
    let min_rate = r
        .rate
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(min_rate, 1.0, "flow control engaged without congestion");
}
