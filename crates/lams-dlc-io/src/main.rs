//! Loopback UDP demo for the sans-IO LAMS-DLC machines.
//!
//! ```text
//! lams-dlc-io [--sdus N] [--payload BYTES] [--drop-every K] [--timeout-secs S]
//! ```
//!
//! Transfers `N` SDUs from a `lams_dlc::Sender` to a
//! `lams_dlc::Receiver` over two real UDP sockets on 127.0.0.1,
//! dropping every `K`-th information frame before the socket send.
//! Exits non-zero if the transfer fails or the order check trips.

use lams_dlc_io::{run_loopback, IoConfig};
use std::process::ExitCode;

fn parse_args() -> Result<IoConfig, String> {
    let mut cfg = IoConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match flag.as_str() {
            "--sdus" => {
                cfg.sdus = value("--sdus")?
                    .parse()
                    .map_err(|e| format!("--sdus: {e}"))?
            }
            "--payload" => {
                cfg.payload_len = value("--payload")?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?
            }
            "--drop-every" => {
                cfg.drop_every = value("--drop-every")?
                    .parse()
                    .map_err(|e| format!("--drop-every: {e}"))?
            }
            "--timeout-secs" => {
                let secs: u64 = value("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?;
                cfg.timeout = std::time::Duration::from_secs(secs);
            }
            "--help" | "-h" => {
                println!(
                    "usage: lams-dlc-io [--sdus N] [--payload BYTES] \
                     [--drop-every K] [--timeout-secs S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "lams-dlc-io: {} SDUs x {} B over loopback UDP, dropping every {} info frame(s)",
        cfg.sdus,
        cfg.payload_len,
        if cfg.drop_every == 0 {
            "no".to_string()
        } else {
            format!("{}th", cfg.drop_every)
        }
    );
    match run_loopback(&cfg) {
        Ok(s) => {
            println!(
                "delivered {} SDUs in order in {:.1} ms \
                 (datagrams: {} data + {} feedback, drops injected: {}, retransmissions: {})",
                s.delivered,
                s.wall.as_secs_f64() * 1e3,
                s.datagrams_sent,
                s.feedback_sent,
                s.drops_injected,
                s.retransmissions,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("transfer failed: {e}");
            ExitCode::FAILURE
        }
    }
}
