//! Block interleaving.
//!
//! Paul et al.'s laser-link codec — which the paper takes as its FEC
//! substrate — uses interleaving to convert burst errors (antenna
//! mispointing, tracking loss) into scattered random errors the
//! convolutional code can correct. A classic `rows × cols` block
//! interleaver: write row-wise, read column-wise. A burst of length `b` on
//! the channel lands at least `rows` positions apart after deinterleaving,
//! so any burst up to `rows` bits looks like isolated single errors.

use crate::bits::BitBuf;

/// A `rows × cols` block interleaver.
#[derive(Clone, Copy, Debug)]
pub struct BlockInterleaver {
    rows: usize,
    cols: usize,
}

impl BlockInterleaver {
    /// Create an interleaver with the given geometry. A burst of up to
    /// `rows` channel bits is spread to single errors `cols` apart.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "interleaver dimensions must be positive"
        );
        BlockInterleaver { rows, cols }
    }

    /// Bits per block.
    pub fn block_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Interleave `input`. The input is processed in blocks of
    /// [`Self::block_len`]; a final partial block is padded with zeros
    /// (the original length is restored by [`Self::deinterleave`] given the
    /// same length).
    pub fn interleave(&self, input: &BitBuf) -> BitBuf {
        self.permute(input, /*forward=*/ true)
    }

    /// Inverse of [`Self::interleave`]. `input.len()` must equal the
    /// interleaved length (a whole number of blocks); the caller truncates
    /// to the original message length.
    pub fn deinterleave(&self, input: &BitBuf) -> BitBuf {
        self.permute(input, /*forward=*/ false)
    }

    fn permute(&self, input: &BitBuf, forward: bool) -> BitBuf {
        let block = self.block_len();
        let n_blocks = input.len().div_ceil(block);
        let mut out = BitBuf::with_capacity(n_blocks * block);
        for b in 0..n_blocks {
            let base = b * block;
            for i in 0..block {
                // Forward: output position i reads input at transpose(i).
                let (r, c) = (i / self.cols, i % self.cols);
                let src_in_block = if forward {
                    // write row-wise, read column-wise
                    (i % self.rows) * self.cols + i / self.rows
                } else {
                    c * self.rows + r
                };
                let src = base + src_in_block;
                out.push(src < input.len() && input.get(src));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::CCSDS_K7;
    use crate::viterbi::Viterbi;

    #[test]
    fn roundtrip_exact_block() {
        let il = BlockInterleaver::new(4, 8);
        let data: BitBuf = (0..32).map(|i| i % 5 == 0).collect();
        let inter = il.interleave(&data);
        let deinter = il.deinterleave(&inter);
        assert_eq!(deinter, data);
    }

    #[test]
    fn roundtrip_with_padding() {
        let il = BlockInterleaver::new(8, 16);
        let data: BitBuf = (0..300).map(|i| (i * 7) % 3 == 0).collect();
        let inter = il.interleave(&data);
        assert_eq!(inter.len(), 384); // 3 blocks of 128
        let deinter = il.deinterleave(&inter);
        let restored: BitBuf = deinter.iter().take(300).collect();
        assert_eq!(restored, data);
    }

    #[test]
    fn interleave_is_permutation() {
        let il = BlockInterleaver::new(4, 4);
        // Exactly one output position per input position within a block.
        let mut seen = [false; 16];
        for i in 0..16 {
            let mut unit = BitBuf::from_bits(&[false; 16]);
            unit.set(i, true);
            let out = il.interleave(&unit);
            let pos: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|&(_, b)| b)
                .map(|(j, _)| j)
                .collect();
            assert_eq!(pos.len(), 1, "input bit {i} mapped to {pos:?}");
            assert!(!seen[pos[0]], "collision at output {}", pos[0]);
            seen[pos[0]] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn burst_spreads_after_deinterleave() {
        let rows = 16;
        let cols = 16;
        let il = BlockInterleaver::new(rows, cols);
        let data = BitBuf::from_bits(&[false; 256]);
        let mut inter = il.interleave(&data);
        // A burst of `rows` consecutive channel errors...
        for i in 40..40 + rows {
            inter.toggle(i);
        }
        let deinter = il.deinterleave(&inter);
        // ...lands as isolated errors at least `cols - 1` apart (the
        // spacing drops by one where the burst crosses a column boundary).
        let errs: Vec<usize> = deinter
            .iter()
            .enumerate()
            .filter(|&(_, b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(errs.len(), rows);
        for w in errs.windows(2) {
            assert!(w[1] - w[0] >= cols - 1, "errors too close: {:?}", w);
        }
    }

    #[test]
    fn interleaving_rescues_burst_for_viterbi() {
        // End-to-end: encode → interleave → burst on channel → deinterleave
        // → Viterbi. The same burst defeats the bare code (see viterbi
        // tests) but is corrected with interleaving.
        let il = BlockInterleaver::new(32, 16);
        let v = Viterbi::new(CCSDS_K7);
        let input = BitBuf::from_bytes(&[
            0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
            0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x00, 0x13, 0x57, 0x9B, 0xDF,
            0x24, 0x68, 0xAC, 0xE0,
        ]);
        let enc = CCSDS_K7.encode(&input);
        let mut channel = il.interleave(&enc);
        for i in 100..130 {
            channel.toggle(i); // 30-bit contiguous burst
        }
        let deinter = il.deinterleave(&channel);
        let trimmed: BitBuf = deinter.iter().take(enc.len()).collect();
        let dec = v.decode(&trimmed).expect("decode");
        assert_eq!(dec, input, "interleaved burst should be corrected");
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let _ = BlockInterleaver::new(0, 4);
    }
}
