#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # harness
//!
//! Discrete-event experiment harness for the LAMS-DLC reproduction.
//!
//! * [`node`] — re-export of netsim's generic [`node::Driver`] and the
//!   sans-IO [`node::TxEndpoint`] / [`node::RxEndpoint`] contract it
//!   implements for every protocol machine;
//! * [`link`] / [`traffic`] — re-exports of the netsim channel model
//!   and SDU generators (kept at their historical harness paths);
//! * [`scenario`] / [`duplex`] / [`relay`] — thin topology builders over
//!   the netsim engine: 2 nodes/1 link each way, 2 duplex nodes/2
//!   links, and an N+1-node store-and-forward chain (common random
//!   numbers across protocols);
//! * [`metrics`] — per-run measurement collection and [`metrics::RunReport`];
//! * [`parallel`] / [`runner`] — the experiment runner: worker-thread
//!   fan-out with deterministic merging, CLI parsing, JSON reports;
//! * [`profile_report`] — rendering for `repro --profile` self-profiles
//!   (JSON document, human tables, folded flamegraph stacks);
//! * [`experiments`] — the E1–E17 suite regenerating every table and
//!   figure of the paper (see DESIGN.md for the index);
//! * [`report`] — plain-text table/series rendering.

pub mod chain;
pub mod duplex;
pub mod experiments;
pub mod metrics;
pub mod node;
pub mod parallel;
pub mod passes;
pub mod profile_report;
pub mod relay;
pub mod report;
pub mod runner;
pub mod scenario;

pub use netsim::{link, traffic};

pub use chain::{run_chain, run_chain_lams};
pub use duplex::{run_duplex, run_duplex_lams, run_duplex_sr, DuplexReport};
pub use metrics::{Collector, RunReport};
pub use netsim::link::{Channel, DelayModel, ErrorModel, Fate, Outage};
pub use netsim::traffic::{Pattern, TrafficGen};
pub use passes::{run_multi_pass, run_multi_pass_limited, MultiPassReport, PassSummary};
pub use relay::{run_relay, run_relay_lams, run_relay_sr, RelayConfig};
pub use scenario::{
    run, run_gbn, run_in, run_lams, run_lams_in, run_sr, BurstCfg, ScenarioConfig, ScenarioQueue,
};
