//! Fixed-interval windowed time series over the event stream.
//!
//! Windows are aligned to simulated time (`window index = t / width`),
//! so the series depends only on the trace content — a parallel run
//! reproduces a serial run's series byte-for-byte.

use sim_core::{Duration, Instant};
use std::collections::BTreeMap;
use telemetry::Json;

/// One window's accumulators for one link.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowAcc {
    /// I-frame transmissions (new + retransmitted).
    pub tx: u64,
    /// Of which retransmissions.
    pub retx: u64,
    /// Unique clean deliveries at the receiver.
    pub delivered: u64,
    /// NAKs recorded by the receiver.
    pub naks: u64,
    /// Sender buffer releases.
    pub releases: u64,
    /// High-water mark of unresolved (buffered) frames.
    pub outstanding_hwm: u64,
    /// High-water mark of retransmissions awaiting resolution.
    pub retx_in_flight_hwm: u64,
}

/// Windowed accumulator for one link over one run.
#[derive(Debug)]
pub struct LinkSeries {
    width: Duration,
    windows: BTreeMap<u64, WindowAcc>,
}

impl LinkSeries {
    /// A series with the given window width.
    pub fn new(width: Duration) -> Self {
        LinkSeries {
            width: if width.as_nanos() == 0 {
                Duration::from_millis(100)
            } else {
                width
            },
            windows: BTreeMap::new(),
        }
    }

    /// The window accumulator covering instant `t`.
    pub fn at(&mut self, t: Instant) -> &mut WindowAcc {
        let idx = t.as_nanos() / self.width.as_nanos();
        self.windows.entry(idx).or_default()
    }

    /// Number of touched windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window was touched.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Drain the touched windows in time order as JSONL-ready objects.
    /// `experiment`/`run`/`link` identify the series; `t0`/`t1` bound
    /// each window in seconds, and `throughput_fps` is the delivered
    /// rate over the window.
    pub fn drain_lines(&mut self, experiment: &str, run: u64, link: &str) -> Vec<Json> {
        let windows = std::mem::take(&mut self.windows);
        self.render_lines(windows.iter(), experiment, run, link)
    }

    /// The touched windows so far, in time order, without draining —
    /// the live stats endpoint reads the series mid-run while the
    /// auditor keeps accumulating into it.
    pub fn peek_lines(&self, experiment: &str, run: u64, link: &str) -> Vec<Json> {
        self.render_lines(self.windows.iter(), experiment, run, link)
    }

    fn render_lines<'a>(
        &self,
        windows: impl Iterator<Item = (&'a u64, &'a WindowAcc)>,
        experiment: &str,
        run: u64,
        link: &str,
    ) -> Vec<Json> {
        let width_s = self.width.as_secs_f64();
        windows
            .map(|(&idx, w)| {
                let t0 = idx as f64 * width_s;
                Json::obj([
                    ("experiment", experiment.into()),
                    ("run", run.into()),
                    ("link", link.into()),
                    ("t0_s", Json::Num(t0)),
                    ("t1_s", Json::Num(t0 + width_s)),
                    ("tx", w.tx.into()),
                    ("retx", w.retx.into()),
                    ("delivered", w.delivered.into()),
                    ("throughput_fps", Json::Num(w.delivered as f64 / width_s)),
                    ("naks", w.naks.into()),
                    ("releases", w.releases.into()),
                    ("outstanding_hwm", w.outstanding_hwm.into()),
                    ("retx_in_flight_hwm", w.retx_in_flight_hwm.into()),
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_their_window() {
        let mut s = LinkSeries::new(Duration::from_millis(10));
        s.at(Instant::from_millis(3)).tx += 1;
        s.at(Instant::from_millis(9)).tx += 1;
        s.at(Instant::from_millis(10)).tx += 1; // next window
        let lines = s.drain_lines("e1", 0, "");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("tx").and_then(Json::as_f64), Some(2.0));
        assert_eq!(lines[1].get("tx").and_then(Json::as_f64), Some(1.0));
        assert_eq!(lines[1].get("t0_s").and_then(Json::as_f64), Some(0.01));
        assert!(s.is_empty(), "drain resets the series");
    }

    #[test]
    fn throughput_is_per_second() {
        let mut s = LinkSeries::new(Duration::from_millis(100));
        s.at(Instant::from_millis(50)).delivered = 25;
        let lines = s.drain_lines("e2", 3, "a2b");
        assert_eq!(
            lines[0].get("throughput_fps").and_then(Json::as_f64),
            Some(250.0)
        );
        assert_eq!(lines[0].get("run").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn peek_does_not_drain() {
        let mut s = LinkSeries::new(Duration::from_millis(10));
        s.at(Instant::from_millis(3)).tx += 1;
        let peeked = s.peek_lines("e1", 0, "");
        assert_eq!(peeked.len(), 1);
        assert_eq!(s.len(), 1, "peek leaves the series intact");
        assert_eq!(s.drain_lines("e1", 0, ""), peeked, "same line shape");
    }

    #[test]
    fn zero_width_falls_back_to_default() {
        let mut s = LinkSeries::new(Duration::ZERO);
        s.at(Instant::from_millis(150)).naks += 1;
        assert_eq!(s.len(), 1);
    }
}
