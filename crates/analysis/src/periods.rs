//! Retransmission probabilities and the mean period count `s̄` (§4).
//!
//! `S`, the number of (re)transmission periods needed to deliver one
//! I-frame, is geometric with success probability `1 − P_R`:
//!
//! ```text
//! Prob[S = k] = (1 − P_R) · P_R^(k−1),    s̄ = E[S] = 1 / (1 − P_R)
//! ```
//!
//! The protocols differ only in `P_R`:
//!
//! * **LAMS-DLC** (pure NAK, cumulative reporting): an I-frame is resent
//!   only if it was itself in error — `P_R = P_F`. A lost checkpoint does
//!   not trigger retransmission because the next checkpoint repeats the
//!   NAK (the probability that all `C_depth` reports fail, `P_C^C_depth`,
//!   is negligible and is ignored here exactly as in the paper).
//! * **SR-HDLC** (pos-ack + NAK): either a frame error *or* the loss of
//!   the acknowledgement forces a retransmission —
//!   `P_R = P_F + P_C − P_F·P_C`, in both the transmission and the
//!   retransmission period (§4 derives them separately and they coincide).

use crate::params::LinkParams;

/// LAMS-DLC retransmission probability: `P_F`.
pub fn p_r_lams(p: &LinkParams) -> f64 {
    p.p_f
}

/// SR-HDLC retransmission probability: `P_F + P_C − P_F·P_C`.
pub fn p_r_hdlc(p: &LinkParams) -> f64 {
    p.p_f + p.p_c - p.p_f * p.p_c
}

/// `s̄ = 1 / (1 − P_R)` for LAMS-DLC.
pub fn s_bar_lams(p: &LinkParams) -> f64 {
    1.0 / (1.0 - p_r_lams(p))
}

/// `s̄ = 1 / (1 − P_R)` for SR-HDLC.
pub fn s_bar_hdlc(p: &LinkParams) -> f64 {
    1.0 / (1.0 - p_r_hdlc(p))
}

/// Mean number of checkpoint commands needed to acknowledge an I-frame:
/// `n̄_cp = 1 / (1 − P_C)` (§4 — each lost checkpoint defers the
/// acknowledgement by one interval).
pub fn n_bar_cp(p: &LinkParams) -> f64 {
    1.0 / (1.0 - p.p_c)
}

/// The paper's §2 motivating comparison: with piggybacked acks
/// (`P_C = P_F`), a pos-ack scheme retransmits with probability
/// `2·P_F − P_F²` versus `P_F` for pure NAK.
pub fn p_r_posack_piggyback(p_f: f64) -> f64 {
    2.0 * p_f - p_f * p_f
}

/// The resolving period (§3.2): the worst-case time from a frame's
/// transmission until the sender can conclude it is unaccounted for,
///
/// ```text
/// T_resolve = R + W_cp/2 + C_depth·W_cp
/// ```
///
/// — one round trip, a half checkpoint interval of phase uncertainty,
/// and the full cumulation window the NAK may ride through. Seconds.
/// This is the analytic bound the latency-attribution layer checks
/// every observed resolution time against.
pub fn resolving_period(p: &LinkParams) -> f64 {
    resolving_period_raw(p.r, p.i_cp, p.c_depth)
}

/// [`resolving_period`] from raw parameters: round-trip `r`, checkpoint
/// interval `i_cp` and cumulation depth `c_depth` (seconds in, seconds
/// out) — usable when no full [`LinkParams`] is on hand, e.g. when
/// reconstructing the bound from a trace's `sender_config` record.
pub fn resolving_period_raw(r: f64, i_cp: f64, c_depth: u32) -> f64 {
    r + i_cp / 2.0 + c_depth as f64 * i_cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> LinkParams {
        crate::params::LinkParams::paper_default()
    }

    #[test]
    fn lams_beats_hdlc_whenever_commands_can_fail() {
        let p = params();
        assert!(p_r_lams(&p) < p_r_hdlc(&p));
        assert!(s_bar_lams(&p) < s_bar_hdlc(&p));
    }

    #[test]
    fn equal_when_control_is_perfect() {
        let mut p = params();
        p.p_c = 0.0;
        assert_eq!(p_r_lams(&p), p_r_hdlc(&p));
        assert_eq!(s_bar_lams(&p), s_bar_hdlc(&p));
    }

    #[test]
    fn s_bar_error_free_is_one() {
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        assert_eq!(s_bar_lams(&p), 1.0);
        assert_eq!(s_bar_hdlc(&p), 1.0);
        assert_eq!(n_bar_cp(&p), 1.0);
    }

    #[test]
    fn geometric_mean_formula() {
        // s̄ at P_F = 0.5 is 2: on average two periods per frame.
        let mut p = params();
        p.p_f = 0.5;
        assert!((s_bar_lams(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resolving_period_matches_paper_terms() {
        let p = params();
        let want = p.r + p.i_cp / 2.0 + p.c_depth as f64 * p.i_cp;
        assert!((resolving_period(&p) - want).abs() < 1e-15);
        assert_eq!(
            resolving_period(&p),
            resolving_period_raw(p.r, p.i_cp, p.c_depth)
        );
        // Paper defaults: R ≈ 26.7 ms, W_cp = 5 ms, C_depth = 3 → ≈ 44.2 ms.
        let t = resolving_period(&p);
        assert!(t > 0.044 && t < 0.0445, "t={t}");
    }

    #[test]
    fn piggyback_comparison_from_section_2() {
        let p_f = 0.01;
        let pig = p_r_posack_piggyback(p_f);
        assert!((pig - (2.0 * 0.01 - 0.0001)).abs() < 1e-15);
        assert!(pig > p_f, "pos-ack at least doubles P_R for small P_F");
    }

    proptest! {
        #[test]
        fn prop_hdlc_p_r_dominates(p_f in 0.0..0.5f64, p_c in 0.0..0.5f64) {
            let mut p = params();
            p.p_f = p_f;
            p.p_c = p_c;
            let union = p_r_hdlc(&p);
            prop_assert!(union >= p_r_lams(&p) - 1e-15);
            prop_assert!(union <= p_f + p_c + 1e-15);
            // Union bound identity: P(A ∪ B) for independent events.
            prop_assert!((union - (1.0 - (1.0 - p_f) * (1.0 - p_c))).abs() < 1e-12);
        }

        #[test]
        fn prop_s_bar_monotone_in_error_rate(
            a in 0.0..0.4f64,
            delta in 0.0..0.4f64,
        ) {
            let mut lo = params();
            lo.p_f = a;
            let mut hi = params();
            hi.p_f = a + delta;
            prop_assert!(s_bar_lams(&hi) >= s_bar_lams(&lo) - 1e-12);
        }
    }
}
