//! Simulated time — re-exported from [`proto_core::time`].
//!
//! The `Instant`/`Duration` types moved to `proto-core` so protocol
//! state machines can use them without a simulator dependency; the
//! simulator keeps exporting them at their historical paths. Under the
//! simulator, `t = 0` is the start of the run and the event loop owns
//! the clock.

pub use proto_core::time::{Duration, Instant};
