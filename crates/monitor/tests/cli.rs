//! CLI contract tests for the `trace-tools` binary: error paths must
//! print usage and exit 2, and the `attribution` subcommand must replay
//! a trace into the same per-experiment blocks the live monitor builds.

use std::process::Command;

fn trace_tools() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace-tools"))
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = trace_tools()
        .args(["frobnicate", "whatever.jsonl"])
        .output()
        .expect("spawn trace-tools");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command: frobnicate"), "{stderr}");
    assert!(stderr.contains("usage: trace-tools"), "{stderr}");
}

#[test]
fn bad_flag_prints_usage_and_exits_2() {
    let out = trace_tools()
        .args(["audit", "t.jsonl", "--frobnicate"])
        .output()
        .expect("spawn trace-tools");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag: --frobnicate"), "{stderr}");
    assert!(stderr.contains("usage: trace-tools"), "{stderr}");
}

#[test]
fn missing_command_prints_usage_and_exits_2() {
    let out = trace_tools().output().expect("spawn trace-tools");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing command"), "{stderr}");
    assert!(stderr.contains("usage: trace-tools"), "{stderr}");
}

#[test]
fn bad_window_value_exits_2() {
    let out = trace_tools()
        .args(["metrics", "t.jsonl", "--window", "0"])
        .output()
        .expect("spawn trace-tools");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--window"), "{stderr}");
}

#[test]
fn attribution_replay_matches_the_live_monitor() {
    use sim_core::Instant;
    use telemetry::{TraceEvent, TraceRecord};

    const MS: u64 = 1_000_000;
    let rec = |t_ns: u64, node: &'static str, event: TraceEvent| TraceRecord {
        t: Instant::from_nanos(t_ns),
        node,
        event,
    };
    // One errored SDU: corrupt arrival, NAK via checkpoint 1, renumber,
    // retransmit, clean delivery, release — the renumbered-chain fixture.
    let records = vec![
        rec(0, "runner", TraceEvent::ExperimentStarted { id: "e9" }),
        rec(0, "sim", TraceEvent::RunStarted),
        rec(
            0,
            "tx",
            TraceEvent::SenderConfig {
                w_cp_ns: 30 * MS,
                c_depth: 3,
                rtt_ns: 27 * MS,
                cp_timeout_ns: 40 * MS,
                resolving_ns: 120 * MS,
                failure_ns: 120 * MS,
            },
        ),
        rec(
            MS,
            "tx",
            TraceEvent::IFrameTx {
                seq: 1,
                retx: false,
                len: 1024,
            },
        ),
        rec(
            15 * MS,
            "rx",
            TraceEvent::IFrameRx {
                seq: 1,
                clean: false,
                len: 1024,
            },
        ),
        rec(
            15 * MS,
            "rx",
            TraceEvent::Nak {
                seq: 1,
                cp_index: 1,
            },
        ),
        rec(
            16 * MS,
            "rx",
            TraceEvent::CheckpointEmitted {
                index: 1,
                covered: 1,
                naks: 1,
                enforced: false,
                stop: false,
            },
        ),
        rec(
            30 * MS,
            "tx",
            TraceEvent::CheckpointReceived {
                index: 1,
                covered: 1,
                naks: 1,
            },
        ),
        rec(
            30 * MS,
            "tx",
            TraceEvent::Renumbered {
                old_seq: 1,
                new_seq: 2,
            },
        ),
        rec(
            30 * MS,
            "tx",
            TraceEvent::RetxCause {
                seq: 2,
                cause: "nak",
                cp_index: 1,
            },
        ),
        rec(
            30 * MS,
            "tx",
            TraceEvent::IFrameTx {
                seq: 2,
                retx: true,
                len: 1024,
            },
        ),
        rec(
            44 * MS,
            "rx",
            TraceEvent::IFrameRx {
                seq: 2,
                clean: true,
                len: 1024,
            },
        ),
        rec(
            46 * MS,
            "rx",
            TraceEvent::CheckpointEmitted {
                index: 2,
                covered: 2,
                naks: 0,
                enforced: false,
                stop: false,
            },
        ),
        rec(
            60 * MS,
            "tx",
            TraceEvent::CheckpointReceived {
                index: 2,
                covered: 2,
                naks: 0,
            },
        ),
        rec(
            60 * MS,
            "tx",
            TraceEvent::BufferRelease {
                seq: 2,
                held_ns: 30 * MS,
                cp_index: 2,
            },
        ),
        rec(
            61 * MS,
            "sim",
            TraceEvent::RunFinished {
                deadline_hit: false,
            },
        ),
    ];

    // The live monitor's view of the same stream.
    let mut mon = monitor::Monitor::new(monitor::MonitorConfig::default());
    for r in &records {
        mon.observe(r);
    }
    let report = mon.take_report();
    let live = report.experiments[0].attribution.to_json().render();

    // Replay the rendered JSONL through the binary.
    let dir = std::env::temp_dir().join(format!("trace-tools-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("attr.jsonl");
    let mut buf = String::new();
    for r in &records {
        buf.push_str(&r.to_json().render());
        buf.push('\n');
    }
    std::fs::write(&path, buf).expect("write trace");

    let out = trace_tools()
        .args(["attribution", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn trace-tools");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout, format!("e9\t{live}\n"));
    assert!(stdout.contains("\"first_flight\":{\"count\":1"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
