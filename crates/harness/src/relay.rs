//! Multi-hop store-and-forward relay (paper §2.2 assumption 3).
//!
//! A chain of satellites: `hops` links, `hops + 1` nodes. Every
//! intermediate node receives on one link and forwards on the next —
//! "incoming I-frames destined for other nodes are received by the
//! sender and are stored in its sending buffer. The sender forwards
//! these packets whenever the link is available."
//!
//! This is where §2.3's argument bites end-to-end:
//!
//! * a **LAMS-DLC** intermediate node forwards each datagram the moment
//!   its local processing finishes — out-of-order is fine, only the
//!   destination resequences; one reordering delay is paid once;
//! * an **SR-HDLC** intermediate node may not release a frame upward
//!   (and hence forward it) until every earlier frame has arrived — the
//!   resequencing delay is paid *per hop*, and a loss near the source
//!   stalls the pipeline of every downstream link.

use crate::link::Channel;
use crate::metrics::RunReport;
use crate::node::{LamsRx, LamsTx, RxEndpoint, SrRx, SrTx, TxEndpoint};
use crate::scenario::ScenarioConfig;
use crate::traffic::TrafficGen;
use bytes::Bytes;
use sim_core::{EventQueue, Instant, RunTimer, SeedSplitter};
use telemetry::TraceEvent;

/// Relay chain configuration: `hops` identical links, each drawn from the
/// base scenario (distance, rate, error model, protocol knobs).
#[derive(Clone, Debug)]
pub struct RelayConfig {
    /// Number of links in the chain (≥ 1).
    pub hops: usize,
    /// Per-link scenario parameters.
    pub base: ScenarioConfig,
}

enum Ev<F> {
    Push(u64),
    /// Frame arriving at the downstream node of link `hop`.
    ArriveFwd(usize, F, bool),
    /// Control frame arriving back at the upstream node of link `hop`.
    ArriveRev(usize, F, bool),
    Sample,
    Wake,
}

/// Drive a relay chain where every hop runs the same protocol.
/// `mk_tx(i)` / `mk_rx(i)` build the endpoints of link `i`.
pub fn run_relay<T, R>(
    cfg: &RelayConfig,
    mk_tx: impl Fn(usize) -> T,
    mk_rx: impl Fn(usize) -> R,
    protocol: &str,
) -> RunReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
{
    assert!(cfg.hops >= 1, "need at least one link");
    let h = cfg.hops;
    let base = &cfg.base;
    let timer = RunTimer::start();
    let trace = telemetry::global_handle("channel");
    let mut txs: Vec<T> = (0..h).map(&mk_tx).collect();
    let mut rxs: Vec<R> = (0..h).map(&mk_rx).collect();
    // Independent channels per hop (fresh RNG streams per link).
    let mut fwd: Vec<Channel> = Vec::with_capacity(h);
    let mut rev: Vec<Channel> = Vec::with_capacity(h);
    for i in 0..h {
        let mut c = base.clone();
        c.seed = base.seed.wrapping_add(1000 * (i as u64 + 1));
        let (f, r) = c.build_channels();
        fwd.push(f);
        rev.push(r);
    }
    let mut gen = TrafficGen::new(
        base.pattern.clone(),
        base.n_packets,
        SeedSplitter::new(base.seed).stream(2),
    );
    let mut col = crate::metrics::Collector::new();
    let mut q: EventQueue<Ev<T::Frame>> = EventQueue::new();
    let deadline = Instant::ZERO + base.deadline;
    let payload = Bytes::from(vec![0u8; base.payload_bytes]);

    for i in 0..h {
        txs[i].start(Instant::ZERO);
        rxs[i].start(Instant::ZERO);
    }
    if let Some((at, id)) = gen.next() {
        q.schedule(at, Ev::Push(id));
    }
    q.schedule(Instant::ZERO, Ev::Sample);
    q.schedule(Instant::ZERO, Ev::Wake);

    let mut next_wake = Instant::MAX;
    let mut holding = Vec::new();
    let mut finished_at = Instant::ZERO;
    let mut deadline_hit = false;

    'outer: while let Some((now, first_ev)) = q.pop() {
        if now > deadline {
            deadline_hit = true;
            finished_at = deadline;
            break;
        }
        let mut ev = first_ev;
        loop {
            match ev {
                Ev::Push(id) => {
                    col.on_push(now, id);
                    txs[0].push(id, payload.clone());
                    if let Some((at, nid)) = gen.next() {
                        q.schedule(at.max(now), Ev::Push(nid));
                    }
                }
                Ev::ArriveFwd(i, f, clean) => rxs[i].handle_frame(now, f, clean),
                Ev::ArriveRev(i, f, clean) => txs[i].handle_frame(now, f, clean),
                Ev::Sample => {
                    // Report the source node's buffer; intermediate hops
                    // contribute to rx occupancy (worst hop).
                    let worst_rx = rxs.iter().map(|r| r.occupancy()).max().unwrap_or(0);
                    col.sample(now, txs[0].buffered(), worst_rx, txs[0].rate());
                    if now + base.sample_every <= deadline {
                        q.schedule(now + base.sample_every, Ev::Sample);
                    }
                }
                Ev::Wake => {
                    if next_wake <= now {
                        next_wake = Instant::MAX;
                    }
                }
            }
            if q.peek_time() == Some(now) {
                ev = q.pop().expect("peeked").1;
            } else {
                break;
            }
        }

        // Pump every node: timers, transmissions, store-and-forward.
        for i in 0..h {
            txs[i].on_timeout(now);
            rxs[i].on_timeout(now);
        }
        for i in 0..h {
            while fwd[i].idle(now) {
                let Some(f) = txs[i].poll_transmit(now) else {
                    break;
                };
                let meta = T::meta(&f);
                match fwd[i].transmit(now, meta.bytes, meta.is_info) {
                    crate::link::Fate::Arrives { at, clean } => {
                        q.schedule(at, Ev::ArriveFwd(i, f, clean));
                    }
                    crate::link::Fate::Lost => {
                        trace.emit(now, || TraceEvent::ChannelDrop { dir: "fwd" });
                    }
                }
            }
            while rev[i].idle(now) {
                let Some(f) = rxs[i].poll_transmit(now) else {
                    break;
                };
                let meta = R::meta(&f);
                match rev[i].transmit(now, meta.bytes, meta.is_info) {
                    crate::link::Fate::Arrives { at, clean } => {
                        q.schedule(at, Ev::ArriveRev(i, f, clean));
                    }
                    crate::link::Fate::Lost => {
                        trace.emit(now, || TraceEvent::ChannelDrop { dir: "rev" });
                    }
                }
            }
            // Store-and-forward: deliveries at node i+1 feed the next
            // link's sender; the final hop's deliveries are the result.
            while let Some((id, _len)) = rxs[i].poll_deliver(now) {
                if i + 1 < h {
                    txs[i + 1].push(id, payload.clone());
                } else {
                    col.on_deliver(now, id);
                }
            }
        }
        holding.clear();
        txs[0].drain_holding(&mut holding);
        col.on_holding(&holding);

        if col.delivered_unique() >= base.n_packets && txs.iter().all(|t| t.buffered() == 0) {
            finished_at = now;
            break;
        }
        for t in &txs {
            if t.is_failed() {
                finished_at = now;
                break 'outer;
            }
        }

        let mut want: Option<Instant> = None;
        let mut consider = |c: Option<Instant>| {
            if let Some(t) = c {
                want = Some(want.map_or(t, |w| w.min(t)));
            }
        };
        for i in 0..h {
            consider(txs[i].poll_timeout());
            consider(rxs[i].poll_timeout());
            if !fwd[i].idle(now) {
                consider(Some(fwd[i].free_at()));
            }
            if !rev[i].idle(now) {
                consider(Some(rev[i].free_at()));
            }
        }
        if let Some(t) = want {
            let t = if t > now {
                Some(t)
            } else {
                // Blocked on a busy transmitter: wake at the earliest
                // channel-free instant (strictly future).
                (0..h)
                    .flat_map(|i| {
                        [
                            (!fwd[i].idle(now)).then(|| fwd[i].free_at()),
                            (!rev[i].idle(now)).then(|| rev[i].free_at()),
                        ]
                    })
                    .flatten()
                    .min()
            };
            if let Some(t) = t {
                debug_assert!(t > now);
                if t < next_wake {
                    next_wake = t;
                    q.schedule(t, Ev::Wake);
                }
            }
        }
        finished_at = now;
    }

    let failed = txs.iter().any(|t| t.is_failed());
    let transmissions: u64 = txs.iter().map(|t| t.transmissions()).sum();
    let retransmissions: u64 = txs.iter().map(|t| t.retransmissions()).sum();
    let mut report = col.finish(
        protocol,
        gen.issued(),
        finished_at,
        deadline_hit,
        failed,
        transmissions,
        retransmissions,
        base.t_f(),
        txs[0].extra_stats(),
        rxs[h - 1].extra_stats(),
    );
    report.queue = q.profile();
    report.wall_secs = timer.elapsed_secs();
    crate::metrics::perf_absorb(&report.queue, report.wall_secs);
    report
}

/// Relay chain under LAMS-DLC at every hop.
pub fn run_relay_lams(cfg: &RelayConfig) -> RunReport {
    let lcfg = cfg.base.lams_config();
    run_relay(
        cfg,
        |_| LamsTx::new(lams_dlc::Sender::new(lcfg.clone())),
        |_| LamsRx {
            inner: lams_dlc::Receiver::new(lcfg.clone()),
        },
        "lams-relay",
    )
}

/// Relay chain under SR-HDLC at every hop.
pub fn run_relay_sr(cfg: &RelayConfig) -> RunReport {
    let hcfg = cfg.base.hdlc_config();
    run_relay(
        cfg,
        |_| SrTx::new(hdlc::SrSender::new(hcfg.clone())),
        |_| SrRx {
            inner: hdlc::SrReceiver::new(hcfg.clone()),
        },
        "sr-relay",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Duration;

    fn relay(hops: usize, n: u64, ber: f64) -> RelayConfig {
        let mut base = ScenarioConfig::paper_default();
        base.n_packets = n;
        base.data_residual_ber = ber;
        base.ctrl_residual_ber = ber / 10.0;
        base.deadline = Duration::from_secs(120);
        RelayConfig { hops, base }
    }

    #[test]
    fn single_hop_matches_direct_runner() {
        let cfg = relay(1, 1_000, 1e-6);
        let relayed = run_relay_lams(&cfg);
        let direct = crate::scenario::run_lams(&cfg.base);
        assert_eq!(relayed.lost, 0);
        // Same protocol, same seed-derived... the relay uses shifted seeds,
        // so compare statistically: within 10%.
        let d = (relayed.elapsed_s() - direct.elapsed_s()).abs() / direct.elapsed_s();
        assert!(
            d < 0.1,
            "relay {} vs direct {}",
            relayed.elapsed_s(),
            direct.elapsed_s()
        );
    }

    #[test]
    fn three_hop_chain_is_lossless_and_ordered() {
        let cfg = relay(3, 1_500, 1e-6);
        let r = run_relay_lams(&cfg);
        assert_eq!(r.lost, 0);
        assert_eq!(r.delivered_unique, 1_500);
        assert_eq!(r.e2e_delay.count(), 1_500, "all released in order");
        assert!(!r.deadline_hit);
    }

    #[test]
    fn sr_chain_also_lossless() {
        let cfg = relay(2, 1_000, 1e-6);
        let r = run_relay_sr(&cfg);
        assert_eq!(r.lost, 0);
        assert_eq!(r.delivered_unique, 1_000);
    }

    #[test]
    fn per_hop_resequencing_penalty_compounds() {
        // §2.3's end-to-end claim: over several noisy hops the in-order
        // protocol's mean end-to-end delay grows faster than the
        // out-of-order one's.
        let cfg = relay(3, 3_000, 1e-5);
        let lams = run_relay_lams(&cfg);
        let sr = run_relay_sr(&cfg);
        assert_eq!(lams.lost, 0);
        assert_eq!(sr.lost, 0);
        assert!(
            lams.e2e_delay.mean() < sr.e2e_delay.mean(),
            "lams {} !< sr {}",
            lams.e2e_delay.mean(),
            sr.e2e_delay.mean()
        );
    }

    #[test]
    fn extra_hops_cost_one_propagation_each() {
        // The chain pipelines: serialization happens once (frames flow
        // through intermediate nodes as they arrive), so each extra hop
        // adds ≈ one propagation delay + t_proc, not a full batch time.
        let cfg1 = relay(1, 800, 1e-7);
        let d1 = run_relay_lams(&cfg1).e2e_delay.mean();
        let d3 = run_relay_lams(&relay(3, 800, 1e-7)).e2e_delay.mean();
        let per_hop = cfg1.base.one_way_delay().as_secs_f64();
        let increment = d3 - d1;
        let expect = 2.0 * per_hop;
        assert!(
            (increment - expect).abs() / expect < 0.25,
            "increment {increment}s vs 2 hops of propagation {expect}s"
        );
    }
}
