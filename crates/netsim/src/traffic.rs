//! Traffic generators.

use sim_core::{Duration, Instant, SimRng};

/// Inter-arrival pattern.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// Constant bit rate: one SDU every `interval` (deterministic, the
    /// paper's model of a saturated forwarding node when `interval = t_f`).
    Cbr {
        /// Inter-arrival spacing.
        interval: Duration,
    },
    /// Poisson arrivals with the given mean inter-arrival time.
    Poisson {
        /// Mean inter-arrival time.
        mean: Duration,
    },
    /// On-off bursts: `burst` SDUs back-to-back every `period`.
    OnOff {
        /// SDUs per burst.
        burst: u64,
        /// Burst period.
        period: Duration,
        /// Spacing inside a burst.
        spacing: Duration,
    },
    /// All SDUs available at t = 0 (the paper's "N I-frames in the
    /// sending buffer" batch model).
    Batch,
}

/// Generates `total` SDU arrival instants.
pub struct TrafficGen {
    pattern: Pattern,
    total: u64,
    issued: u64,
    next_at: Instant,
    in_burst: u64,
    rng: SimRng,
}

impl TrafficGen {
    /// Create a generator issuing `total` SDUs from t = 0.
    pub fn new(pattern: Pattern, total: u64, rng: SimRng) -> Self {
        TrafficGen {
            pattern,
            total,
            issued: 0,
            next_at: Instant::ZERO,
            in_burst: 0,
            rng,
        }
    }

    /// Total SDUs this generator will issue.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// SDUs issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Next arrival `(instant, id)`, or `None` when exhausted. Arrivals
    /// are non-decreasing in time. (Named like `Iterator::next` on
    /// purpose; the generator is stateful and RNG-backed, an `Iterator`
    /// impl would invite accidental cloning of the stream.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Instant, u64)> {
        if self.issued >= self.total {
            return None;
        }
        let id = self.issued;
        let at = self.next_at;
        self.issued += 1;
        self.next_at = match &self.pattern {
            Pattern::Cbr { interval } => at + *interval,
            Pattern::Poisson { mean } => {
                at + Duration::from_secs_f64(self.rng.exponential(mean.as_secs_f64()))
            }
            Pattern::OnOff {
                burst,
                period,
                spacing,
            } => {
                self.in_burst += 1;
                if self.in_burst >= *burst {
                    self.in_burst = 0;
                    // Next burst starts one period after this one began.
                    let burst_start = at
                        .checked_sub(*spacing * (*burst - 1))
                        .unwrap_or(Instant::ZERO);
                    burst_start + *period
                } else {
                    at + *spacing
                }
            }
            Pattern::Batch => at,
        };
        Some((at, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SeedSplitter;

    fn rng() -> SimRng {
        SeedSplitter::new(7).stream(42)
    }

    #[test]
    fn cbr_spacing() {
        let mut g = TrafficGen::new(
            Pattern::Cbr {
                interval: Duration::from_micros(100),
            },
            5,
            rng(),
        );
        let times: Vec<u64> = std::iter::from_fn(|| g.next())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(times, vec![0, 100_000, 200_000, 300_000, 400_000]);
        assert!(g.next().is_none());
    }

    #[test]
    fn batch_all_at_zero() {
        let mut g = TrafficGen::new(Pattern::Batch, 3, rng());
        let times: Vec<(Instant, u64)> = std::iter::from_fn(|| g.next()).collect();
        assert_eq!(
            times,
            vec![(Instant::ZERO, 0), (Instant::ZERO, 1), (Instant::ZERO, 2)]
        );
    }

    #[test]
    fn poisson_mean_interarrival() {
        let mean = Duration::from_micros(50);
        let n = 100_000;
        let mut g = TrafficGen::new(Pattern::Poisson { mean }, n, rng());
        let mut last = Instant::ZERO;
        let mut sum = 0.0;
        let mut count = 0u64;
        while let Some((t, _)) = g.next() {
            sum += t.duration_since(last).as_secs_f64();
            last = t;
            count += 1;
        }
        let measured = sum / (count - 1) as f64;
        assert!(
            (measured - 50e-6).abs() / 50e-6 < 0.05,
            "measured={measured}"
        );
    }

    #[test]
    fn onoff_bursts() {
        let mut g = TrafficGen::new(
            Pattern::OnOff {
                burst: 3,
                period: Duration::from_millis(1),
                spacing: Duration::from_micros(10),
            },
            7,
            rng(),
        );
        let times: Vec<u64> = std::iter::from_fn(|| g.next())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(
            times,
            vec![0, 10_000, 20_000, 1_000_000, 1_010_000, 1_020_000, 2_000_000]
        );
    }

    #[test]
    fn ids_sequential() {
        let mut g = TrafficGen::new(Pattern::Batch, 4, rng());
        let ids: Vec<u64> = std::iter::from_fn(|| g.next()).map(|(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn arrivals_monotone_all_patterns() {
        for pattern in [
            Pattern::Cbr {
                interval: Duration::from_micros(7),
            },
            Pattern::Poisson {
                mean: Duration::from_micros(7),
            },
            Pattern::OnOff {
                burst: 5,
                period: Duration::from_micros(100),
                spacing: Duration::from_micros(3),
            },
            Pattern::Batch,
        ] {
            let mut g = TrafficGen::new(pattern.clone(), 1000, rng());
            let mut last = Instant::ZERO;
            while let Some((t, _)) = g.next() {
                assert!(t >= last, "pattern {pattern:?} went backwards");
                last = t;
            }
        }
    }
}
