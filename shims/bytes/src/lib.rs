//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of the `bytes` API it actually uses: an
//! immutable, cheaply-cloneable byte container. `Bytes` is a thin wrapper
//! over `Arc<[u8]>` (clone = refcount bump, exactly the property the
//! simulator relies on when fanning a payload out to retransmission
//! queues), with a static-slice fast path so `from_static` allocates
//! nothing.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty `Bytes`.
    #[inline]
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a `'static` slice without copying.
    #[inline]
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes(Repr::Static(s))
    }

    /// Copy an arbitrary slice into a new shared buffer.
    #[inline]
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(s)))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// View as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Copy a sub-range out into its own `Bytes`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared(a) => Bytes::copy_from_slice(&a[start..end]),
        }
    }

    /// Copy into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    #[inline]
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    #[inline]
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    #[inline]
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Repr::Shared(Arc::from(b)))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "..{} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8; 4096]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn slice_ranges() {
        let a = Bytes::from_static(b"abcdef");
        assert_eq!(a.slice(1..4), Bytes::from_static(b"bcd"));
        assert_eq!(a.slice(..), a);
        assert_eq!(a.slice(4..), Bytes::from_static(b"ef"));
    }

    #[test]
    fn deref_gives_slice_ops() {
        let a = Bytes::from_static(b"xyz");
        assert_eq!(&a[1..], b"yz");
        assert_eq!(a.iter().copied().max(), Some(b'z'));
    }
}
