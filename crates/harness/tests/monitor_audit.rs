//! End-to-end audit coverage: real simulations stream their telemetry
//! into a live [`monitor::Monitor`], which must stay silent on healthy
//! runs and fire on seeded faults injected into the captured stream.

use harness::scenario::{run_lams, ScenarioConfig};
use monitor::{Invariant, Monitor, MonitorConfig};
use std::cell::RefCell;
use std::rc::Rc;
use telemetry::{BufferSink, SharedSink, TraceEvent, TraceRecord};

fn small(n: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_default();
    cfg.n_packets = n;
    cfg.deadline = sim_core::Duration::from_secs(60);
    cfg
}

/// Run a LAMS scenario with the given sink installed globally.
fn run_with_sink(cfg: &ScenarioConfig, sink: SharedSink) {
    let prev = telemetry::install_global(sink);
    run_lams(cfg);
    match prev {
        Some(p) => {
            telemetry::install_global(p);
        }
        None => {
            telemetry::uninstall_global();
        }
    }
}

#[test]
fn live_monitor_passes_clean_and_errored_runs() {
    for ber in [0.0, 1e-5] {
        let mut cfg = small(400);
        cfg.data_residual_ber = ber;
        let mon = Rc::new(RefCell::new(Monitor::new(MonitorConfig::default())));
        run_with_sink(&cfg, mon.clone());
        let mut mon = mon.borrow_mut();
        assert_eq!(mon.total_findings(), 0, "ber={ber}: {:?}", mon.findings());
        let report = mon.take_report();
        let exp = &report.experiments[0];
        assert_eq!(exp.runs, 1);
        assert_eq!(exp.delivered, 400);
        assert!(exp.delivery_quantile(0.99).is_some());
        assert!(!report.window_lines.is_empty());
    }
}

fn captured_run(ber: f64) -> Vec<TraceRecord> {
    let mut cfg = small(300);
    cfg.data_residual_ber = ber;
    let buf = Rc::new(RefCell::new(BufferSink::new()));
    run_with_sink(&cfg, buf.clone());
    let records = buf.borrow_mut().take();
    assert!(!records.is_empty());
    records
}

fn audit(records: impl IntoIterator<Item = TraceRecord>) -> Monitor {
    let mut mon = Monitor::new(MonitorConfig::default());
    for rec in records {
        mon.observe(&rec);
    }
    mon
}

#[test]
fn injected_lost_release_fails_the_audit() {
    // Drop one frame's buffer_release from an otherwise healthy run:
    // the no-loss invariant must flag it as never resolved.
    let records = captured_run(1e-5);
    let mut dropped = false;
    let mutated = records.into_iter().filter(|r| {
        if !dropped && matches!(r.event, TraceEvent::BufferRelease { seq: 17, .. }) {
            dropped = true;
            return false;
        }
        true
    });
    let mon = audit(mutated);
    assert!(mon.total_findings() > 0, "dropped release must be caught");
    assert!(mon
        .findings()
        .iter()
        .any(|f| f.invariant == Invariant::NoLoss));
}

#[test]
fn injected_early_release_fails_the_audit() {
    // Shift one release 1 ms before its covering checkpoint: release
    // must only happen on an implicit ACK, at the checkpoint instant.
    let records = captured_run(0.0);
    let mut shifted = false;
    let mutated = records.into_iter().map(|mut r| {
        if !shifted && matches!(r.event, TraceEvent::BufferRelease { seq: 5, .. }) {
            shifted = true;
            r.t = r.t - sim_core::Duration::from_millis(1);
        }
        r
    });
    let mon = audit(mutated);
    assert!(
        mon.findings()
            .iter()
            .any(|f| f.invariant == Invariant::ReleaseOnAck),
        "{:?}",
        mon.findings()
    );
}

#[test]
fn injected_duplicate_wire_seq_fails_the_audit() {
    // Rewrite one transmission's wire seq to repeat its predecessor's:
    // renumbering guarantees strictly monotone wire numbers.
    let records = captured_run(0.0);
    let mut last = None;
    let mut corrupted = false;
    let mutated = records.into_iter().map(|mut r| {
        if let TraceEvent::IFrameTx { seq, .. } = &mut r.event {
            if !corrupted && *seq == 20 {
                corrupted = true;
                *seq = last.unwrap_or(*seq);
            } else {
                last = Some(*seq);
            }
        }
        r
    });
    let mon = audit(mutated);
    assert!(mon
        .findings()
        .iter()
        .any(|f| f.invariant == Invariant::MonotoneSeq));
}
