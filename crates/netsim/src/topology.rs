//! Nodes, roles, directed links, and the ids wiring endpoints to them.
//!
//! A [`Topology`] is the static shape of a simulation: which nodes
//! exist, what role each plays, and which directed links connect them.
//! Endpoints, collectors and traffic sources attach to this shape
//! through the [`crate::engine::SimBuilder`]; `build()` validates the
//! wiring against the declared roles and returns a [`TopologyError`]
//! listing every inconsistency it finds.

use std::fmt;

/// Index of a node in a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Index of a directed link in a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Index of a sending endpoint registered with the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TxId(pub usize);

/// Index of a receiving endpoint registered with the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RxId(pub usize);

/// Index of a collector registered with the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ColId(pub usize);

/// Either side of a protocol, where a link needs to address both
/// (senders competing for a transmitter, listeners sharing an arrival).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EndpointId {
    /// A sending endpoint.
    Tx(TxId),
    /// A receiving endpoint.
    Rx(RxId),
}

impl From<TxId> for EndpointId {
    fn from(id: TxId) -> Self {
        EndpointId::Tx(id)
    }
}

impl From<RxId> for EndpointId {
    fn from(id: RxId) -> Self {
        EndpointId::Rx(id)
    }
}

/// What a node does in the topology — validated against its wiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// Originates traffic: hosts a sender fed by a traffic source.
    Source,
    /// Terminates traffic: hosts a receiver delivering to a collector.
    Sink,
    /// Store-and-forward: hosts a receiver forwarding into a co-located
    /// sender.
    Relay,
    /// Full-duplex endpoint: originates *and* terminates a flow (its
    /// receiver's control frames share the node's transmitter with its
    /// sender's I-frames).
    Duplex,
}

/// One directed link: frames flow `from → to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Direction label for channel-drop trace records (`"fwd"`/`"rev"`).
    pub dir: &'static str,
}

/// The static shape of a simulation: node roles plus directed links.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Role of each node, indexed by [`NodeId`].
    pub roles: Vec<NodeRole>,
    /// The directed links, indexed by [`LinkId`].
    pub links: Vec<LinkSpec>,
}

impl Topology {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.roles.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

/// Every wiring inconsistency found while building a simulation.
#[derive(Debug)]
pub struct TopologyError(pub Vec<String>);

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology: {}", self.0.join("; "))
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_id_conversions() {
        assert_eq!(EndpointId::from(TxId(3)), EndpointId::Tx(TxId(3)));
        assert_eq!(EndpointId::from(RxId(0)), EndpointId::Rx(RxId(0)));
    }

    #[test]
    fn error_lists_every_problem() {
        let e = TopologyError(vec!["a".into(), "b".into()]);
        let msg = e.to_string();
        assert!(msg.contains("a") && msg.contains("b"), "{msg}");
    }
}
