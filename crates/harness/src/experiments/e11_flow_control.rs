//! E11 — Stop-Go flow control (§3.4): the receiver anticipates overflow
//! of its processing queue, sets the Stop bit, the sender decreases its
//! rate multiplicatively, and recovers stepwise on Go. Overflowing frames
//! may be discarded but are NAK'd and retransmitted — losses due to
//! congestion stay zero end-to-end.
//!
//! Overload is created by a slow receiver: `t_proc` is set above the
//! frame service time, so an unthrottled sender must drown it.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use crate::scenario::{run_lams, ScenarioConfig};
use crate::traffic::Pattern;
use sim_core::Duration;

/// Run E11.
pub fn run(quick: bool) -> ExperimentOutput {
    let mut cfg = ScenarioConfig::paper_default();
    let t_f = cfg.t_f();
    cfg.pattern = Pattern::Cbr { interval: t_f };
    let seconds = if quick { 0.3 } else { 1.5 };
    cfg.n_packets = (seconds / t_f.as_secs_f64()) as u64;
    // Receiver processes at half the line rate and has a small queue.
    cfg.t_proc = Duration::from_nanos(t_f.as_nanos() * 2);
    cfg.rx_capacity = Some((64, 24));
    cfg.sample_every = Duration::from_millis(1);
    cfg.deadline = Duration::from_secs(120);
    let throttled = run_lams(&cfg);

    // Control: an unconstrained receiver at the same settings.
    let mut cfg_free = cfg.clone();
    cfg_free.rx_capacity = None;
    let free = run_lams(&cfg_free);

    let mut table = Table::new(
        "Stop-Go flow control under a slow receiver",
        &[
            "receiver",
            "delivered",
            "lost",
            "lams.receiver.overflow_discards",
            "min_rate",
            "final_rate",
            "elapsed_ms",
        ],
    );
    let min_rate = throttled
        .rate
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    table.row(vec![
        "capacity 64 (Stop at 24)".into(),
        throttled.delivered_unique.into(),
        throttled.lost.into(),
        throttled
            .extra("lams.receiver.overflow_discards")
            .unwrap_or(0.0)
            .into(),
        min_rate.into(),
        throttled.rate.last_value().unwrap_or(1.0).into(),
        (throttled.elapsed_s() * 1e3).into(),
    ]);
    table.row(vec![
        "unbounded (control)".into(),
        free.delivered_unique.into(),
        free.lost.into(),
        free.extra("lams.receiver.overflow_discards")
            .unwrap_or(0.0)
            .into(),
        1.0.into(),
        free.rate.last_value().unwrap_or(1.0).into(),
        (free.elapsed_s() * 1e3).into(),
    ]);

    ExperimentOutput {
        id: "E11",
        title: "Stop-Go flow control (paper §3.4)".into(),
        tables: vec![table],
        traces: vec![throttled.rate.clone(), throttled.rx_buffer.clone()],
        notes: vec![
            "expected shape: the rate trace drops multiplicatively on Stop \
             and creeps back on Go, oscillating around the receiver's \
             service rate (0.5 of line); congestion causes discards but \
             zero end-to-end loss"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_flow_control_throttles_without_loss() {
        let out = run(true);
        let t = &out.tables[0];
        // Zero loss despite overflow discards.
        assert_eq!(
            t.value(0, 2).unwrap(),
            0.0,
            "congestion must not lose frames"
        );
        // The controller actually engaged.
        let min_rate = t.value(0, 4).unwrap();
        assert!(min_rate < 1.0, "rate never decreased: {min_rate}");
        // And the slow receiver stretched the run relative to the control.
        let slow = t.value(0, 6).unwrap();
        let fast = t.value(1, 6).unwrap();
        assert!(slow > fast, "slow-receiver run must take longer");
    }
}
