//! Byte-level wire format for the HDLC baselines.
//!
//! Layout (integers little-endian; sequence numbers compressed modulo
//! `M = 2^seq_bits` into a u32 field):
//!
//! ```text
//! Info: | 0x11 | ctl:u8 (bit0 = poll) | ns:u32 | packet_id:u64 | len:u16 | payload | CRC-32 |
//! RR:   | 0x12 | ctl:u8 (bit0 = fin)  | nr:u32 | CRC-16 |
//! SREJ: | 0x13 | 0    | nr:u32 | CRC-16 |
//! REJ:  | 0x14 | 0    | nr:u32 | CRC-16 |
//! ```
//!
//! Expansion of wire numbers back to logical values uses the receiver's
//! current window position as reference (the ½-window rule guaranteed by
//! `W ≤ M/2`).

use crate::frame::HdlcFrame;
use bytes::Bytes;
use fec::{Crc16Ccitt, Crc32};

const TYPE_INFO: u8 = 0x11;
const TYPE_RR: u8 = 0x12;
const TYPE_SREJ: u8 = 0x13;
const TYPE_REJ: u8 = 0x14;

/// Decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Structurally invalid.
    Truncated,
    /// Unknown type byte.
    UnknownType(u8),
    /// CRC failure.
    BadCrc,
}

fn compress(v: u64, modulus: u64) -> u32 {
    (v % modulus) as u32
}

fn expand(wire: u32, reference: u64, modulus: u64) -> u64 {
    let base = reference / modulus * modulus;
    [
        base.checked_sub(modulus).map(|b| b + wire as u64),
        Some(base + wire as u64),
        Some(base + modulus + wire as u64),
    ]
    .into_iter()
    .flatten()
    .min_by_key(|&c| c.abs_diff(reference))
    .expect("candidate")
}

/// Serialize a frame; `modulus = 2^seq_bits`.
pub fn encode(frame: &HdlcFrame, modulus: u64) -> Vec<u8> {
    match frame {
        HdlcFrame::Info {
            ns,
            packet_id,
            poll,
            payload,
        } => {
            let mut out = Vec::with_capacity(2 + 4 + 8 + 2 + payload.len() + 4);
            out.push(TYPE_INFO);
            out.push(*poll as u8);
            out.extend_from_slice(&compress(*ns, modulus).to_le_bytes());
            out.extend_from_slice(&packet_id.to_le_bytes());
            let len: u16 = payload.len().try_into().expect("payload too large");
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(payload);
            Crc32::append(&mut out);
            out
        }
        HdlcFrame::Rr { nr, fin } => supervisory(TYPE_RR, *fin as u8, *nr, modulus),
        HdlcFrame::Srej { nr } => supervisory(TYPE_SREJ, 0, *nr, modulus),
        HdlcFrame::Rej { nr } => supervisory(TYPE_REJ, 0, *nr, modulus),
    }
}

fn supervisory(ty: u8, ctl: u8, nr: u64, modulus: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + 4 + 2);
    out.push(ty);
    out.push(ctl);
    out.extend_from_slice(&compress(nr, modulus).to_le_bytes());
    Crc16Ccitt::append(&mut out);
    out
}

/// Parse a frame; `reference` anchors wire-number expansion.
pub fn decode(buf: &[u8], reference: u64, modulus: u64) -> Result<HdlcFrame, WireError> {
    let (&ty, _) = buf.split_first().ok_or(WireError::Truncated)?;
    match ty {
        TYPE_INFO => {
            if !Crc32::verify(buf) {
                return Err(WireError::BadCrc);
            }
            let body = &buf[1..buf.len() - 4];
            if body.len() < 1 + 4 + 8 + 2 {
                return Err(WireError::Truncated);
            }
            let poll = body[0] & 1 != 0;
            let ns = u32::from_le_bytes(body[1..5].try_into().unwrap());
            let packet_id = u64::from_le_bytes(body[5..13].try_into().unwrap());
            let len = u16::from_le_bytes(body[13..15].try_into().unwrap()) as usize;
            let payload = &body[15..];
            if payload.len() != len {
                return Err(WireError::Truncated);
            }
            Ok(HdlcFrame::Info {
                ns: expand(ns, reference, modulus),
                packet_id,
                poll,
                payload: Bytes::copy_from_slice(payload),
            })
        }
        TYPE_RR | TYPE_SREJ | TYPE_REJ => {
            if !Crc16Ccitt::verify(buf) {
                return Err(WireError::BadCrc);
            }
            let body = &buf[1..buf.len() - 2];
            if body.len() != 5 {
                return Err(WireError::Truncated);
            }
            let ctl = body[0];
            let nr = expand(
                u32::from_le_bytes(body[1..5].try_into().unwrap()),
                reference,
                modulus,
            );
            Ok(match ty {
                TYPE_RR => HdlcFrame::Rr {
                    nr,
                    fin: ctl & 1 != 0,
                },
                TYPE_SREJ => HdlcFrame::Srej { nr },
                _ => HdlcFrame::Rej { nr },
            })
        }
        other => Err(WireError::UnknownType(other)),
    }
}

/// Encoded byte length without materialising the buffer.
pub fn encoded_len(frame: &HdlcFrame) -> usize {
    match frame {
        HdlcFrame::Info { payload, .. } => 2 + 4 + 8 + 2 + payload.len() + 4,
        _ => 2 + 4 + 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const M: u64 = 2048;

    fn roundtrip(f: &HdlcFrame, reference: u64) -> HdlcFrame {
        let b = encode(f, M);
        assert_eq!(b.len(), encoded_len(f));
        decode(&b, reference, M).expect("decode")
    }

    #[test]
    fn info_roundtrip() {
        let f = HdlcFrame::Info {
            ns: 5000,
            packet_id: 77,
            poll: true,
            payload: Bytes::from_static(b"window data"),
        };
        assert_eq!(roundtrip(&f, 4990), f);
    }

    #[test]
    fn supervisory_roundtrips() {
        for f in [
            HdlcFrame::Rr {
                nr: 1000,
                fin: true,
            },
            HdlcFrame::Rr {
                nr: 1000,
                fin: false,
            },
            HdlcFrame::Srej { nr: 999 },
            HdlcFrame::Rej { nr: 1001 },
        ] {
            assert_eq!(roundtrip(&f, 1000), f);
        }
    }

    #[test]
    fn corruption_detected() {
        let f = HdlcFrame::Rr { nr: 3, fin: true };
        let mut b = encode(&f, M);
        for i in 0..b.len() {
            b[i] ^= 0x08;
            assert!(decode(&b, 0, M).is_err(), "byte {i}");
            b[i] ^= 0x08;
        }
    }

    #[test]
    fn unknown_and_truncated() {
        assert_eq!(decode(&[], 0, M), Err(WireError::Truncated));
        assert_eq!(
            decode(&[0xEE, 0, 0], 0, M),
            Err(WireError::UnknownType(0xEE))
        );
    }

    proptest! {
        #[test]
        fn prop_info_roundtrip(
            ns in 0u64..100_000,
            pid in proptest::num::u64::ANY,
            poll in proptest::bool::ANY,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..256),
        ) {
            let f = HdlcFrame::Info { ns, packet_id: pid, poll, payload: Bytes::from(payload) };
            prop_assert_eq!(roundtrip(&f, ns), f);
        }

        #[test]
        fn prop_supervisory_roundtrip(nr in 0u64..100_000, fin in proptest::bool::ANY) {
            let f = HdlcFrame::Rr { nr, fin };
            prop_assert_eq!(roundtrip(&f, nr), f);
        }

        #[test]
        fn prop_reject_roundtrips(nr in 0u64..100_000, selective in proptest::bool::ANY) {
            let f = if selective {
                HdlcFrame::Srej { nr }
            } else {
                HdlcFrame::Rej { nr }
            };
            prop_assert_eq!(roundtrip(&f, nr), f);
        }

        #[test]
        fn prop_garbage_never_panics(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..96),
            reference in 0u64..1_000_000,
        ) {
            // Raw network input must never panic the decoder.
            let _ = decode(&bytes, reference, M);
        }

        #[test]
        fn prop_truncated_never_panics(
            ns in 0u64..100_000,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
            cut in proptest::num::u64::ANY,
        ) {
            let f = HdlcFrame::Info {
                ns,
                packet_id: ns ^ 0x5A5A,
                poll: false,
                payload: Bytes::from(payload),
            };
            let bytes = encode(&f, M);
            let cut = (cut as usize) % bytes.len(); // strictly shorter
            prop_assert!(decode(&bytes[..cut], ns, M).is_err());
        }
    }
}
