//! Sender-side holding times (§4).
//!
//! The paper derives the LAMS-DLC mean holding time recursively:
//!
//! ```text
//! H_frame = (1 − P_F)·H_succ + P_F·H_fail
//! H_succ  = D_trans(1) = R + t_f + t_c + t_proc + (n̄_cp − ½)·I_cp
//! H_fail  = H_succ + H_frame
//! ⇒ H_frame = H_succ / (1 − P_F) = s̄_LAMS · H_succ
//! ```
//!
//! For SR-HDLC the same recursion applies with the HDLC per-attempt
//! resolution delay and retransmission probability — but there the
//! per-attempt delay includes the timeout α on every failed attempt, and
//! in the worst case (repeated ACK loss) the holding time of a *specific*
//! frame is unbounded, which is the §2.3 argument for why HDLC's
//! numbering cannot be bounded.

use crate::params::LinkParams;
use crate::periods::{n_bar_cp, s_bar_hdlc, s_bar_lams};

/// LAMS-DLC holding time of a frame that succeeds on a given attempt:
/// `H_succ = R + t_f + t_c + t_proc + (n̄_cp − ½)·I_cp`.
pub fn h_succ_lams(p: &LinkParams) -> f64 {
    p.r + p.t_f + p.t_c + p.t_proc + (n_bar_cp(p) - 0.5) * p.i_cp
}

/// LAMS-DLC mean holding time `H_frame = s̄_LAMS · H_succ` (§4).
pub fn h_frame_lams(p: &LinkParams) -> f64 {
    s_bar_lams(p) * h_succ_lams(p)
}

/// The worst-case (deterministic bound) holding time of any single LAMS
/// sequence number: the resolving period
/// `R + I_cp/2 + C_depth·I_cp` (§3.3) plus the serialization terms.
pub fn h_bound_lams(p: &LinkParams) -> f64 {
    p.r + 0.5 * p.i_cp + p.c_depth as f64 * p.i_cp + p.t_f + p.t_c + p.t_proc
}

/// SR-HDLC per-attempt resolution delay: a successful attempt resolves
/// after `R + 2t_proc + t_c`; a failed attempt costs the timeout
/// `t_out = R + α`.
pub fn h_attempt_hdlc(p: &LinkParams) -> f64 {
    let q = (1.0 - p.p_f) * (1.0 - p.p_c);
    q * (p.r + 2.0 * p.t_proc + p.t_c) + (1.0 - q) * p.t_out()
}

/// SR-HDLC mean holding time: `s̄_HDLC` attempts, each paying the blended
/// attempt delay plus the frame transmission.
pub fn h_frame_hdlc(p: &LinkParams) -> f64 {
    s_bar_hdlc(p) * (p.t_f + h_attempt_hdlc(p))
}

/// Probability that an SR-HDLC frame is still held after `k` attempts —
/// `P_R^k`, which never reaches zero for `P_R > 0`: the §2.3 point that
/// `H_frame^HDLC` is unbounded (each attempt reuses the *same* sequence
/// number, so the number is pinned arbitrarily long).
pub fn hdlc_holding_tail(p: &LinkParams, k: u32) -> f64 {
    let pr = crate::periods::p_r_hdlc(p);
    pr.powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkParams;

    fn params() -> LinkParams {
        LinkParams::paper_default()
    }

    #[test]
    fn recursion_fixed_point() {
        // H_frame must satisfy the paper's recursion
        // H = (1−P_F)·H_succ + P_F·(H_succ + H).
        let p = params();
        let h = h_frame_lams(&p);
        let rec = (1.0 - p.p_f) * h_succ_lams(&p) + p.p_f * (h_succ_lams(&p) + h);
        assert!((h - rec).abs() < 1e-12, "h={h} rec={rec}");
    }

    #[test]
    fn error_free_holding_is_one_round() {
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        let expect = p.r + p.t_f + p.t_c + p.t_proc + 0.5 * p.i_cp;
        assert!((h_frame_lams(&p) - expect).abs() < 1e-15);
    }

    #[test]
    fn holding_grows_with_checkpoint_interval() {
        // §3.4 buffer control: decreasing W_cp decreases the holding time.
        let mut small = params();
        small.i_cp = 1e-3;
        let mut large = params();
        large.i_cp = 20e-3;
        assert!(h_frame_lams(&small) < h_frame_lams(&large));
    }

    #[test]
    fn lams_mean_holding_below_deterministic_bound_at_low_error() {
        let p = params();
        assert!(h_frame_lams(&p) < h_bound_lams(&p) * 2.0);
        // And in the error-free limit, well below the bound.
        let mut clean = params();
        clean.p_f = 0.0;
        clean.p_c = 0.0;
        assert!(h_frame_lams(&clean) < h_bound_lams(&clean));
    }

    #[test]
    fn hdlc_holds_longer_under_errors() {
        // §3.3: a control-frame loss costs LAMS one I_cp but costs HDLC a
        // full timeout. The effect dominates once control loss and the
        // timeout slack are non-trivial (the LAMS-network regime: bursty
        // channel eating NAKs, high mobility inflating α).
        let mut p = params();
        p.p_f = 0.01;
        p.p_c = 0.10; // burst-degraded acknowledgement path
        p.alpha = 50e-3;
        assert!(
            h_frame_hdlc(&p) > h_frame_lams(&p),
            "hdlc={} lams={}",
            h_frame_hdlc(&p),
            h_frame_lams(&p)
        );
    }

    #[test]
    fn marginal_cost_of_control_loss_smaller_for_lams() {
        // The §3.3 claim in differential form: raising P_C by the same
        // amount raises the HDLC holding time more than the LAMS one.
        let mut lo = params();
        lo.p_c = 0.0;
        let mut hi = params();
        hi.p_c = 0.2;
        let d_lams = h_frame_lams(&hi) - h_frame_lams(&lo);
        let d_hdlc = h_frame_hdlc(&hi) - h_frame_hdlc(&lo);
        assert!(d_hdlc > d_lams, "Δhdlc={d_hdlc} Δlams={d_lams}");
    }

    #[test]
    fn hdlc_tail_never_vanishes() {
        let p = params();
        let mut last = 1.0;
        for k in 1..50 {
            let t = hdlc_holding_tail(&p, k);
            assert!(t > 0.0, "tail vanished at k={k}");
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn holding_monotone_in_rtt() {
        let mut near = params();
        near.r = 10e-3;
        let mut far = params();
        far.r = 60e-3;
        assert!(h_frame_lams(&far) > h_frame_lams(&near));
        assert!(h_frame_hdlc(&far) > h_frame_hdlc(&near));
    }
}
