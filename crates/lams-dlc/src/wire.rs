//! Byte-level wire format.
//!
//! The discrete-event harness exchanges [`Frame`] values directly (the
//! channel model decides corruption analytically), but the protocol is
//! also fully serializable for the bit-exact FEC path and for byte-count
//! accounting. Layout (all integers little-endian):
//!
//! ```text
//! I-frame:     | 0x01 | seq:u32 | packet_id:u64 | len:u16 | payload | CRC-32 |
//! CheckPoint:  | 0x02 | flags:u8 | index:u64 | covered:u32 | nak_count:u16 |
//!              | naks:u32 × n | (probe:u64)? | CRC-16 |
//! Request-NAK: | 0x03 | probe:u64 | CRC-16 |
//! ```
//!
//! Sequence numbers travel compressed modulo the configured numbering
//! size ([`crate::seq`]); `covered` and each NAK entry are wire-compressed
//! too. I-frames carry a CRC-32 (large payloads), control frames the
//! HDLC CRC-16 FCS — consistent with the two FEC grades of assumption 4.
//! The checkpoint length **varies with the number of NAKs**, exactly as
//! §3.1 specifies ("their length varies according to the number of the
//! erroneous I-frames communicated").

use crate::frame::{CheckPoint, ControlFrame, Frame, InfoFrame, PacketId, StopGo};
use crate::seq;
use bytes::Bytes;
use fec::{Crc16Ccitt, Crc32};

const TYPE_INFO: u8 = 0x01;
const TYPE_CHECKPOINT: u8 = 0x02;
const TYPE_REQUEST_NAK: u8 = 0x03;

const FLAG_ENFORCED: u8 = 0b0000_0001;
const FLAG_STOP: u8 = 0b0000_0010;
const FLAG_PROBE: u8 = 0b0000_0100;

/// Errors from [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short or internally inconsistent lengths.
    Truncated,
    /// Unknown frame type byte.
    UnknownType(u8),
    /// CRC check failed — the frame is residually corrupted.
    BadCrc,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            WireError::BadCrc => write!(f, "CRC mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialize a frame. `modulus` is the configured numbering size used to
/// compress sequence numbers.
pub fn encode(frame: &Frame, modulus: u64) -> Vec<u8> {
    match frame {
        Frame::Info(i) => {
            let mut out = Vec::with_capacity(1 + 4 + 8 + 2 + i.payload.len() + 4);
            out.push(TYPE_INFO);
            out.extend_from_slice(&seq::compress(i.seq, modulus).to_le_bytes());
            out.extend_from_slice(&i.packet_id.0.to_le_bytes());
            let len: u16 = i
                .payload
                .len()
                .try_into()
                .expect("payload exceeds u16 length field");
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&i.payload);
            Crc32::append(&mut out);
            out
        }
        Frame::Control(ControlFrame::CheckPoint(cp)) => {
            let mut out = Vec::with_capacity(1 + 1 + 8 + 4 + 2 + 4 * cp.naks.len() + 8 + 2);
            out.push(TYPE_CHECKPOINT);
            let mut flags = 0u8;
            if cp.enforced {
                flags |= FLAG_ENFORCED;
            }
            if cp.stop_go == StopGo::Stop {
                flags |= FLAG_STOP;
            }
            if cp.probe.is_some() {
                flags |= FLAG_PROBE;
            }
            out.push(flags);
            out.extend_from_slice(&cp.index.to_le_bytes());
            out.extend_from_slice(&seq::compress(cp.covered, modulus).to_le_bytes());
            let n: u16 = cp
                .naks
                .len()
                .try_into()
                .expect("too many NAKs for u16 count");
            out.extend_from_slice(&n.to_le_bytes());
            for &nak in &cp.naks {
                out.extend_from_slice(&seq::compress(nak, modulus).to_le_bytes());
            }
            if let Some(p) = cp.probe {
                out.extend_from_slice(&p.to_le_bytes());
            }
            Crc16Ccitt::append(&mut out);
            out
        }
        Frame::Control(ControlFrame::RequestNak { probe }) => {
            let mut out = Vec::with_capacity(1 + 8 + 2);
            out.push(TYPE_REQUEST_NAK);
            out.extend_from_slice(&probe.to_le_bytes());
            Crc16Ccitt::append(&mut out);
            out
        }
    }
}

/// Parse a frame. `reference` is the receiver's highest logical sequence
/// number seen so far (used to expand compressed numbers); `modulus` must
/// match the sender's.
pub fn decode(buf: &[u8], reference: u64, modulus: u64) -> Result<Frame, WireError> {
    let (&ty, _) = buf.split_first().ok_or(WireError::Truncated)?;
    match ty {
        TYPE_INFO => {
            if !Crc32::verify(buf) {
                return Err(WireError::BadCrc);
            }
            let body = &buf[1..buf.len() - 4];
            if body.len() < 4 + 8 + 2 {
                return Err(WireError::Truncated);
            }
            let wire_seq = u32::from_le_bytes(body[0..4].try_into().unwrap());
            let packet_id = u64::from_le_bytes(body[4..12].try_into().unwrap());
            let len = u16::from_le_bytes(body[12..14].try_into().unwrap()) as usize;
            let payload = &body[14..];
            if payload.len() != len {
                return Err(WireError::Truncated);
            }
            Ok(Frame::Info(InfoFrame {
                seq: seq::expand(wire_seq, reference, modulus),
                packet_id: PacketId(packet_id),
                payload: Bytes::copy_from_slice(payload),
            }))
        }
        TYPE_CHECKPOINT => {
            if !Crc16Ccitt::verify(buf) {
                return Err(WireError::BadCrc);
            }
            let body = &buf[1..buf.len() - 2];
            if body.len() < 1 + 8 + 4 + 2 {
                return Err(WireError::Truncated);
            }
            let flags = body[0];
            let index = u64::from_le_bytes(body[1..9].try_into().unwrap());
            let covered_wire = u32::from_le_bytes(body[9..13].try_into().unwrap());
            let n = u16::from_le_bytes(body[13..15].try_into().unwrap()) as usize;
            let mut off = 15;
            if body.len() < off + 4 * n {
                return Err(WireError::Truncated);
            }
            let mut naks = Vec::with_capacity(n);
            for _ in 0..n {
                let w = u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
                naks.push(seq::expand(w, reference, modulus));
                off += 4;
            }
            let probe = if flags & FLAG_PROBE != 0 {
                if body.len() < off + 8 {
                    return Err(WireError::Truncated);
                }
                let p = u64::from_le_bytes(body[off..off + 8].try_into().unwrap());
                off += 8;
                Some(p)
            } else {
                None
            };
            if body.len() != off {
                return Err(WireError::Truncated);
            }
            Ok(Frame::Control(ControlFrame::CheckPoint(CheckPoint {
                index,
                covered: seq::expand(covered_wire, reference, modulus),
                naks,
                enforced: flags & FLAG_ENFORCED != 0,
                probe,
                stop_go: if flags & FLAG_STOP != 0 {
                    StopGo::Stop
                } else {
                    StopGo::Go
                },
            })))
        }
        TYPE_REQUEST_NAK => {
            if !Crc16Ccitt::verify(buf) {
                return Err(WireError::BadCrc);
            }
            let body = &buf[1..buf.len() - 2];
            if body.len() != 8 {
                return Err(WireError::Truncated);
            }
            Ok(Frame::Control(ControlFrame::RequestNak {
                probe: u64::from_le_bytes(body.try_into().unwrap()),
            }))
        }
        other => Err(WireError::UnknownType(other)),
    }
}

/// Encoded size in bytes without materialising the buffer (used for
/// transmission-time accounting in the harness).
pub fn encoded_len(frame: &Frame) -> usize {
    match frame {
        Frame::Info(i) => 1 + 4 + 8 + 2 + i.payload.len() + 4,
        Frame::Control(ControlFrame::CheckPoint(cp)) => {
            1 + 1 + 8 + 4 + 2 + 4 * cp.naks.len() + if cp.probe.is_some() { 8 } else { 0 } + 2
        }
        Frame::Control(ControlFrame::RequestNak { .. }) => 1 + 8 + 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const M: u64 = 1 << 16;

    fn roundtrip(f: &Frame, reference: u64) -> Frame {
        let bytes = encode(f, M);
        assert_eq!(bytes.len(), encoded_len(f));
        decode(&bytes, reference, M).expect("decode")
    }

    #[test]
    fn info_roundtrip() {
        let f = Frame::Info(InfoFrame {
            seq: 123_456,
            packet_id: PacketId(987),
            payload: Bytes::from_static(b"hello satellite"),
        });
        assert_eq!(roundtrip(&f, 123_450), f);
    }

    #[test]
    fn info_empty_payload() {
        let f = Frame::Info(InfoFrame {
            seq: 7,
            packet_id: PacketId(0),
            payload: Bytes::new(),
        });
        assert_eq!(roundtrip(&f, 0), f);
    }

    #[test]
    fn checkpoint_roundtrip_all_flags() {
        let f = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
            index: 42,
            covered: 70_010,
            naks: vec![70_001, 70_003, 70_007],
            enforced: true,
            probe: Some(9),
            stop_go: StopGo::Stop,
        }));
        assert_eq!(roundtrip(&f, 70_000), f);
    }

    #[test]
    fn checkpoint_roundtrip_plain() {
        let f = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
            index: 1,
            covered: 5,
            naks: vec![],
            enforced: false,
            probe: None,
            stop_go: StopGo::Go,
        }));
        assert_eq!(roundtrip(&f, 0), f);
    }

    #[test]
    fn request_nak_roundtrip() {
        let f = Frame::Control(ControlFrame::RequestNak { probe: u64::MAX });
        assert_eq!(roundtrip(&f, 0), f);
    }

    #[test]
    fn checkpoint_length_varies_with_naks() {
        // §3.1: control command length varies with the NAK count.
        let base = CheckPoint {
            index: 0,
            covered: 0,
            naks: vec![],
            enforced: false,
            probe: None,
            stop_go: StopGo::Go,
        };
        let with_naks = CheckPoint {
            naks: vec![1, 2, 3, 4],
            ..base.clone()
        };
        let l0 = encoded_len(&Frame::Control(ControlFrame::CheckPoint(base)));
        let l4 = encoded_len(&Frame::Control(ControlFrame::CheckPoint(with_naks)));
        assert_eq!(l4 - l0, 16);
    }

    #[test]
    fn corrupted_bytes_fail_crc() {
        let f = Frame::Info(InfoFrame {
            seq: 10,
            packet_id: PacketId(1),
            payload: Bytes::from_static(b"data"),
        });
        let mut bytes = encode(&f, M);
        for i in 0..bytes.len() {
            bytes[i] ^= 0x40;
            let r = decode(&bytes, 0, M);
            assert!(
                matches!(r, Err(WireError::BadCrc) | Err(WireError::UnknownType(_))),
                "byte {i}: {r:?}"
            );
            bytes[i] ^= 0x40;
        }
    }

    #[test]
    fn truncated_and_empty() {
        assert_eq!(decode(&[], 0, M), Err(WireError::Truncated));
        let f = Frame::Control(ControlFrame::RequestNak { probe: 1 });
        let bytes = encode(&f, M);
        for cut in 1..bytes.len() {
            let r = decode(&bytes[..cut], 0, M);
            assert!(r.is_err(), "cut {cut} decoded: {r:?}");
        }
    }

    #[test]
    fn unknown_type() {
        assert_eq!(
            decode(&[0x7F, 0, 0], 0, M),
            Err(WireError::UnknownType(0x7F))
        );
    }

    proptest! {
        #[test]
        fn prop_info_roundtrip(
            seq in 0u64..1_000_000,
            pid in proptest::num::u64::ANY,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..512),
        ) {
            let f = Frame::Info(InfoFrame {
                seq,
                packet_id: PacketId(pid),
                payload: Bytes::from(payload),
            });
            prop_assert_eq!(roundtrip(&f, seq), f);
        }

        #[test]
        fn prop_checkpoint_roundtrip(
            index in proptest::num::u64::ANY,
            base in 1000u64..1_000_000,
            offsets in proptest::collection::vec(0u64..100, 0..32),
            enforced in proptest::bool::ANY,
            stop in proptest::bool::ANY,
        ) {
            let mut naks: Vec<u64> = offsets.iter().map(|o| base + o).collect();
            naks.sort_unstable();
            naks.dedup();
            let f = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
                index,
                covered: base + 100,
                naks,
                enforced,
                probe: None,
                stop_go: if stop { StopGo::Stop } else { StopGo::Go },
            }));
            prop_assert_eq!(roundtrip(&f, base), f);
        }

        #[test]
        fn prop_checkpoint_probe_roundtrip(
            index in proptest::num::u64::ANY,
            base in 1000u64..1_000_000,
            probe in proptest::num::u64::ANY,
            enforced in proptest::bool::ANY,
        ) {
            // The probe echo rides an extra trailing field gated by a
            // flag bit — exercise both the flag and the field.
            let f = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
                index,
                covered: base,
                naks: vec![base - 1],
                enforced,
                probe: Some(probe),
                stop_go: StopGo::Stop,
            }));
            prop_assert_eq!(roundtrip(&f, base), f);
        }

        #[test]
        fn prop_request_nak_roundtrip(probe in proptest::num::u64::ANY) {
            let f = Frame::Control(ControlFrame::RequestNak { probe });
            prop_assert_eq!(roundtrip(&f, 0), f);
        }

        #[test]
        fn prop_garbage_never_panics(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..128),
            reference in 0u64..1_000_000_000,
        ) {
            // Arbitrary datagrams must produce Ok or Err, never a panic
            // (hosts feed raw network input straight into decode).
            let _ = decode(&bytes, reference, M);
        }

        #[test]
        fn prop_truncated_never_panics(
            seq in 0u64..1_000_000,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
            cut in proptest::num::u64::ANY,
        ) {
            let f = Frame::Info(InfoFrame {
                seq,
                packet_id: PacketId(seq ^ 0xABCD),
                payload: Bytes::from(payload),
            });
            let bytes = encode(&f, M);
            let cut = (cut as usize) % bytes.len(); // strictly shorter
            prop_assert!(decode(&bytes[..cut], seq, M).is_err());
        }
    }
}
