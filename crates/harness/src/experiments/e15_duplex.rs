//! E15 — full-duplex operation (ours; paper assumption 2): data in both
//! directions, control frames competing with the reverse data flow for
//! each transmitter. Measures the cost of the no-piggyback rule
//! (assumption 4): how much forward goodput the reverse direction's
//! checkpoint stream consumes.

use crate::duplex::{run_duplex_lams, run_duplex_sr};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use sim_core::Duration;

/// Run E15.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 2_000 } else { 10_000 };
    let mut table = Table::new(
        "full-duplex vs unidirectional efficiency (per direction)",
        &[
            "protocol",
            "uni_eff",
            "duplex_eff_a2b",
            "duplex_eff_b2a",
            "control_overhead_pct",
            "lost_total",
        ],
    );
    let mut cfg = ScenarioConfig::paper_default();
    cfg.n_packets = n;
    cfg.data_residual_ber = 1e-6;
    cfg.ctrl_residual_ber = 1e-7;
    cfg.deadline = Duration::from_secs(300);

    let uni_lams = run_lams(&cfg);
    let dup_lams = run_duplex_lams(&cfg);
    let overhead_lams = (1.0 - dup_lams.a_to_b.efficiency() / uni_lams.efficiency()) * 100.0;
    table.row(vec![
        "lams".into(),
        uni_lams.efficiency().into(),
        dup_lams.a_to_b.efficiency().into(),
        dup_lams.b_to_a.efficiency().into(),
        overhead_lams.into(),
        (dup_lams.a_to_b.lost + dup_lams.b_to_a.lost).into(),
    ]);

    let uni_sr = run_sr(&cfg);
    let dup_sr = run_duplex_sr(&cfg);
    let overhead_sr = (1.0 - dup_sr.a_to_b.efficiency() / uni_sr.efficiency()) * 100.0;
    table.row(vec![
        "sr-hdlc".into(),
        uni_sr.efficiency().into(),
        dup_sr.a_to_b.efficiency().into(),
        dup_sr.b_to_a.efficiency().into(),
        overhead_sr.into(),
        (dup_sr.a_to_b.lost + dup_sr.b_to_a.lost).into(),
    ]);

    ExperimentOutput {
        id: "E15",
        title: "Full-duplex operation: cost of the no-piggyback control stream".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: both directions achieve (near-)unidirectional \
             efficiency — checkpoints are ~40 B per W_cp against 300 Mbps, \
             a per-mille tax; SR's supervisory frames are similarly cheap; \
             zero loss in all four flows"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_duplex_costs_little_and_loses_nothing() {
        let out = run(true);
        let t = &out.tables[0];
        for row in 0..t.len() {
            assert_eq!(t.value(row, 5).unwrap(), 0.0, "row {row}: losses");
            let overhead = t.value(row, 4).unwrap();
            assert!(
                overhead < 8.0,
                "row {row}: duplex overhead too high: {overhead}%"
            );
            // Symmetry between the two directions.
            let a = t.value(row, 2).unwrap();
            let b = t.value(row, 3).unwrap();
            assert!((a - b).abs() / a < 0.1, "row {row}: asymmetric {a} vs {b}");
        }
    }
}
