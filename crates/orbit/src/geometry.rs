//! Minimal 3-vector algebra and line-of-sight tests.

use crate::constants::{EARTH_RADIUS_KM, GRAZING_ALTITUDE_KM};

/// A Cartesian vector in the Earth-centered inertial frame, km.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3 {
    /// X component, km.
    pub x: f64,
    /// Y component, km.
    pub y: f64,
    /// Z component, km.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Vector difference `self - o` (also available via the `-`
    /// operator).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Distance between two points.
    pub fn distance(self, o: Vec3) -> f64 {
        self.sub(o).norm()
    }

    /// Scale by a factor.
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl core::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

/// Closest approach of the segment `a`–`b` to the origin (Earth's center).
///
/// Used for line-of-sight: if the chord between two satellites passes
/// closer to the center than `EARTH_RADIUS_KM + GRAZING_ALTITUDE_KM`, the
/// Earth (or its atmosphere) blocks the laser path.
pub fn segment_min_distance_to_origin(a: Vec3, b: Vec3) -> f64 {
    let ab = b.sub(a);
    let len2 = ab.dot(ab);
    if len2 == 0.0 {
        return a.norm();
    }
    // Parameter of the perpendicular foot, clamped to the segment.
    let t = (-a.dot(ab) / len2).clamp(0.0, 1.0);
    a.sub(ab.scale(-t)).norm().min(a.norm()).min(b.norm())
}

/// True if two satellites at `a` and `b` have an unobstructed line of
/// sight above the grazing altitude.
pub fn has_line_of_sight(a: Vec3, b: Vec3) -> bool {
    segment_min_distance_to_origin(a, b) > EARTH_RADIUS_KM + GRAZING_ALTITUDE_KM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basics() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec3::new(1.0, 0.0, 0.0)), 3.0);
        assert_eq!(v.sub(Vec3::new(3.0, 4.0, 0.0)), Vec3::default());
        assert_eq!(v.scale(2.0), Vec3::new(6.0, 8.0, 0.0));
        assert_eq!(
            Vec3::new(0.0, 0.0, 1.0).distance(Vec3::new(0.0, 0.0, 4.0)),
            3.0
        );
    }

    #[test]
    fn closest_approach_perpendicular() {
        // Segment from (-10, 5, 0) to (10, 5, 0): closest point (0, 5, 0).
        let d =
            segment_min_distance_to_origin(Vec3::new(-10.0, 5.0, 0.0), Vec3::new(10.0, 5.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn closest_approach_endpoint() {
        // Foot of perpendicular outside the segment: nearest is endpoint a.
        let d = segment_min_distance_to_origin(Vec3::new(2.0, 0.0, 0.0), Vec3::new(10.0, 0.0, 0.0));
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment() {
        let p = Vec3::new(0.0, 7.0, 0.0);
        assert_eq!(segment_min_distance_to_origin(p, p), 7.0);
    }

    #[test]
    fn los_blocked_through_earth() {
        // Antipodal satellites at 1000 km altitude: chord passes through
        // the Earth's center.
        let r = EARTH_RADIUS_KM + 1000.0;
        let a = Vec3::new(r, 0.0, 0.0);
        let b = Vec3::new(-r, 0.0, 0.0);
        assert!(!has_line_of_sight(a, b));
    }

    #[test]
    fn los_clear_for_neighbors() {
        // Satellites 30° apart in the same 1000 km orbit see each other.
        let r = EARTH_RADIUS_KM + 1000.0;
        let th = 30f64.to_radians();
        let a = Vec3::new(r, 0.0, 0.0);
        let b = Vec3::new(r * th.cos(), r * th.sin(), 0.0);
        assert!(has_line_of_sight(a, b));
    }

    #[test]
    fn los_grazing_limit() {
        // 120° apart at 1000 km altitude: chord midpoint altitude is
        // r/2 - R_e = -2685 km → blocked.
        let r = EARTH_RADIUS_KM + 1000.0;
        let th = 120f64.to_radians();
        let a = Vec3::new(r, 0.0, 0.0);
        let b = Vec3::new(r * th.cos(), r * th.sin(), 0.0);
        assert!(!has_line_of_sight(a, b));
    }
}
