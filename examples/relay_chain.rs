//! Store-and-forward relay chain: datagrams crossing several LAMS links
//! (paper §2.2 assumption 3). Demonstrates the end-to-end payoff of
//! relaxing the in-sequence constraint: intermediate LAMS-DLC nodes
//! forward out-of-order immediately; SR-HDLC nodes must resequence at
//! every hop, compounding delay.
//!
//! Run with: `cargo run --release --example relay_chain`

use harness::{run_relay_lams, run_relay_sr, RelayConfig, ScenarioConfig};
use sim_core::Duration;

fn main() {
    println!("relaying 6,000 x 1 kB datagrams over chains of noisy links");
    println!("(4,000 km per hop, residual BER 1e-5)\n");
    println!(
        "{:>5} {:>18} {:>18} {:>12} {:>12}",
        "hops", "lams e2e mean(ms)", "sr e2e mean(ms)", "lams lost", "sr lost"
    );
    for hops in [1usize, 2, 3, 4] {
        let mut base = ScenarioConfig::paper_default();
        base.n_packets = 6_000;
        base.data_residual_ber = 1e-5;
        base.ctrl_residual_ber = 1e-6;
        base.deadline = Duration::from_secs(300);
        let cfg = RelayConfig { hops, base };
        let lams = run_relay_lams(&cfg);
        let sr = run_relay_sr(&cfg);
        println!(
            "{:>5} {:>18.3} {:>18.3} {:>12} {:>12}",
            hops,
            lams.e2e_delay.mean() * 1e3,
            sr.e2e_delay.mean() * 1e3,
            lams.lost,
            sr.lost,
        );
        assert_eq!(lams.lost, 0);
        assert_eq!(sr.lost, 0);
    }
    println!(
        "\neach extra hop costs LAMS one propagation + processing delay;\n\
         SR additionally pays per-hop resequencing and window-resolution\n\
         stalls, so the gap widens with the chain."
    );
}
