//! Go-Back-N closed-form model (the §1/§2 baseline the paper says is
//! "often preferred despite its inferior performance").
//!
//! Classic result: with `a = R/(2·t_f)` half-round-trips of frames in
//! flight, an error forces the sender to go back and resend the whole
//! pipeline, `W_r = 1 + 2a` frames. For window `W ≥ W_r` (pipeline never
//! starves):
//!
//! ```text
//! η_GBN = (1 − P) / (1 + 2a·P)
//! ```
//!
//! and for a window smaller than the pipeline the ceiling
//! `W/(1 + 2a)` applies first. `P` is the per-frame retransmission
//! probability — `P_F + P_C − P_F·P_C` for a pos-ack protocol, like
//! SR-HDLC's.

use crate::params::LinkParams;
use crate::periods::p_r_hdlc;

/// Frames in flight during one round trip: `2a = R / t_f`.
pub fn pipeline_frames(p: &LinkParams) -> f64 {
    p.r / p.t_f
}

/// GBN throughput efficiency with an ample window (`W ≥ 1 + 2a`).
pub fn efficiency_gbn(p: &LinkParams) -> f64 {
    let pr = p_r_hdlc(p);
    let two_a = pipeline_frames(p);
    let eta = (1.0 - pr) / (1.0 + two_a * pr);
    // A window smaller than the pipeline caps utilisation first.
    let window_cap = (p.w as f64 / (1.0 + two_a)).min(1.0);
    eta.min(window_cap)
}

/// Frames *discarded* by the GBN receiver per frame error (§2.3's
/// "waste"): everything in flight behind the error, ≈ `2a` at
/// saturation.
pub fn discards_per_error(p: &LinkParams) -> f64 {
    pipeline_frames(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkParams;
    use crate::throughput::efficiency_lams;

    fn params() -> LinkParams {
        LinkParams::paper_default()
    }

    #[test]
    fn error_free_gbn_is_window_or_line_limited() {
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        // W = 1024 > pipeline (~490): line-limited, η = 1.
        assert!((efficiency_gbn(&p) - 1.0).abs() < 1e-12);
        // Tiny window: ceiling W/(1+2a).
        p.w = 100;
        let cap = 100.0 / (1.0 + pipeline_frames(&p));
        assert!((efficiency_gbn(&p) - cap).abs() < 1e-12);
    }

    #[test]
    fn gbn_collapses_on_long_links() {
        // The §2.3 argument: on a long fat link every error throws away a
        // pipeline of good frames, so η_GBN craters with distance × BER.
        let p = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        let eta = efficiency_gbn(&p);
        // 2a ≈ 490, P ≈ 0.08 → η ≈ 0.92/40 ≈ 0.023.
        assert!(eta < 0.05, "eta={eta}");
        assert!(eta > 0.005, "eta={eta}");
    }

    #[test]
    fn gbn_below_lams_everywhere_in_paper_band() {
        for res in [1e-7, 1e-6, 1e-5] {
            let p = params().with_residual_ber(res, res / 10.0, 8192, 512);
            assert!(
                efficiency_gbn(&p) < efficiency_lams(&p, 50_000),
                "res={res}"
            );
        }
    }

    #[test]
    fn discards_scale_with_distance() {
        let near = params();
        let mut far = params();
        far.r = 3.0 * near.r;
        assert!(discards_per_error(&far) > 2.9 * discards_per_error(&near));
    }

    #[test]
    fn monotone_in_error_rate() {
        let mut last = 1.1;
        for res in [1e-8, 1e-7, 1e-6, 1e-5] {
            let p = params().with_residual_ber(res, res / 10.0, 8192, 512);
            let eta = efficiency_gbn(&p);
            assert!(eta < last, "res={res}: {eta} !< {last}");
            last = eta;
        }
    }
}
