//! `bench_suite` — one repetition of the performance suite, as JSON.
//!
//! ```text
//! bench_suite                      # micro-kernels + all quick experiments
//! bench_suite --micro-iters 1000   # shrink the micro-kernels (CI smoke)
//! bench_suite --skip-micro         # experiments only
//! bench_suite --skip-experiments   # micro-kernels only
//! bench_suite --skip-profile       # omit the profiled pass
//! bench_suite --skip-shards        # omit the shard-scaling sweep
//! ```
//!
//! Prints one `lams-dlc.bench/1` JSON document to stdout:
//!
//! ```text
//! {
//!   "schema": "lams-dlc.bench/1",
//!   "quick": true,
//!   "micro": [ {"name", "iters", "ops", "wall_secs",
//!               "ns_per_op", "ops_per_sec"} ],
//!   "experiments": [ {"id", "runs", "wall_secs", "events_per_sec",
//!                     "queue": {"scheduled", "popped", "cancelled",
//!                               "peak_depth", "horizon_s"}} | perf-less ],
//!   "shards": [ {"shards", "wall_secs", "events_per_sec", "popped",
//!                "efficiency", "imbalance"} ],
//!   "total": {"runs", "wall_secs", "events_per_sec", "popped"},
//!   "profile": {"wall_ns", "counters", "queue_depth", "alloc",
//!               "spans": [span tree]} | null
//! }
//! ```
//!
//! The profile block comes from a **separate** pass over the quick
//! experiments with the span profiler on, after the timed suite: the
//! events/sec figures above are never measured under profiling
//! overhead. With the default `alloc-profile` feature this binary runs
//! under [`profile::alloc::CountingAlloc`], so the block also carries
//! the pass's allocation event/byte delta.
//!
//! One invocation is one repetition; `scripts/bench.py` runs several,
//! takes medians, and writes the committed `BENCH_*.json` trajectory
//! files.

use sim_core::QueueProfile;
use telemetry::Json;

#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: profile::alloc::CountingAlloc = profile::alloc::CountingAlloc;

const USAGE: &str = "\
usage: bench_suite [--micro-iters N] [--skip-micro] [--skip-experiments]
                   [--skip-profile] [--skip-shards]
";

const DEFAULT_MICRO_ITERS: u64 = 100_000;

fn queue_json(q: &QueueProfile) -> Json {
    Json::obj([
        ("scheduled", q.scheduled.into()),
        ("popped", q.popped.into()),
        ("cancelled", q.cancelled.into()),
        ("peak_depth", (q.peak_depth as u64).into()),
        ("compactions", q.compactions.into()),
        ("horizon_s", q.horizon.as_secs_f64().into()),
    ])
}

fn main() {
    let mut micro_iters = DEFAULT_MICRO_ITERS;
    let mut run_micro = true;
    let mut run_experiments = true;
    let mut run_profile = true;
    let mut run_shards = true;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--micro-iters" => {
                let v = it.next().and_then(|v| v.parse().ok());
                match v {
                    Some(n) => micro_iters = n,
                    None => {
                        eprintln!("error: --micro-iters expects a number\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--skip-micro" => run_micro = false,
            "--skip-experiments" => run_experiments = false,
            "--skip-profile" => run_profile = false,
            "--skip-shards" => run_shards = false,
            flag => {
                eprintln!("error: unknown flag: {flag}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let micro: Vec<Json> = if run_micro {
        bench::run_micro_suite(micro_iters)
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::from(r.name)),
                    ("iters", r.iters.into()),
                    ("ops", r.ops.into()),
                    ("wall_secs", r.wall_secs.into()),
                    ("ns_per_op", r.ns_per_op().into()),
                    ("ops_per_sec", r.ops_per_sec().into()),
                ])
            })
            .collect()
    } else {
        Vec::new()
    };

    let experiments = if run_experiments {
        bench::run_experiment_suite()
    } else {
        Vec::new()
    };
    let (total, total_wall, total_runs) = bench::total_perf(&experiments);

    let experiments_json: Vec<Json> = experiments
        .iter()
        .map(|e| {
            let mut members = vec![("id".to_string(), Json::from(e.id.as_str()))];
            match &e.perf {
                Some((q, wall, runs)) => {
                    members.push(("runs".into(), (*runs).into()));
                    members.push(("wall_secs".into(), (*wall).into()));
                    members.push(("events_per_sec".into(), q.events_per_sec(*wall).into()));
                    members.push(("queue".into(), queue_json(q)));
                }
                None => {
                    members.push(("runs".into(), 0u64.into()));
                    members.push(("wall_secs".into(), 0.0.into()));
                    members.push(("events_per_sec".into(), Json::Null));
                    members.push(("queue".into(), Json::Null));
                }
            }
            Json::Obj(members)
        })
        .collect();

    // The core-count scaling sweep: one fixed sharded-chain workload
    // per shard count. Simulated results are identical across counts
    // (asserted inside the sweep); only the wall clock moves.
    let shards_json: Vec<Json> = if run_shards {
        bench::run_shard_sweep(bench::SHARD_SWEEP_COUNTS)
            .iter()
            .map(|p| {
                Json::obj([
                    ("shards", (p.shards as u64).into()),
                    ("wall_secs", p.wall_secs.into()),
                    ("events_per_sec", p.events_per_sec.into()),
                    ("popped", p.popped.into()),
                    ("efficiency", p.efficiency.into()),
                    ("imbalance", p.imbalance.into()),
                ])
            })
            .collect()
    } else {
        Vec::new()
    };

    // The profiled pass runs last so its overhead cannot leak into the
    // timed figures above.
    let profile_block = if run_profile {
        bench::run_profiled_suite().to_json()
    } else {
        Json::Null
    };

    let doc = Json::obj([
        ("schema", Json::from("lams-dlc.bench/1")),
        ("quick", Json::from(true)),
        ("micro", Json::from(micro)),
        ("experiments", Json::from(experiments_json)),
        ("shards", Json::from(shards_json)),
        (
            "total",
            Json::obj([
                ("runs", total_runs.into()),
                ("wall_secs", total_wall.into()),
                ("events_per_sec", total.events_per_sec(total_wall).into()),
                ("popped", total.popped.into()),
            ]),
        ),
        ("profile", profile_block),
    ]);
    println!("{}", doc.render_pretty());
}
