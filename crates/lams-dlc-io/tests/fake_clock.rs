//! The UDP host's engine under a manual clock and an in-memory
//! transport: every wall-clock behaviour — timer expiry, checkpoint
//! cadence, Stop-Go flow control, the live audit, the trace stream —
//! exercised deterministically, with no sockets and no real waiting.
//!
//! `proto_core::ManualClock` reports the sim domain, so these runs get
//! the *strict* audit bounds (no wall-jitter slack) and byte-identical
//! traces.

use lams_dlc_io::{loopback_config, run_transfer, IoConfig, MemTransport};
use monitor::{Monitor, MonitorConfig};
use proto_core::ManualClock;
use telemetry::{parse_line, Json};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lams-dlc-io-fake-clock");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn run_traced(cfg: &IoConfig) -> (lams_dlc_io::IoSummary, String) {
    let clock = ManualClock::new();
    let mut link = MemTransport::new();
    let summary = run_transfer(cfg, &clock, &mut link).expect("transfer must complete");
    let trace = std::fs::read_to_string(cfg.trace.as_ref().expect("trace configured"))
        .expect("trace file readable");
    (summary, trace)
}

#[test]
fn manual_clock_runs_are_byte_identical() {
    let mut cfg = IoConfig {
        sdus: 120,
        payload_len: 48,
        drop_every: 9,
        corrupt_every: 13,
        ..IoConfig::default()
    };
    cfg.trace = Some(temp_path("det_a.jsonl"));
    let (a_summary, a) = run_traced(&cfg);
    cfg.trace = Some(temp_path("det_b.jsonl"));
    let (b_summary, b) = run_traced(&cfg);

    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(
        a, b,
        "same config + manual clock must replay byte-identically"
    );
    assert_eq!(a_summary.delivered, 120);
    assert_eq!(a_summary.drops_injected, b_summary.drops_injected);
    assert_eq!(
        a_summary.wall, b_summary.wall,
        "virtual elapsed time is exact"
    );

    // The header pins the stream to the sim domain: manual time is
    // virtual time, so downstream tools apply the strict audit bounds.
    let header = Json::parse(a.lines().next().expect("header line")).expect("header json");
    assert_eq!(
        header.get("clock_domain").and_then(Json::as_str),
        Some("sim")
    );
}

#[test]
fn checkpoint_timers_fire_on_exact_cadence_under_manual_time() {
    let cfg = IoConfig {
        sdus: 150,
        payload_len: 64,
        drop_every: 8,
        trace: Some(temp_path("cadence.jsonl")),
        ..IoConfig::default()
    };
    let (summary, trace) = run_traced(&cfg);

    // Injected loss on a sim-domain stream, audited with the *strict*
    // bounds — the protocol must still come out clean.
    assert!(summary.drops_injected > 0, "loss injector must fire");
    assert!(summary.retransmissions >= summary.drops_injected);
    assert_eq!(
        summary.audit_findings, 0,
        "strict sim-domain audit must be clean"
    );

    // The receiver re-arms its checkpoint timer off the previous
    // deadline, and the host's idle step (200 µs) divides W_cp (5 ms),
    // so under manual time every checkpoint lands exactly W_cp apart.
    let w_cp_ns = loopback_config().w_cp.as_nanos();
    let cps: Vec<u64> = trace
        .lines()
        .filter_map(|l| parse_line(l).ok())
        .filter(|r| {
            r.node == "rx" && matches!(r.event, telemetry::TraceEvent::CheckpointEmitted { .. })
        })
        .map(|r| r.t.as_nanos())
        .collect();
    assert!(
        cps.len() > 3,
        "expected several checkpoints, saw {}",
        cps.len()
    );
    for pair in cps.windows(2) {
        assert_eq!(
            pair[1] - pair[0],
            w_cp_ns,
            "checkpoint cadence must be exactly W_cp under manual time"
        );
    }
}

#[test]
fn flow_control_engages_under_tiny_receive_capacity() {
    let cfg = IoConfig {
        sdus: 100,
        payload_len: 32,
        drop_every: 6,
        rx_capacity: Some((4, 2)),
        trace: Some(temp_path("stop_go.jsonl")),
        ..IoConfig::default()
    };
    let (summary, trace) = run_traced(&cfg);
    assert_eq!(summary.delivered, 100, "Stop-Go must not lose SDUs");
    assert_eq!(summary.audit_findings, 0);

    // The Stop-Go machinery is driven by the receive-buffer watermark:
    // a 4-deep queue behind an instant in-memory link must cross it
    // (congestion onset) and drain back below it (cleared), both
    // visible in the trace as buffer_watermark events. Overflowed
    // frames must come back as NAKs rather than vanish.
    let mut onsets = 0u64;
    let mut clears = 0u64;
    let mut naks = 0u64;
    for r in trace.lines().filter_map(|l| parse_line(l).ok()) {
        match r.event {
            telemetry::TraceEvent::BufferWatermark {
                buffer: "rx",
                rising,
                ..
            } => {
                if rising {
                    onsets += 1
                } else {
                    clears += 1
                }
            }
            telemetry::TraceEvent::Nak { .. } => naks += 1,
            _ => {}
        }
    }
    assert!(onsets > 0, "tiny capacity must cross the Stop watermark");
    assert_eq!(onsets, clears, "every congestion onset must clear");
    assert!(naks > 0, "overflowed frames must be NAK'd, not lost");
}

#[test]
fn offline_replay_of_the_trace_matches_the_live_audit() {
    let cfg = IoConfig {
        sdus: 130,
        payload_len: 64,
        drop_every: 7,
        corrupt_every: 11,
        trace: Some(temp_path("replay.jsonl")),
        ..IoConfig::default()
    };
    let (summary, trace) = run_traced(&cfg);

    // Re-audit the persisted stream exactly like `trace-tools audit`:
    // same monitor, same records, so the verdict must match the live
    // run's summary numbers.
    let mut mon = Monitor::new(MonitorConfig::default());
    let mut records = 0u64;
    for line in trace.lines() {
        let rec = parse_line(line).expect("trace line parses");
        mon.observe(&rec);
        records += 1;
    }
    let report = mon.take_report();
    assert_eq!(records, summary.audit_records, "record counts must agree");
    assert_eq!(report.records, summary.audit_records);
    assert_eq!(
        report.total_findings, summary.audit_findings,
        "offline verdict must match the live audit"
    );
}
