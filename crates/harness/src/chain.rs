//! Sharded relay chain: one [`crate::relay`]-style store-and-forward
//! simulation partitioned across OS threads (`repro --shards N`).
//!
//! The chain is the natural conservative-parallel topology: hop `i`'s
//! propagation delay is a hard lower bound on how far upstream events
//! can influence downstream shards, so a contiguous node partition cuts
//! only satellite links with real lookahead. Each shard owns a run of
//! nodes (and the channels their nodes *transmit* on); frames crossing
//! a cut travel as timestamped batches through the
//! [`netsim::run_sharded`] coordinator.
//!
//! Determinism contract: every hop's channel draws its randomness from
//! the same per-hop shifted seed regardless of the partition, sources
//! issue from the same generator stream, and the shard runtime's
//! canonical same-instant dispatch order is partition-independent — so
//! the report is **identical at every shard count**, including 1. The
//! serial [`crate::relay::run_relay`] family is left untouched (it
//! backs the pinned golden fingerprints); this family is its parallel
//! twin, compared statistically in tests.
//!
//! Accounting across the cut: the sink shard's [`Collector`] is
//! pre-seeded with the full push schedule (a replayed clone of the
//! traffic generator), because push events happen on the source shard.
//! The source registers no collector; the coordinator patches `offered`
//! and the transmission sums into the sink's report afterwards.

use crate::metrics::{Collector, RunReport};
use crate::node::{Driver, RxEndpoint, TxEndpoint};
use crate::relay::RelayConfig;
use crate::scenario::ScenarioConfig;
use crate::traffic::TrafficGen;
use netsim::Machine;
use netsim::{
    link::Channel, DelayModel, FinishedShard, LinkId, LinkSpec, NodeId, NodeRole, Partition,
    ShardBuilder, ShardSim, Topology, TopologyError,
};
use sim_core::SeedSplitter;
use std::collections::BTreeMap;
use telemetry::Registry;

/// Per-hop channels with the same shifted seed the serial relay uses,
/// so a hop's error/delay realisation is partition-independent.
fn hop_channels(base: &ScenarioConfig, i: usize) -> (Channel, Channel) {
    let mut c = base.clone();
    c.seed = base.seed.wrapping_add(1000 * (i as u64 + 1));
    c.build_channels()
}

/// The chain's source generator (stream 2 of the master seed, exactly
/// as the serial relay draws it).
fn chain_gen(base: &ScenarioConfig) -> TrafficGen {
    TrafficGen::new(
        base.pattern.clone(),
        base.n_packets,
        SeedSplitter::new(base.seed).stream(2),
    )
}

/// Global ids: hop `i`'s forward (data) link.
fn lf(i: usize) -> usize {
    2 * i
}

/// Global ids: hop `i`'s reverse (control) link.
fn lr(i: usize) -> usize {
    2 * i + 1
}

/// The chain topology and per-link delay models, for partition
/// validation: `hops + 1` nodes, `2 * hops` links interleaved
/// fwd/rev per hop.
fn chain_topology(cfg: &RelayConfig) -> (Topology, Vec<DelayModel>) {
    let h = cfg.hops;
    let mut topo = Topology::default();
    let mut delays = Vec::with_capacity(2 * h);
    for n in 0..=h {
        topo.roles.push(match n {
            0 => NodeRole::Source,
            n if n == h => NodeRole::Sink,
            _ => NodeRole::Relay,
        });
    }
    for i in 0..h {
        topo.links.push(LinkSpec {
            from: NodeId(i),
            to: NodeId(i + 1),
            dir: "fwd",
        });
        topo.links.push(LinkSpec {
            from: NodeId(i + 1),
            to: NodeId(i),
            dir: "rev",
        });
        let (f, r) = hop_channels(&cfg.base, i);
        delays.push(f.delay.clone());
        delays.push(r.delay.clone());
    }
    (topo, delays)
}

/// What one shard hands back for report assembly.
struct ChainShardOut {
    /// SDUs the local source issued (source shard only, else 0).
    issued: u64,
    failed: bool,
    transmissions: u64,
    retransmissions: u64,
    /// First sender's counter registry (source shard only).
    tx0_extras: Option<Registry>,
    /// The sink shard's finished report, with `offered`, `lost`,
    /// transmission sums and perf fields left for the coordinator.
    report: Option<Box<RunReport>>,
}

/// Drive a relay chain split across `shards` threads, every hop running
/// the same protocol. `mk_tx(i)` / `mk_rx(i)` build link `i`'s
/// endpoints (called on the owning shard's thread, so trace handles
/// resolve against that shard's buffered sink). `shards` is clamped to
/// `hops + 1` (one node per shard is the finest cut); `shards <= 1`
/// runs the same machinery in one window.
pub fn run_chain<T, R>(
    cfg: &RelayConfig,
    shards: usize,
    mk_tx: impl Fn(usize) -> T + Sync,
    mk_rx: impl Fn(usize) -> R + Sync,
    protocol: &str,
) -> RunReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    T::Frame: Send,
{
    assert!(cfg.hops >= 1, "need at least one link");
    let h = cfg.hops;
    let base = &cfg.base;
    let shards = shards.max(1).min(h + 1);

    let (topo, delays) = chain_topology(cfg);
    let part = Partition::contiguous(h + 1, shards);
    let plan = part
        .plan(&topo, &delays)
        .expect("chain partition is valid: contiguous over a positive-delay chain");

    // Node range [lo, hi] owned by each shard (contiguous by
    // construction).
    let mut ranges = vec![(usize::MAX, 0usize); shards];
    for node in 0..=h {
        let s = part.shard_of(NodeId(node)).expect("node assigned");
        let r = &mut ranges[s];
        r.0 = r.0.min(node);
        r.1 = r.1.max(node);
    }

    let build = |s: usize| -> Result<ShardSim<T, R, Collector>, TopologyError> {
        let (lo, hi) = ranges[s];
        let mut b: ShardBuilder<T, R, Collector> = ShardBuilder::new(base.payload_bytes);

        // Links in ascending global-id order. Upstream boundary hop
        // lo-1: we receive its forward link (stub) and own its reverse
        // channel (our node lo transmits the control frames). Interior
        // hops are whole. Downstream boundary hop hi: we own the
        // forward channel, receive the reverse (stub).
        let mut local: BTreeMap<usize, LinkId> = BTreeMap::new();
        if lo > 0 {
            let i = lo - 1;
            let (_f, r) = hop_channels(base, i);
            local.insert(lf(i), b.cut_in(lf(i)));
            local.insert(lr(i), b.cut_out(lr(i), r, "rev"));
        }
        for i in lo..hi {
            let (f, r) = hop_channels(base, i);
            local.insert(lf(i), b.link(lf(i), f, "fwd"));
            local.insert(lr(i), b.link(lr(i), r, "rev"));
        }
        if hi < h {
            let i = hi;
            let (f, _r) = hop_channels(base, i);
            local.insert(lf(i), b.cut_out(lf(i), f, "fwd"));
            local.insert(lr(i), b.cut_in(lr(i)));
        }

        // Endpoints in global registration order (hop-ascending, tx
        // before rx): tx_i lives on node i, rx_i on node i+1.
        let mut txs: BTreeMap<usize, netsim::TxId> = BTreeMap::new();
        let mut rxs: BTreeMap<usize, netsim::RxId> = BTreeMap::new();
        for i in lo.saturating_sub(1)..h {
            if i >= lo && i <= hi {
                txs.insert(i, b.tx(local[&lf(i)], mk_tx(i)));
            }
            if i + 1 >= lo && i < hi {
                rxs.insert(i, b.rx(local[&lr(i)], mk_rx(i)));
            }
        }
        for (&i, &r) in &rxs {
            b.listen(local[&lf(i)], r);
            b.drain_after(r, local[&lr(i)]);
        }
        for (&i, &t) in &txs {
            b.listen(local[&lr(i)], t);
        }

        // The sink shard accounts the whole flow: its collector is
        // pre-seeded with the push schedule (pushes happen remotely)
        // and carries the completion condition.
        let sink_col = (hi == h).then(|| {
            let mut c = Collector::new();
            let mut g = chain_gen(base);
            while let Some((at, id)) = g.next() {
                c.on_push(at, id);
            }
            let col = b.collector(c);
            b.expect(col, base.n_packets);
            col
        });
        for (&i, &r) in &rxs {
            if i + 1 == h {
                b.deliver(r, sink_col.expect("sink shard has the collector"));
            } else {
                b.forward(r, txs[&(i + 1)]);
            }
        }
        if lo == 0 {
            b.source(chain_gen(base), txs[&0], None, 0);
        }
        b.build()
    };

    let fin = |s: usize, mut out: FinishedShard<T, R, Collector>| -> ChainShardOut {
        let (lo, hi) = ranges[s];
        let failed = out.txs.iter().any(|t| t.is_failed());
        let transmissions: u64 = out.txs.iter().map(|t| t.transmissions()).sum();
        let retransmissions: u64 = out.txs.iter().map(|t| t.retransmissions()).sum();
        let tx0_extras = (lo == 0).then(|| out.txs[0].extra_stats());
        let report = (hi == h).then(|| {
            let col = out.collectors.pop().expect("sink collector");
            let rx_extras = out.rxs.last().expect("sink receiver").extra_stats();
            // `offered` is a placeholder (the source shard knows the
            // real count); passing the delivered count keeps the
            // `lost` subtraction at zero until the coordinator patches
            // both fields.
            let delivered = col.delivered_unique();
            Box::new(col.finish(
                protocol,
                delivered,
                out.finished_at,
                out.deadline_hit,
                false,
                0,
                0,
                base.t_f(),
                Registry::new(),
                rx_extras,
            ))
        });
        ChainShardOut {
            issued: if lo == 0 {
                out.issued.first().copied().unwrap_or(0)
            } else {
                0
            },
            failed,
            transmissions,
            retransmissions,
            tx0_extras,
            report,
        }
    };

    let outcome =
        netsim::run_sharded(&plan, base.deadline, build, fin).expect("chain shard wiring is valid");

    let mut offered = 0;
    let mut failed = false;
    let mut transmissions = 0;
    let mut retransmissions = 0;
    let mut tx0_extras = None;
    let mut report: Option<Box<RunReport>> = None;
    for o in outcome.outputs {
        offered += o.issued;
        failed |= o.failed;
        transmissions += o.transmissions;
        retransmissions += o.retransmissions;
        tx0_extras = tx0_extras.or(o.tx0_extras);
        report = report.or(o.report);
    }
    let mut report = *report.expect("exactly one shard owns the sink");
    report.offered = offered;
    report.lost = offered.saturating_sub(report.delivered_unique);
    report.link_failed = failed;
    report.transmissions = transmissions;
    report.retransmissions = retransmissions;
    if let Some(x) = tx0_extras {
        report.tx_extras = x;
    }
    report.queue = outcome.queue;
    report.wall_secs = outcome.wall_secs;
    crate::metrics::perf_absorb(&report.queue, report.wall_secs);
    crate::metrics::shard_absorb(&outcome.shard, outcome.supersteps);
    report
}

/// Per-hop trace labels (the sharded family targets longer chains than
/// the serial relay, so the table is deeper). Chains longer than the
/// table fall back to untraced endpoints.
const CHAIN_TX: [&str; 16] = [
    "hop0.tx", "hop1.tx", "hop2.tx", "hop3.tx", "hop4.tx", "hop5.tx", "hop6.tx", "hop7.tx",
    "hop8.tx", "hop9.tx", "hop10.tx", "hop11.tx", "hop12.tx", "hop13.tx", "hop14.tx", "hop15.tx",
];
const CHAIN_RX: [&str; 16] = [
    "hop0.rx", "hop1.rx", "hop2.rx", "hop3.rx", "hop4.rx", "hop5.rx", "hop6.rx", "hop7.rx",
    "hop8.rx", "hop9.rx", "hop10.rx", "hop11.rx", "hop12.rx", "hop13.rx", "hop14.rx", "hop15.rx",
];

fn hop_trace(labels: &[&'static str; 16], i: usize) -> telemetry::trace::Trace {
    labels
        .get(i)
        .map(|l| telemetry::global_handle(l))
        .unwrap_or_else(telemetry::trace::Trace::disabled)
}

/// Sharded relay chain under LAMS-DLC at every hop.
pub fn run_chain_lams(cfg: &RelayConfig, shards: usize) -> RunReport {
    let lcfg = cfg.base.lams_config();
    run_chain(
        cfg,
        shards,
        |i| Driver::new(lams_dlc::Sender::new(lcfg.clone()).with_trace(hop_trace(&CHAIN_TX, i))),
        |i| Driver::new(lams_dlc::Receiver::new(lcfg.clone()).with_trace(hop_trace(&CHAIN_RX, i))),
        "lams-chain",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Duration;

    fn chain(hops: usize, n: u64, ber: f64) -> RelayConfig {
        let mut base = ScenarioConfig::paper_default();
        base.n_packets = n;
        base.data_residual_ber = ber;
        base.ctrl_residual_ber = ber / 10.0;
        base.deadline = Duration::from_secs(120);
        RelayConfig { hops, base }
    }

    /// The determinism contract: one simulation, any cut, same answer.
    #[test]
    fn report_identical_at_every_shard_count() {
        let cfg = chain(4, 400, 1e-6);
        let baseline = run_chain_lams(&cfg, 1);
        assert_eq!(baseline.delivered_unique, 400);
        assert_eq!(baseline.lost, 0);
        for shards in [2, 3, 5] {
            let r = run_chain_lams(&cfg, shards);
            assert_eq!(r.offered, baseline.offered, "{shards} shards");
            assert_eq!(r.delivered_unique, baseline.delivered_unique);
            assert_eq!(r.duplicates, baseline.duplicates);
            assert_eq!(r.lost, baseline.lost);
            assert_eq!(r.finished_at, baseline.finished_at, "{shards} shards");
            assert_eq!(r.deadline_hit, baseline.deadline_hit);
            assert_eq!(r.transmissions, baseline.transmissions);
            assert_eq!(r.retransmissions, baseline.retransmissions);
            assert_eq!(
                r.e2e_delay.mean().to_bits(),
                baseline.e2e_delay.mean().to_bits(),
                "{shards} shards: e2e delay must be bit-identical"
            );
            assert_eq!(r.delay.mean().to_bits(), baseline.delay.mean().to_bits());
            assert_eq!(r.tx_extras.entries(), baseline.tx_extras.entries());
            assert_eq!(r.rx_extras.entries(), baseline.rx_extras.entries());
        }
    }

    /// More shards than nodes clamps to one node per shard.
    #[test]
    fn shard_count_clamps_to_node_count() {
        let cfg = chain(2, 150, 1e-6);
        let wide = run_chain_lams(&cfg, 64);
        let serial = run_chain_lams(&cfg, 1);
        assert_eq!(wide.delivered_unique, serial.delivered_unique);
        assert_eq!(wide.finished_at, serial.finished_at);
    }

    /// The sharded family tracks the serial relay statistically (the
    /// two engines order same-instant events differently, so exact
    /// equality is not the contract — the serial family keeps the
    /// pinned goldens).
    #[test]
    fn tracks_serial_relay_statistically() {
        let cfg = chain(3, 1_000, 1e-6);
        let sharded = run_chain_lams(&cfg, 2);
        let serial = crate::relay::run_relay_lams(&cfg);
        assert_eq!(sharded.delivered_unique, serial.delivered_unique);
        assert_eq!(sharded.lost, 0);
        let d = (sharded.elapsed_s() - serial.elapsed_s()).abs() / serial.elapsed_s();
        assert!(
            d < 0.05,
            "sharded {} vs serial {}",
            sharded.elapsed_s(),
            serial.elapsed_s()
        );
    }
}
