//! E1 — retransmission probability and mean period count vs residual BER
//! (the §2/§4 `P_R` and `s̄` table).
//!
//! Analytic columns come straight from `analysis::periods`; the simulated
//! column measures retransmissions per delivered frame, whose expectation
//! is `s̄ − 1`.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use analysis::periods::{p_r_hdlc, p_r_lams, s_bar_hdlc, s_bar_lams};

/// Residual-BER sweep points (I-frame grade; control an order lower).
pub const BERS: &[f64] = &[1e-8, 1e-7, 1e-6, 1e-5, 3e-5];

/// Run E1.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 2_000 } else { 20_000 };
    let mut table = Table::new(
        "P_R and s-bar vs residual BER (analytic vs simulated)",
        &[
            "residual_ber",
            "P_F",
            "P_C",
            "P_R_lams",
            "P_R_hdlc",
            "s_lams",
            "s_hdlc",
            "sim_retx/frame_lams",
            "sim_retx/frame_hdlc",
        ],
    );
    let mut notes = Vec::new();
    let runs = parallel::map(BERS.to_vec(), |ber| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.data_residual_ber = ber;
        cfg.ctrl_residual_ber = ber / 10.0;
        (cfg.link_params(), run_lams(&cfg), run_sr(&cfg))
    });
    for (&ber, (p, lams, sr)) in BERS.iter().zip(runs) {
        table.row(vec![
            ber.into(),
            p.p_f.into(),
            p.p_c.into(),
            p_r_lams(&p).into(),
            p_r_hdlc(&p).into(),
            s_bar_lams(&p).into(),
            s_bar_hdlc(&p).into(),
            lams.retransmission_ratio().into(),
            sr.retransmission_ratio().into(),
        ]);
    }
    notes.push(
        "expected shape: sim_retx/frame ≈ s̄ − 1 per protocol; \
         P_R_lams = P_F < P_R_hdlc = P_F + P_C − P_F·P_C"
            .into(),
    );
    ExperimentOutput {
        id: "E1",
        title: "Retransmission probability and mean periods (paper §2, §4)".into(),
        tables: vec![table],
        traces: vec![],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_holds() {
        let out = run(true);
        let t = &out.tables[0];
        assert_eq!(t.len(), BERS.len());
        for row in 0..t.len() {
            let p_r_l = t.value(row, 3).unwrap();
            let p_r_h = t.value(row, 4).unwrap();
            assert!(
                p_r_l <= p_r_h + 1e-15,
                "row {row}: LAMS P_R must not exceed HDLC"
            );
            let s_l = t.value(row, 5).unwrap();
            let sim_l = t.value(row, 7).unwrap();
            // Simulated retransmissions per frame track s̄ − 1 loosely
            // (quick runs are small).
            assert!(
                (sim_l - (s_l - 1.0)).abs() < 0.05 + 0.5 * (s_l - 1.0),
                "row {row}: sim {sim_l} vs s̄−1 {}",
                s_l - 1.0
            );
        }
    }
}
