//! Sim-time-stamped protocol event tracing.
//!
//! Protocol and harness code holds a cheap [`Trace`] handle and calls
//! [`Trace::emit`] with a closure building the event. When tracing is
//! disabled the closure is never run, so the cost of an instrumented
//! site is a single branch on an `Option` — no allocation, no
//! formatting.
//!
//! Record construction is decoupled from persistence through the
//! [`TraceSink`] trait: [`RingSink`] keeps the last N records in memory
//! (for tests and post-mortem inspection), [`JsonlSink`] streams one
//! JSON object per line to a writer (the `repro --trace <path>` flag).

use crate::json::Json;
use proto_core::time::Instant;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::rc::Rc;

pub use proto_core::trace::{ProtoTrace, SharedTrace, Trace, TraceEvent};

/// Event-specific JSON members (everything except `t`/`node`/`event`).
fn event_fields(event: &TraceEvent) -> Vec<(&'static str, Json)> {
    match *event {
        TraceEvent::IFrameTx { seq, retx, len } => {
            vec![
                ("seq", seq.into()),
                ("retx", retx.into()),
                ("len", len.into()),
            ]
        }
        TraceEvent::IFrameRx { seq, clean, len } => {
            vec![
                ("seq", seq.into()),
                ("clean", clean.into()),
                ("len", len.into()),
            ]
        }
        TraceEvent::CheckpointEmitted {
            index,
            covered,
            naks,
            enforced,
            stop,
        } => vec![
            ("index", index.into()),
            ("covered", covered.into()),
            ("naks", naks.into()),
            ("enforced", enforced.into()),
            ("stop", stop.into()),
        ],
        TraceEvent::CheckpointReceived {
            index,
            covered,
            naks,
        } => vec![
            ("index", index.into()),
            ("covered", covered.into()),
            ("naks", naks.into()),
        ],
        TraceEvent::CheckpointLost { index } => vec![("index", index.into())],
        TraceEvent::Nak { seq, cp_index } => {
            vec![("seq", seq.into()), ("cp_index", cp_index.into())]
        }
        TraceEvent::Renumbered { old_seq, new_seq } => {
            vec![("old_seq", old_seq.into()), ("new_seq", new_seq.into())]
        }
        TraceEvent::RetxCause {
            seq,
            cause,
            cp_index,
        } => vec![
            ("seq", seq.into()),
            ("cause", cause.into()),
            ("cp_index", cp_index.into()),
        ],
        TraceEvent::EnforcedRecoveryStarted { outstanding } => {
            vec![("outstanding", outstanding.into())]
        }
        TraceEvent::EnforcedRecoveryResolved => vec![],
        TraceEvent::StopGo { stop } => vec![("stop", stop.into())],
        TraceEvent::BufferWatermark {
            buffer,
            level,
            rising,
        } => vec![
            ("buffer", buffer.into()),
            ("level", level.into()),
            ("rising", rising.into()),
        ],
        TraceEvent::ChannelDrop { dir } => vec![("dir", dir.into())],
        TraceEvent::Control { kind, seq } => {
            vec![("kind", kind.into()), ("seq", seq.into())]
        }
        TraceEvent::LinkFailed => vec![],
        TraceEvent::RunStarted => vec![],
        TraceEvent::RunFinished { deadline_hit } => {
            vec![("deadline_hit", deadline_hit.into())]
        }
        TraceEvent::ExperimentStarted { id } => vec![("id", id.into())],
        TraceEvent::SenderConfig {
            w_cp_ns,
            c_depth,
            rtt_ns,
            cp_timeout_ns,
            resolving_ns,
            failure_ns,
        } => vec![
            ("w_cp_ns", w_cp_ns.into()),
            ("c_depth", c_depth.into()),
            ("rtt_ns", rtt_ns.into()),
            ("cp_timeout_ns", cp_timeout_ns.into()),
            ("resolving_ns", resolving_ns.into()),
            ("failure_ns", failure_ns.into()),
        ],
        TraceEvent::BufferRelease {
            seq,
            held_ns,
            cp_index,
        } => vec![
            ("seq", seq.into()),
            ("held_ns", held_ns.into()),
            ("cp_index", cp_index.into()),
        ],
        TraceEvent::ReseqHold { id, held_ns } => {
            vec![("id", id.into()), ("held_ns", held_ns.into())]
        }
        TraceEvent::TraceHeader { clock_domain } => {
            vec![("clock_domain", clock_domain.into())]
        }
        TraceEvent::Superstep {
            round,
            shard,
            grant_ns,
            cut_bound,
            critical_link,
            events,
            inbound,
            outbound,
            queue_depth,
        } => vec![
            ("round", round.into()),
            ("shard", shard.into()),
            ("grant_ns", grant_ns.into()),
            ("cut_bound", cut_bound.into()),
            ("critical_link", critical_link.into()),
            ("events", events.into()),
            ("inbound", inbound.into()),
            ("outbound", outbound.into()),
            ("queue_depth", queue_depth.into()),
        ],
    }
}

/// One trace record: when, where, what.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub t: Instant,
    /// Which node emitted it (`"tx"`, `"rx"`, `"node0"`, ...).
    pub node: &'static str,
    /// The event payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Nanosecond timestamp needing an exact side channel: `Some` only
    /// when the f64-seconds `t` member alone would round the time.
    /// Sim traces never get past 2^53 ns (≈ 104 days), so they never
    /// carry one and their historical byte shape is unchanged;
    /// wall-clock hosts can in principle run long enough to need it.
    fn inexact_t_ns(&self) -> Option<u64> {
        let ns = self.t.as_nanos();
        if (self.t.as_secs_f64() * 1e9).round() as u64 != ns {
            Some(ns)
        } else {
            None
        }
    }

    /// Render as one JSON object: `{"t": secs, "node": .., "event": .., ...}`
    /// (plus `"t_ns"` right after `"t"` when seconds alone would round).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("t".into(), Json::Num(self.t.as_secs_f64()))];
        if let Some(ns) = self.inexact_t_ns() {
            members.push(("t_ns".into(), Json::Int(ns)));
        }
        members.push(("node".into(), self.node.into()));
        members.push(("event".into(), self.event.kind().into()));
        for (k, v) in event_fields(&self.event) {
            members.push((k.into(), v));
        }
        Json::Obj(members)
    }

    /// Append this record's JSONL line (no trailing newline) to `out` —
    /// byte-identical to `self.to_json().render()` but without building
    /// the intermediate [`Json`] AST (no `String` keys, no value tree):
    /// the hot serialization path of [`JsonlSink`].
    pub fn render_into(&self, out: &mut String) {
        out.push_str("{\"t\":");
        crate::json::write_num(out, self.t.as_secs_f64());
        if let Some(ns) = self.inexact_t_ns() {
            out.push_str(",\"t_ns\":");
            crate::json::write_u64(out, ns);
        }
        out.push_str(",\"node\":");
        crate::json::write_str(out, self.node);
        out.push_str(",\"event\":");
        crate::json::write_str(out, self.event.kind());
        for (k, v) in event_fields(&self.event) {
            out.push(',');
            crate::json::write_str(out, k);
            out.push(':');
            v.render_into(out);
        }
        out.push('}');
    }

    /// Rebuild a record from the JSON object produced by
    /// [`TraceRecord::to_json`]. This is the inverse the offline trace
    /// analyzer relies on: `t` survives the f64 round trip exactly
    /// below 2^53 ns (Rust renders the shortest round-trippable
    /// decimal), and records past that carry an exact `t_ns` member
    /// which parsing prefers — so a replayed stream reproduces the live
    /// stream bit-for-bit in either clock domain.
    pub fn from_json(v: &Json) -> Result<TraceRecord, String> {
        let t = v
            .get("t")
            .and_then(Json::as_f64)
            .ok_or("record missing numeric \"t\"")?;
        if !(t.is_finite() && t >= 0.0) {
            return Err(format!("record has invalid time {t}"));
        }
        let t_ns = v.get("t_ns").and_then(Json::as_u64);
        let node = intern(
            v.get("node")
                .and_then(Json::as_str)
                .ok_or("record missing string \"node\"")?,
        );
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or("record missing string \"event\"")?;
        let num = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} record missing numeric {k:?}"))
        };
        let flag = |k: &str| -> Result<bool, String> {
            v.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("{kind} record missing boolean {k:?}"))
        };
        let word = |k: &str| -> Result<&'static str, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(intern)
                .ok_or_else(|| format!("{kind} record missing string {k:?}"))
        };
        let event = match kind {
            "iframe_tx" => TraceEvent::IFrameTx {
                seq: num("seq")?,
                retx: flag("retx")?,
                len: num("len")?,
            },
            "iframe_rx" => TraceEvent::IFrameRx {
                seq: num("seq")?,
                clean: flag("clean")?,
                len: num("len")?,
            },
            "checkpoint_emitted" => TraceEvent::CheckpointEmitted {
                index: num("index")?,
                covered: num("covered")?,
                naks: num("naks")?,
                enforced: flag("enforced")?,
                stop: flag("stop")?,
            },
            "checkpoint_received" => TraceEvent::CheckpointReceived {
                index: num("index")?,
                covered: num("covered")?,
                naks: num("naks")?,
            },
            "checkpoint_lost" => TraceEvent::CheckpointLost {
                index: num("index")?,
            },
            "nak" => TraceEvent::Nak {
                seq: num("seq")?,
                cp_index: num("cp_index")?,
            },
            "renumbered" => TraceEvent::Renumbered {
                old_seq: num("old_seq")?,
                new_seq: num("new_seq")?,
            },
            "retx_cause" => TraceEvent::RetxCause {
                seq: num("seq")?,
                cause: word("cause")?,
                cp_index: num("cp_index")?,
            },
            "enforced_recovery_started" => TraceEvent::EnforcedRecoveryStarted {
                outstanding: num("outstanding")?,
            },
            "enforced_recovery_resolved" => TraceEvent::EnforcedRecoveryResolved,
            "stop_go" => TraceEvent::StopGo {
                stop: flag("stop")?,
            },
            "buffer_watermark" => TraceEvent::BufferWatermark {
                buffer: word("buffer")?,
                level: num("level")?,
                rising: flag("rising")?,
            },
            "channel_drop" => TraceEvent::ChannelDrop { dir: word("dir")? },
            "control" => TraceEvent::Control {
                kind: word("kind")?,
                seq: num("seq")?,
            },
            "link_failed" => TraceEvent::LinkFailed,
            "run_started" => TraceEvent::RunStarted,
            "run_finished" => TraceEvent::RunFinished {
                deadline_hit: flag("deadline_hit")?,
            },
            "experiment_started" => TraceEvent::ExperimentStarted { id: word("id")? },
            "sender_config" => TraceEvent::SenderConfig {
                w_cp_ns: num("w_cp_ns")?,
                c_depth: num("c_depth")?,
                rtt_ns: num("rtt_ns")?,
                cp_timeout_ns: num("cp_timeout_ns")?,
                resolving_ns: num("resolving_ns")?,
                failure_ns: num("failure_ns")?,
            },
            "buffer_release" => TraceEvent::BufferRelease {
                seq: num("seq")?,
                held_ns: num("held_ns")?,
                cp_index: num("cp_index")?,
            },
            "reseq_hold" => TraceEvent::ReseqHold {
                id: num("id")?,
                held_ns: num("held_ns")?,
            },
            "trace_header" => TraceEvent::TraceHeader {
                clock_domain: word("clock_domain")?,
            },
            "superstep" => TraceEvent::Superstep {
                round: num("round")?,
                shard: num("shard")?,
                grant_ns: num("grant_ns")?,
                cut_bound: flag("cut_bound")?,
                critical_link: num("critical_link")?,
                events: num("events")?,
                inbound: num("inbound")?,
                outbound: num("outbound")?,
                queue_depth: num("queue_depth")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(TraceRecord {
            // `t` is seconds; nanosecond counts below 2^53 (≈ 104 days
            // of sim time) round-trip exactly through f64, and records
            // past that carry the exact count in `t_ns`.
            t: match t_ns {
                Some(ns) => Instant::from_nanos(ns),
                None => Instant::from_nanos((t * 1e9).round() as u64),
            },
            node,
            event,
        })
    }
}

/// Parse one JSONL trace line into a record.
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    TraceRecord::from_json(&v)
}

/// Labels baked into the emitting code; interning hits these first so
/// replaying a trace allocates nothing for well-known nodes/tokens.
const KNOWN_LABELS: &[&str] = &[
    "tx",
    "rx",
    "channel",
    "collector",
    "coord",
    "sim",
    "runner",
    "host",
    "wall",
    "a2b.tx",
    "a2b.rx",
    "b2a.tx",
    "b2a.rx",
    "reseq",
    "fwd",
    "rev",
    "rej",
    "srej",
    "rr",
    "timeout",
    "req_nak",
    "nak",
    "resolve",
    "suspect",
];

thread_local! {
    static INTERNED: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Map a parsed string onto a `&'static str` label. Known labels are
/// matched against a static table; novel ones are leaked once per
/// distinct string (node labels form a small bounded set per trace).
fn intern(s: &str) -> &'static str {
    if let Some(k) = KNOWN_LABELS.iter().find(|k| **k == s) {
        return k;
    }
    INTERNED.with(|table| {
        let mut table = table.borrow_mut();
        if let Some(k) = table.iter().find(|k| **k == s) {
            *k
        } else {
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            table.push(leaked);
            leaked
        }
    })
}

/// Destination for trace records.
pub trait TraceSink {
    /// Accept one record. Sinks must not panic on I/O trouble; they
    /// degrade to dropping records and report via [`TraceSink::dropped`].
    fn record(&mut self, rec: &TraceRecord);

    /// Accept a batch of records, oldest first. Equivalent to calling
    /// [`TraceSink::record`] per record, but replayers (the parallel
    /// runner draining a worker's [`BufferSink`]) pay one virtual
    /// dispatch per batch instead of one per record.
    fn record_all(&mut self, recs: &[TraceRecord]) {
        for rec in recs {
            self.record(rec);
        }
    }

    /// Records accepted so far.
    fn len(&self) -> u64;

    /// True when no record has been accepted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped (ring eviction, write failures).
    fn dropped(&self) -> u64 {
        0
    }

    /// Flush any buffered output.
    fn flush(&mut self) {}
}

/// Bounded in-memory sink keeping the most recent `capacity` records.
pub struct RingSink {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    seen: u64,
}

impl RingSink {
    /// Sink retaining at most `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            seen: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Count of retained records matching a predicate.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.buf.iter().filter(|r| r.event.kind() == kind).count()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
        self.seen += 1;
    }

    fn len(&self) -> u64 {
        self.seen
    }

    fn dropped(&self) -> u64 {
        self.seen - self.buf.len() as u64
    }
}

/// Unbounded in-memory sink that surrenders its records on demand.
///
/// Built for worker threads: install a `BufferSink` as the worker's
/// global sink, run simulations, then [`BufferSink::take`] the records
/// and replay them into the orchestrating thread's sink in
/// deterministic order. ([`TraceRecord`] is `Send`; sinks are not.)
#[derive(Default)]
pub struct BufferSink {
    buf: Vec<TraceRecord>,
    seen: u64,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return all buffered records, oldest first.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.buf)
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.buf.push(rec.clone());
        self.seen += 1;
    }

    fn record_all(&mut self, recs: &[TraceRecord]) {
        self.buf.extend_from_slice(recs);
        self.seen += recs.len() as u64;
    }

    fn len(&self) -> u64 {
        self.seen
    }
}

/// Streaming sink writing one JSON object per line.
///
/// Records are serialized straight into a reusable `String` buffer (no
/// per-record JSON tree or line allocation) and handed to the writer in
/// batches. The buffer is drained on [`TraceSink::flush`], when it
/// exceeds [`JsonlSink::BATCH_BYTES`], on [`JsonlSink::into_inner`],
/// and on drop — dropping an unflushed sink cannot truncate the file.
/// Write failures are sticky: the records of a failed batch count as
/// [`TraceSink::dropped`] and the first error is retained for
/// [`JsonlSink::error`] (recording itself never panics).
pub struct JsonlSink<W: Write> {
    /// `Some` until `into_inner` steals the writer (drop then no-ops).
    out: Option<W>,
    buf: String,
    /// Records currently serialized in `buf`, not yet handed to `out`.
    pending: u64,
    written: u64,
    failed: u64,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<std::fs::File>> {
    /// Create (truncate) a JSONL trace file at `path`.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(JsonlSink::to_writer(BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Buffered bytes that trigger a write to the underlying writer.
    pub const BATCH_BYTES: usize = 64 * 1024;

    /// Wrap an arbitrary writer.
    pub fn to_writer(out: W) -> Self {
        JsonlSink {
            out: Some(out),
            buf: String::new(),
            pending: 0,
            written: 0,
            failed: 0,
            error: None,
        }
    }

    /// The first write error encountered, if any. Buffered records that
    /// could not be handed to the writer are counted in
    /// [`TraceSink::dropped`]; this exposes *why*.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Drain the serialization buffer into the writer and flush it,
    /// surfacing the first failure (current or sticky from an earlier
    /// batch) instead of swallowing it.
    pub fn try_flush(&mut self) -> io::Result<()> {
        self.write_batch();
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.flush() {
                if self.error.is_none() {
                    self.error = Some(io::Error::new(e.kind(), e.to_string()));
                }
                return Err(e);
            }
        }
        match &self.error {
            Some(e) => Err(io::Error::new(e.kind(), e.to_string())),
            None => Ok(()),
        }
    }

    /// Consume the sink, flushing and returning the writer.
    pub fn into_inner(mut self) -> W {
        self.write_batch();
        let mut out = self.out.take().expect("writer present until into_inner");
        let _ = out.flush();
        out
    }

    fn write_batch(&mut self) {
        if self.pending == 0 {
            self.buf.clear();
            return;
        }
        // Resolved per batch, not cached: the sink usually outlives the
        // per-experiment profiler installed around each run.
        let _span = profile::span("sink.write");
        let res = match self.out.as_mut() {
            Some(out) => out.write_all(self.buf.as_bytes()),
            None => Ok(()),
        };
        match res {
            Ok(()) => self.written += self.pending,
            Err(e) => {
                self.failed += self.pending;
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
        }
        self.pending = 0;
        self.buf.clear();
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        let render_span = profile::span("sink.render");
        rec.render_into(&mut self.buf);
        self.buf.push('\n');
        self.pending += 1;
        drop(render_span);
        if self.buf.len() >= Self::BATCH_BYTES {
            self.write_batch();
        }
    }

    fn len(&self) -> u64 {
        self.written + self.pending
    }

    fn dropped(&self) -> u64 {
        self.failed
    }

    fn flush(&mut self) {
        self.write_batch();
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.flush() {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if self.out.is_some() {
            self.flush();
        }
    }
}

/// Fan-out sink: forwards every record to each child sink in order.
///
/// This is how the `repro` binary runs the live auditor alongside a
/// `--trace` JSONL writer: both subscribe to the same stream, neither
/// knows about the other. Children are [`SharedSink`]s, so the caller
/// keeps its own handle to (say) the monitor and inspects it after the
/// run while the fan-out stays installed as the global sink.
pub struct FanoutSink {
    sinks: Vec<SharedSink>,
    seen: u64,
}

impl FanoutSink {
    /// A fan-out over `sinks` (forwarded to in the given order).
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        FanoutSink { sinks, seen: 0 }
    }
}

impl TraceSink for FanoutSink {
    fn record(&mut self, rec: &TraceRecord) {
        for sink in &self.sinks {
            sink.borrow_mut().record(rec);
        }
        self.seen += 1;
    }

    fn record_all(&mut self, recs: &[TraceRecord]) {
        for sink in &self.sinks {
            sink.borrow_mut().record_all(recs);
        }
        self.seen += recs.len() as u64;
    }

    fn len(&self) -> u64 {
        self.seen
    }

    fn dropped(&self) -> u64 {
        self.sinks.iter().map(|s| s.borrow().dropped()).sum()
    }

    fn flush(&mut self) {
        for sink in &self.sinks {
            sink.borrow_mut().flush();
        }
    }
}

/// Shared, dynamically-dispatched sink handle.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// A [`SharedSink`] viewed through the host-agnostic [`ProtoTrace`]
/// contract: events arriving from protocol machines are stamped into
/// [`TraceRecord`]s and forwarded to the wrapped record sink.
struct SinkBridge {
    sink: SharedSink,
}

impl ProtoTrace for SinkBridge {
    fn record(&mut self, t: Instant, node: &'static str, event: TraceEvent) {
        self.sink
            .borrow_mut()
            .record(&TraceRecord { t, node, event });
    }
}

/// A [`Trace`] handle feeding a record sink, labelling records with
/// `node`. This is the telemetry-side constructor for the
/// [`proto_core::trace::Trace`] handle protocol machines carry.
pub fn sink_trace(sink: SharedSink, node: &'static str) -> Trace {
    Trace::to_sink(Rc::new(RefCell::new(SinkBridge { sink })), node)
}

thread_local! {
    static GLOBAL_SINK: RefCell<Option<SharedSink>> = const { RefCell::new(None) };
}

/// Install a process-wide (per-thread) sink. Subsequent
/// [`global_handle`] calls feed it. Returns the previously installed
/// sink, if any.
pub fn install_global(sink: SharedSink) -> Option<SharedSink> {
    GLOBAL_SINK.with(|g| g.borrow_mut().replace(sink))
}

/// Remove the global sink, returning it for flushing/inspection.
pub fn uninstall_global() -> Option<SharedSink> {
    GLOBAL_SINK.with(|g| g.borrow_mut().take())
}

/// A clone of the currently installed global sink, if any. Lets an
/// orchestrator check whether tracing is live (and later replay worker
/// records into it) without disturbing the installation.
pub fn global_sink() -> Option<SharedSink> {
    GLOBAL_SINK.with(|g| g.borrow().clone())
}

/// A handle feeding the installed global sink (disabled when none).
pub fn global_handle(node: &'static str) -> Trace {
    GLOBAL_SINK.with(|g| match &*g.borrow() {
        Some(sink) => sink_trace(sink.clone(), node),
        None => Trace::disabled(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t: Instant::from_nanos(t_ns),
            node: "tx",
            event,
        }
    }

    #[test]
    fn disabled_trace_never_builds() {
        let trace = Trace::disabled();
        trace.emit(Instant::ZERO, || panic!("must not be called"));
    }

    #[test]
    fn ring_sink_bounds_and_counts() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&rec(
                i,
                TraceEvent::Nak {
                    seq: i,
                    cp_index: 0,
                },
            ));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring
            .records()
            .map(|r| match r.event {
                TraceEvent::Nak { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.count_kind("nak"), 3);
    }

    #[test]
    fn buffer_sink_drains_in_insertion_order() {
        let mut buf = BufferSink::new();
        for i in 0..100 {
            buf.record(&rec(
                i,
                TraceEvent::Nak {
                    seq: i,
                    cp_index: 0,
                },
            ));
        }
        assert_eq!(buf.len(), 100);
        let seqs: Vec<u64> = buf
            .take()
            .into_iter()
            .map(|r| match r.event {
                TraceEvent::Nak { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "oldest first");
        // Draining empties the buffer but keeps the accepted count (the
        // parallel runner reads it after replaying records).
        assert!(buf.take().is_empty());
        assert_eq!(buf.len(), 100);
    }

    #[test]
    fn trace_feeds_shared_sink() {
        let ring: SharedSink = Rc::new(RefCell::new(RingSink::new(16)));
        let trace = sink_trace(ring.clone(), "rx");
        trace.emit(Instant::from_millis(5), || TraceEvent::StopGo {
            stop: true,
        });
        trace
            .labelled("rx2")
            .emit(Instant::from_millis(6), || TraceEvent::LinkFailed);
        assert_eq!(ring.borrow().len(), 2);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let mut sink = JsonlSink::to_writer(Vec::new());
        sink.record(&rec(
            1_500_000_000,
            TraceEvent::CheckpointEmitted {
                index: 7,
                covered: 41,
                naks: 2,
                enforced: false,
                stop: true,
            },
        ));
        sink.record(&rec(
            2_000_000_000,
            TraceEvent::Renumbered {
                old_seq: 9,
                new_seq: 33,
            },
        ));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(Json::as_str),
            Some("checkpoint_emitted")
        );
        assert_eq!(first.get("t").and_then(Json::as_f64), Some(1.5));
        assert_eq!(first.get("naks").and_then(Json::as_f64), Some(2.0));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("new_seq").and_then(Json::as_f64), Some(33.0));
    }

    #[test]
    fn buffer_sink_takes_in_order() {
        let mut sink = BufferSink::new();
        for i in 0..4 {
            sink.record(&rec(
                i,
                TraceEvent::Nak {
                    seq: i,
                    cp_index: 0,
                },
            ));
        }
        assert_eq!(sink.len(), 4);
        let records = sink.take();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].t, Instant::from_nanos(0));
        assert_eq!(records[3].t, Instant::from_nanos(3));
        // `take` drains the buffer but `len` still reports lifetime count.
        assert!(sink.take().is_empty());
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn fanout_forwards_to_all_children() {
        let a: SharedSink = Rc::new(RefCell::new(RingSink::new(8)));
        let b: SharedSink = Rc::new(RefCell::new(BufferSink::new()));
        let mut fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&rec(
            1,
            TraceEvent::Nak {
                seq: 7,
                cp_index: 2,
            },
        ));
        fan.record(&rec(2, TraceEvent::LinkFailed));
        assert_eq!(fan.len(), 2);
        assert_eq!(a.borrow().len(), 2);
        assert_eq!(b.borrow().len(), 2);
        assert_eq!(fan.dropped(), 0);
    }

    #[test]
    fn every_event_kind_round_trips_through_jsonl() {
        let events = vec![
            TraceEvent::IFrameTx {
                seq: 3,
                retx: true,
                len: 1024,
            },
            TraceEvent::IFrameRx {
                seq: 3,
                clean: false,
                len: 1024,
            },
            TraceEvent::CheckpointEmitted {
                index: 7,
                covered: 41,
                naks: 2,
                enforced: true,
                stop: false,
            },
            TraceEvent::CheckpointReceived {
                index: 7,
                covered: 41,
                naks: 2,
            },
            TraceEvent::CheckpointLost { index: 8 },
            TraceEvent::Nak {
                seq: 9,
                cp_index: 4,
            },
            TraceEvent::Renumbered {
                old_seq: 9,
                new_seq: 33,
            },
            TraceEvent::RetxCause {
                seq: 33,
                cause: "nak",
                cp_index: 4,
            },
            TraceEvent::EnforcedRecoveryStarted { outstanding: 4 },
            TraceEvent::EnforcedRecoveryResolved,
            TraceEvent::StopGo { stop: true },
            TraceEvent::BufferWatermark {
                buffer: "tx",
                level: 64,
                rising: true,
            },
            TraceEvent::ChannelDrop { dir: "fwd" },
            TraceEvent::Control {
                kind: "srej",
                seq: 5,
            },
            TraceEvent::LinkFailed,
            TraceEvent::RunStarted,
            TraceEvent::RunFinished { deadline_hit: true },
            TraceEvent::ExperimentStarted { id: "e8" },
            TraceEvent::SenderConfig {
                w_cp_ns: 5_000_000,
                c_depth: 3,
                rtt_ns: 26_700_000,
                cp_timeout_ns: 16_000_000,
                resolving_ns: 45_210_000,
                failure_ns: 43_710_000,
            },
            TraceEvent::BufferRelease {
                seq: 12,
                held_ns: 31_337,
                cp_index: 5,
            },
            TraceEvent::ReseqHold {
                id: 40,
                held_ns: 2_500_000,
            },
            TraceEvent::TraceHeader {
                clock_domain: "wall",
            },
            TraceEvent::Superstep {
                round: 17,
                shard: 2,
                grant_ns: 1_002_000_000,
                cut_bound: true,
                critical_link: 5,
                events: 143,
                inbound: 7,
                outbound: 9,
                queue_depth: 21,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            // Deliberately awkward timestamp: exercises the f64 round trip.
            let original = rec(1_234_567_891 + i as u64, event);
            let line = original.to_json().render();
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, original, "{line}");
        }
    }

    #[test]
    fn wall_scale_timestamps_round_trip_exactly() {
        // Past 2^53 ns the f64-seconds member alone rounds; the record
        // grows an exact `t_ns` companion which parsing prefers.
        let ns = (1u64 << 53) + 1;
        let original = rec(ns, TraceEvent::LinkFailed);
        let line = original.to_json().render();
        assert!(line.contains("\"t_ns\":9007199254740993"), "{line}");
        let mut direct = String::new();
        original.render_into(&mut direct);
        assert_eq!(direct, line, "both render paths agree");
        let back = parse_line(&line).unwrap();
        assert_eq!(back.t.as_nanos(), ns);
        // Sim-scale records keep the historical single-`t` shape.
        let small = rec(1_234_567_891, TraceEvent::LinkFailed);
        assert!(!small.to_json().render().contains("t_ns"));
    }

    /// A writer that fails every write after the first `ok_writes`.
    struct FailingWriter {
        ok_writes: usize,
        accepted: Vec<u8>,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            self.accepted.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_surfaces_write_errors() {
        let mut sink = JsonlSink::to_writer(FailingWriter {
            ok_writes: 0,
            accepted: Vec::new(),
        });
        sink.record(&rec(
            1,
            TraceEvent::Nak {
                seq: 1,
                cp_index: 0,
            },
        ));
        sink.record(&rec(
            2,
            TraceEvent::Nak {
                seq: 2,
                cp_index: 0,
            },
        ));
        // Records sit buffered until a batch boundary; the failure
        // surfaces at flush, counting the lost batch as dropped.
        assert_eq!(sink.dropped(), 0);
        let err = sink.try_flush().expect_err("write must fail");
        assert_eq!(err.to_string(), "disk full");
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.len(), 0, "failed records are not counted written");
        assert_eq!(sink.error().expect("sticky error").to_string(), "disk full");
        // The error stays sticky on subsequent flushes.
        sink.record(&rec(
            3,
            TraceEvent::Nak {
                seq: 3,
                cp_index: 0,
            },
        ));
        assert!(sink.try_flush().is_err());
    }

    #[test]
    fn jsonl_flushes_on_drop() {
        let accepted = Rc::new(RefCell::new(Vec::new()));

        struct SharedWriter(Rc<RefCell<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        {
            let mut sink = JsonlSink::to_writer(SharedWriter(accepted.clone()));
            sink.record(&rec(1, TraceEvent::LinkFailed));
            assert!(accepted.borrow().is_empty(), "record is buffered");
        } // dropped without an explicit flush
        let text = String::from_utf8(accepted.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("link_failed"));
    }

    #[test]
    fn jsonl_batches_writes() {
        let mut sink = JsonlSink::to_writer(FailingWriter {
            ok_writes: usize::MAX,
            accepted: Vec::new(),
        });
        let n = (JsonlSink::<FailingWriter>::BATCH_BYTES / 40) as u64 + 2;
        for i in 0..n {
            sink.record(&rec(
                i,
                TraceEvent::Nak {
                    seq: i,
                    cp_index: 0,
                },
            ));
        }
        assert_eq!(sink.len(), n);
        let writer = sink.into_inner();
        let text = String::from_utf8(writer.accepted).unwrap();
        assert_eq!(text.lines().count() as u64, n);
    }

    #[test]
    fn render_into_matches_ast_rendering() {
        // The direct serializer must stay byte-identical to the Json-AST
        // path for every event kind (parse_line and the offline tools
        // depend on the AST shape; JsonlSink writes the direct form).
        let events = vec![
            TraceEvent::IFrameTx {
                seq: 3,
                retx: true,
                len: 1024,
            },
            TraceEvent::CheckpointEmitted {
                index: 7,
                covered: 41,
                naks: 2,
                enforced: true,
                stop: false,
            },
            TraceEvent::EnforcedRecoveryResolved,
            TraceEvent::Nak {
                seq: 9,
                cp_index: 3,
            },
            TraceEvent::RetxCause {
                seq: 21,
                cause: "resolve",
                cp_index: 0,
            },
            TraceEvent::BufferRelease {
                seq: 12,
                held_ns: 31_337,
                cp_index: 5,
            },
            TraceEvent::ReseqHold {
                id: 40,
                held_ns: 2_500_000,
            },
            TraceEvent::BufferWatermark {
                buffer: "tx",
                level: 64,
                rising: true,
            },
            TraceEvent::SenderConfig {
                w_cp_ns: 5_000_000,
                c_depth: 3,
                rtt_ns: 26_700_000,
                cp_timeout_ns: 16_000_000,
                resolving_ns: 45_210_000,
                failure_ns: 43_710_000,
            },
            TraceEvent::TraceHeader {
                clock_domain: "sim",
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let r = rec(1_234_567_891 + i as u64, event);
            let mut direct = String::new();
            r.render_into(&mut direct);
            assert_eq!(direct, r.to_json().render());
        }
    }

    #[test]
    fn record_all_matches_per_record_dispatch() {
        let batch: Vec<TraceRecord> = (0..5)
            .map(|i| {
                rec(
                    i,
                    TraceEvent::Nak {
                        seq: i,
                        cp_index: 0,
                    },
                )
            })
            .collect();
        let mut buffered = BufferSink::new();
        buffered.record_all(&batch);
        assert_eq!(buffered.len(), 5);
        assert_eq!(buffered.take(), batch);

        let a: SharedSink = Rc::new(RefCell::new(RingSink::new(8)));
        let mut fan = FanoutSink::new(vec![a.clone()]);
        fan.record_all(&batch);
        assert_eq!(fan.len(), 5);
        assert_eq!(a.borrow().len(), 5);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"t":1,"node":"tx"}"#).is_err());
        assert!(parse_line(r#"{"t":1,"node":"tx","event":"martian"}"#).is_err());
        assert!(parse_line(r#"{"t":-1,"node":"tx","event":"link_failed"}"#).is_err());
        // Missing event-specific field.
        assert!(parse_line(r#"{"t":1,"node":"tx","event":"nak"}"#).is_err());
    }

    #[test]
    fn intern_reuses_known_and_novel_labels() {
        assert_eq!(intern("tx"), "tx");
        let novel = intern("hop3.rx");
        assert_eq!(novel, "hop3.rx");
        // A second parse of the same novel label reuses the leak.
        assert!(std::ptr::eq(novel.as_ptr(), intern("hop3.rx").as_ptr()));
    }

    #[test]
    fn global_sink_clone_matches_installed() {
        assert!(global_sink().is_none());
        let ring: SharedSink = Rc::new(RefCell::new(RingSink::new(4)));
        install_global(ring.clone());
        let observed = global_sink().expect("sink installed");
        assert!(Rc::ptr_eq(&observed, &ring));
        uninstall_global();
        assert!(global_sink().is_none());
    }

    #[test]
    fn global_sink_install_and_remove() {
        assert!(!global_handle("x").enabled());
        let ring: SharedSink = Rc::new(RefCell::new(RingSink::new(4)));
        assert!(install_global(ring).is_none());
        let h = global_handle("x");
        assert!(h.enabled());
        h.emit(Instant::ZERO, || TraceEvent::LinkFailed);
        let back = uninstall_global().unwrap();
        assert_eq!(back.borrow().len(), 1);
        assert!(!global_handle("x").enabled());
    }
}
