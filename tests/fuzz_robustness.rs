//! Robustness fuzzing: decoders must reject, never panic, on arbitrary
//! or corrupted input; core data structures keep their invariants under
//! random operation sequences.

use fec::{BitBuf, LinkCodec, Viterbi, CCSDS_K7};
use proptest::prelude::*;

proptest! {
    // -------------------------------------------------------- wire decode

    #[test]
    fn lams_wire_decode_never_panics(
        bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..600),
        reference in proptest::num::u64::ANY,
    ) {
        // Any byte soup: Ok or Err, never panic.
        let _ = lams_dlc::wire::decode(&bytes, reference % (1 << 40), 1 << 16);
    }

    #[test]
    fn hdlc_wire_decode_never_panics(
        bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..600),
        reference in proptest::num::u64::ANY,
    ) {
        let _ = hdlc::wire::decode(&bytes, reference % (1 << 40), 2048);
    }

    #[test]
    fn lams_wire_truncation_never_accepts(
        payload in proptest::collection::vec(proptest::num::u8::ANY, 1..200),
        cut_fraction in 0.05f64..0.95,
    ) {
        let f = lams_dlc::Frame::Info(lams_dlc::InfoFrame {
            seq: 77,
            packet_id: lams_dlc::PacketId(3),
            payload: bytes::Bytes::from(payload),
        });
        let enc = lams_dlc::wire::encode(&f, 1 << 16);
        let cut = ((enc.len() as f64 * cut_fraction) as usize).max(1).min(enc.len() - 1);
        prop_assert!(lams_dlc::wire::decode(&enc[..cut], 77, 1 << 16).is_err());
    }

    // -------------------------------------------------------- FEC pipeline

    #[test]
    fn viterbi_corrects_any_two_flips(
        data in proptest::collection::vec(proptest::num::u8::ANY, 1..24),
        i in proptest::num::usize::ANY,
        j in proptest::num::usize::ANY,
    ) {
        let input = BitBuf::from_bytes(&data);
        let enc = CCSDS_K7.encode(&input);
        let mut corrupted = enc.clone();
        let a = i % corrupted.len();
        let b = j % corrupted.len();
        corrupted.toggle(a);
        if b != a {
            corrupted.toggle(b);
        }
        let v = Viterbi::new(CCSDS_K7);
        let dec = v.decode(&corrupted).expect("decodable");
        prop_assert_eq!(dec, input, "flips at ({}, {})", a, b);
    }

    #[test]
    fn codec_roundtrip_any_length(
        data in proptest::collection::vec(proptest::num::u8::ANY, 1..128),
    ) {
        let codec = LinkCodec::iframe_default();
        let input = BitBuf::from_bytes(&data);
        let coded = codec.encode(&input);
        match codec.decode(&coded, input.len()) {
            fec::DecodeOutcome::Bits(b) => prop_assert_eq!(b, input),
            other => prop_assert!(false, "clean decode failed: {:?}", other),
        }
    }

    #[test]
    fn codec_never_panics_on_garbage(
        bits in proptest::collection::vec(proptest::bool::ANY, 0..2048),
        claimed_len in 0usize..512,
    ) {
        let codec = LinkCodec::iframe_default();
        let garbage = BitBuf::from_bits(&bits);
        let _ = codec.decode(&garbage, claimed_len);
    }

    // ----------------------------------------------------------- sim-core

    #[test]
    fn event_queue_total_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut q = sim_core::EventQueue::new();
        // Schedule in arbitrary order (as given).
        for (i, &t) in times.iter().enumerate() {
            q.schedule(sim_core::Instant::from_nanos(t), i);
        }
        let mut last_t = sim_core::Instant::ZERO;
        let mut popped = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_t, "time went backwards");
            // FIFO among equal timestamps: indices increase.
            if last_time == Some(t) {
                prop_assert!(
                    seen_at_time.last().is_none_or(|&p| p < idx),
                    "FIFO violated at {:?}", t
                );
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
                last_time = Some(t);
            }
            last_t = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn dedup_window_never_double_accepts(
        offers in proptest::collection::vec((0u64..50, 0u64..1000), 1..300),
    ) {
        // Offers of (id, time-in-ms, sorted) — an id accepted twice within
        // the horizon would be a duplication bug.
        let horizon = sim_core::Duration::from_millis(100);
        let mut w = lams_dlc::DedupWindow::new(horizon);
        let mut sorted = offers.clone();
        sorted.sort_by_key(|&(_, t)| t);
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for (id, t_ms) in sorted {
            let now = sim_core::Instant::from_millis(t_ms);
            if w.accept(now, lams_dlc::PacketId(id)) {
                // No prior accept of the same id within the horizon.
                let dup = accepted.iter().any(|&(aid, at)| {
                    aid == id && t_ms.saturating_sub(at) <= 100
                });
                prop_assert!(!dup, "id {} double-accepted at {}ms", id, t_ms);
                accepted.push((id, t_ms));
            }
        }
    }
}

#[test]
fn wire_bitflip_storm_rejected_or_exact() {
    // Deterministic sweep: every single-bit flip of an encoded frame is
    // either rejected (CRC) or — impossible for CRC-protected frames —
    // decoded to something different. Assert rejection.
    let f = lams_dlc::Frame::Info(lams_dlc::InfoFrame {
        seq: 1234,
        packet_id: lams_dlc::PacketId(5),
        payload: bytes::Bytes::from_static(b"bitflip storm target payload"),
    });
    let enc = lams_dlc::wire::encode(&f, 1 << 16);
    for bit in 0..enc.len() * 8 {
        let mut bad = enc.clone();
        bad[bit / 8] ^= 0x80 >> (bit % 8);
        assert!(
            lams_dlc::wire::decode(&bad, 1234, 1 << 16).is_err(),
            "flip {bit} accepted"
        );
    }
}
