//! E7 — low-traffic total delivery time `D_low(N)` (the §4 expressions),
//! validated against simulation for both protocols.
//!
//! "Low traffic" per §4: a batch of `N < W` frames is in the sending
//! buffer and no more arrive until it completes.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use analysis::delivery::{d_low_hdlc, d_low_lams};

/// Batch sizes (all below the default window of 1024).
pub const BATCHES: &[u64] = &[50, 200, 500, 1000];

/// Residual BER used here: low enough that `P[any error in the batch] ≪ 1`,
/// the regime where the paper's `(s̄−1)·D_retrn` tail term is accurate.
/// (At 1e-6 a 1000-frame batch almost surely suffers errors and the true
/// mean delivery time exceeds the paper's formula by about one
/// retransmission round — see EXPERIMENTS.md.)
pub const RESIDUAL_BER: f64 = 1e-8;

/// Run E7.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: &[u64] = if quick {
        &[1, 2, 3]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let mut table = Table::new(
        "low-traffic delivery time D_low(N), ms (residual BER 1e-8)",
        &[
            "N",
            "lams_analytic",
            "lams_sim",
            "hdlc_analytic",
            "hdlc_sim",
        ],
    );
    let runs = parallel::map(BATCHES.to_vec(), |n| {
        let mut lams_sum = 0.0;
        let mut sr_sum = 0.0;
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.data_residual_ber = RESIDUAL_BER;
        cfg.ctrl_residual_ber = RESIDUAL_BER / 10.0;
        for &seed in seeds {
            cfg.seed = seed;
            lams_sum += run_lams(&cfg).elapsed_s();
            sr_sum += run_sr(&cfg).elapsed_s();
        }
        (cfg.link_params(), lams_sum, sr_sum)
    });
    for (&n, (p, lams_sum, sr_sum)) in BATCHES.iter().zip(runs) {
        table.row(vec![
            n.into(),
            (d_low_lams(&p, n) * 1e3).into(),
            (lams_sum / seeds.len() as f64 * 1e3).into(),
            (d_low_hdlc(&p, n) * 1e3).into(),
            (sr_sum / seeds.len() as f64 * 1e3).into(),
        ]);
    }
    ExperimentOutput {
        id: "E7",
        title: "Low-traffic delivery time D_low(N) — analysis vs simulation (paper §4)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: both grow affinely in N with slope t_f; the \
             intercept is the s̄·R(+checkpoint/poll) tail; analysis and \
             simulation agree within the checkpoint-phase jitter (±I_cp)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_analysis_matches_simulation() {
        let out = run(true);
        let t = &out.tables[0];
        for row in 0..t.len() {
            for (a_col, s_col, name) in [(1, 2, "lams"), (3, 4, "hdlc")] {
                let a = t.value(row, a_col).unwrap();
                let s = t.value(row, s_col).unwrap();
                assert!(
                    (a - s).abs() / a < 0.15,
                    "row {row} {name}: analytic {a} ms vs sim {s} ms"
                );
            }
        }
        // Affine growth: delivery time increases with N.
        assert!(t.value(t.len() - 1, 2).unwrap() > t.value(0, 2).unwrap());
    }
}
