//! The experiment suite: one module per paper artifact.
//!
//! Each experiment regenerates one table or figure from the paper's
//! evaluation (DESIGN.md §3 maps ids to paper artifacts) and, where the
//! artifact is analytic, validates the closed-form expression against a
//! discrete-event simulation of the actual protocols.
//!
//! Every module exposes `run(quick) -> ExperimentOutput`; `quick` shrinks
//! the workloads for CI. The `repro` binary prints any subset.

pub mod e01_retransmission;
pub mod e02_throughput_vs_traffic;
pub mod e03_throughput_vs_ber;
pub mod e04_throughput_vs_distance;
pub mod e05_buffer_occupancy;
pub mod e06_holding_time;
pub mod e07_low_traffic_delivery;
pub mod e08_burst_errors;
pub mod e09_enforced_recovery;
pub mod e10_numbering;
pub mod e11_flow_control;
pub mod e12_ablation;
pub mod e13_relay_chain;
pub mod e14_frame_size;
pub mod e15_duplex;
pub mod e16_delay_load;
pub mod e17_gbn;
pub mod e18_sharded_chain;

use crate::report::Table;
use sim_core::stats::Series;
use telemetry::Json;

/// The product of one experiment.
pub struct ExperimentOutput {
    /// Experiment id ("E1".."E12").
    pub id: &'static str,
    /// Human title (paper artifact).
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Result traces.
    pub traces: Vec<Series>,
    /// Interpretation notes (expected shape, caveats).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Render everything as text.
    pub fn render(&self) -> String {
        let mut out = format!("==== {}: {} ====\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for s in &self.traces {
            out.push_str(&crate::report::render_series(s, 48));
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for n in &self.notes {
                out.push_str("  - ");
                out.push_str(n);
                out.push('\n');
            }
        }
        out
    }

    /// Machine-readable form:
    /// `{"id", "title", "tables": [...], "traces": [...], "notes": [str]}`
    /// (tables per [`Table::to_json`], traces per
    /// [`crate::report::series_json`], decimated to ≤ 512 points).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id)),
            ("title", Json::from(self.title.as_str())),
            (
                "tables",
                Json::from(self.tables.iter().map(Table::to_json).collect::<Vec<_>>()),
            ),
            (
                "traces",
                Json::from(
                    self.traces
                        .iter()
                        .map(|s| crate::report::series_json(s, 512))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "notes",
                Json::from(
                    self.notes
                        .iter()
                        .map(|n| Json::from(n.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

/// All experiment ids in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

/// Run one experiment by id ("e1".."e12"), or `None` if unknown.
pub fn run_by_id(id: &str, quick: bool) -> Option<ExperimentOutput> {
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e01_retransmission::run(quick),
        "e2" => e02_throughput_vs_traffic::run(quick),
        "e3" => e03_throughput_vs_ber::run(quick),
        "e4" => e04_throughput_vs_distance::run(quick),
        "e5" => e05_buffer_occupancy::run(quick),
        "e6" => e06_holding_time::run(quick),
        "e7" => e07_low_traffic_delivery::run(quick),
        "e8" => e08_burst_errors::run(quick),
        "e9" => e09_enforced_recovery::run(quick),
        "e10" => e10_numbering::run(quick),
        "e11" => e11_flow_control::run(quick),
        "e12" => e12_ablation::run(quick),
        "e13" => e13_relay_chain::run(quick),
        "e14" => e14_frame_size::run(quick),
        "e15" => e15_duplex::run(quick),
        "e16" => e16_delay_load::run(quick),
        "e17" => e17_gbn::run(quick),
        "e18" => e18_sharded_chain::run(quick),
        _ => return None,
    })
}
