//! Protocol event vocabulary and the host-pluggable trace contract.
//!
//! State machines hold a cheap [`Trace`] handle and call [`Trace::emit`]
//! with a closure building the event. When tracing is disabled the
//! closure is never run, so the cost of an instrumented site is a single
//! branch on an `Option` — no allocation, no formatting.
//!
//! Persistence is the host's business: the [`ProtoTrace`] trait is the
//! only thing a protocol crate knows about. The `telemetry` crate
//! bridges it onto its timestamped-record sinks (JSONL writers, rings,
//! fan-outs); a bare host (the model checker, the UDP demo) can ignore
//! tracing entirely or plug in a closure-sized recorder.

use crate::time::Instant;
use std::cell::RefCell;
use std::rc::Rc;

/// One protocol event, as emitted by a state machine.
///
/// Field vocabulary: `seq` is a wire sequence number, `index` a
/// checkpoint index, `len` a payload length in bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An I-frame left the sender (first transmission or retransmission).
    IFrameTx {
        /// Wire sequence number.
        seq: u64,
        /// True for a retransmission.
        retx: bool,
        /// Payload length in bytes.
        len: u64,
    },
    /// An I-frame arrived at the receiver.
    IFrameRx {
        /// Wire sequence number.
        seq: u64,
        /// False when the frame arrived corrupted.
        clean: bool,
        /// Payload length in bytes.
        len: u64,
    },
    /// The receiver emitted a checkpoint frame.
    CheckpointEmitted {
        /// Checkpoint index (cyclic counter on the wire).
        index: u64,
        /// Highest in-sequence frame covered.
        covered: u64,
        /// NAKs carried in this checkpoint.
        naks: u64,
        /// True when this checkpoint carries a Request-NAK reply.
        enforced: bool,
        /// True when the checkpoint signals Stop (flow control).
        stop: bool,
    },
    /// The sender received a checkpoint frame.
    CheckpointReceived {
        /// Checkpoint index.
        index: u64,
        /// Highest in-sequence frame covered (implicit-ACK horizon).
        covered: u64,
        /// NAKs carried.
        naks: u64,
    },
    /// The sender inferred a lost checkpoint from an index gap.
    CheckpointLost {
        /// Index of the missing checkpoint.
        index: u64,
    },
    /// The receiver recorded a NAK for a missing or corrupted frame.
    Nak {
        /// Wire sequence number being NAK'd.
        seq: u64,
        /// Index of the first checkpoint that will carry this NAK (the
        /// current interval closes into that checkpoint).
        cp_index: u64,
    },
    /// A NAK'd frame was renumbered with a fresh wire sequence number.
    Renumbered {
        /// Sequence number the NAK referred to.
        old_seq: u64,
        /// Fresh sequence number assigned for retransmission.
        new_seq: u64,
    },
    /// Why a retransmission happened: emitted by the sender immediately
    /// before the retransmitted copy's `IFrameTx`, carrying the causal
    /// link the latency-attribution layer keys on.
    RetxCause {
        /// Fresh wire sequence number of the retransmitted copy.
        seq: u64,
        /// Cause class: `"nak"` (checkpoint NAK), `"resolve"` (resolving
        /// timer expired), `"suspect"` (unsafe-index-gap defensive copy).
        cause: &'static str,
        /// Checkpoint index that triggered the retransmission (0 for
        /// timer-driven causes, which no checkpoint triggered).
        cp_index: u64,
    },
    /// The sender entered enforced recovery (sent a Request-NAK probe).
    EnforcedRecoveryStarted {
        /// Frames outstanding when recovery began.
        outstanding: u64,
    },
    /// Enforced recovery resolved (Enforced-NAK received or state cleared).
    EnforcedRecoveryResolved,
    /// Flow-control state observed by the sender changed.
    StopGo {
        /// True = Stop (halt new transmissions), false = Go.
        stop: bool,
    },
    /// A buffer crossed a watermark.
    BufferWatermark {
        /// Which buffer (`"tx"`, `"rx"`, `"reseq"`, ...).
        buffer: &'static str,
        /// Occupancy at the crossing.
        level: u64,
        /// True when crossing upward (filling), false when draining.
        rising: bool,
    },
    /// A frame was dropped by the channel model.
    ChannelDrop {
        /// Direction: `"fwd"` (data) or `"rev"` (control).
        dir: &'static str,
    },
    /// A baseline (HDLC) control frame was sent or processed.
    Control {
        /// Frame kind (`"rej"`, `"srej"`, `"rr"`, `"timeout"`).
        kind: &'static str,
        /// Related sequence number (0 when not applicable).
        seq: u64,
    },
    /// The sender's failure timer declared the link dead.
    LinkFailed,
    /// A simulation run began (emitted by the netsim engine before the
    /// first event is pumped). Observers reset per-run state here.
    RunStarted,
    /// A simulation run ended (the event loop drained or hit its
    /// deadline).
    RunFinished {
        /// True when the run stopped at its deadline with work still
        /// pending, false when it drained cleanly.
        deadline_hit: bool,
    },
    /// The experiment runner is about to execute one experiment; every
    /// following record up to the next marker belongs to it.
    ExperimentStarted {
        /// Experiment id (`"e1"`, ..., `"e17"`).
        id: &'static str,
    },
    /// A LAMS-DLC sender announced its timing configuration at
    /// `start()`. Carries everything an online auditor needs to bound
    /// checkpoint cadence and frame resolution for this node.
    SenderConfig {
        /// Checkpoint interval `W_cp` in nanoseconds.
        w_cp_ns: u64,
        /// Cumulation depth `C_depth`.
        c_depth: u64,
        /// Expected round-trip time `R` in nanoseconds.
        rtt_ns: u64,
        /// Checkpoint-timer timeout (`C_depth·W_cp` + slack) in ns.
        cp_timeout_ns: u64,
        /// Resolving period (`R + W_cp/2 + C_depth·W_cp` + slack) in ns.
        resolving_ns: u64,
        /// Failure-timer duration in nanoseconds.
        failure_ns: u64,
    },
    /// The sender released a buffered frame on implicit positive
    /// acknowledgement (a checkpoint covered it without NAKing it).
    BufferRelease {
        /// Wire sequence number of the released copy.
        seq: u64,
        /// Time the frame spent buffered, in nanoseconds.
        held_ns: u64,
        /// Index of the covering checkpoint whose implicit ACK released
        /// the frame.
        cp_index: u64,
    },
    /// The destination resequencer held a delivered SDU before releasing
    /// it in order (emitted only when the hold was non-zero).
    ReseqHold {
        /// End-to-end SDU id.
        id: u64,
        /// Time spent held in the resequencer, in nanoseconds.
        held_ns: u64,
    },
    /// Stream header, emitted by the host as the first record of a
    /// trace: names the clock domain every following timestamp was
    /// measured in. Streams without one are simulator traces from
    /// before the header existed (implicitly `"sim"`).
    TraceHeader {
        /// Clock domain name: `"sim"` (virtual, reproducible) or
        /// `"wall"` (monotonic real time, run-local origin).
        clock_domain: &'static str,
    },
    /// One shard's granted window within a conservative-parallel
    /// superstep, emitted by the sharded coordinator under the `"coord"`
    /// node label at the window's grant instant. Carries only
    /// deterministic fields (no wall-clock timing), so traces stay
    /// byte-identical across repeated runs at the same shard count.
    Superstep {
        /// Coordinator round index (0-based superstep counter).
        round: u64,
        /// Shard the window was granted to.
        shard: u64,
        /// Granted horizon `G_s` in nanoseconds of simulated time.
        grant_ns: u64,
        /// True when an inbound cut's `C_sender + delay` bound the
        /// grant (rather than the finish-time lower bound or deadline).
        cut_bound: bool,
        /// Global id of the binding inbound cut link — the *critical
        /// cut* (0 when `cut_bound` is false).
        critical_link: u64,
        /// Events processed in the window (pushes and arrivals; wakes
        /// are bookkeeping and excluded, so the sum over shards is
        /// invariant across shard counts).
        events: u64,
        /// Cross-shard arrivals injected at the start of the window.
        inbound: u64,
        /// Frames exported across outbound cut links during the window.
        outbound: u64,
        /// Events still pending on the shard queue at window end.
        queue_depth: u64,
    },
}

impl TraceEvent {
    /// Stable machine-readable event name (the JSONL `event` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IFrameTx { .. } => "iframe_tx",
            TraceEvent::IFrameRx { .. } => "iframe_rx",
            TraceEvent::CheckpointEmitted { .. } => "checkpoint_emitted",
            TraceEvent::CheckpointReceived { .. } => "checkpoint_received",
            TraceEvent::CheckpointLost { .. } => "checkpoint_lost",
            TraceEvent::Nak { .. } => "nak",
            TraceEvent::Renumbered { .. } => "renumbered",
            TraceEvent::RetxCause { .. } => "retx_cause",
            TraceEvent::EnforcedRecoveryStarted { .. } => "enforced_recovery_started",
            TraceEvent::EnforcedRecoveryResolved => "enforced_recovery_resolved",
            TraceEvent::StopGo { .. } => "stop_go",
            TraceEvent::BufferWatermark { .. } => "buffer_watermark",
            TraceEvent::ChannelDrop { .. } => "channel_drop",
            TraceEvent::Control { .. } => "control",
            TraceEvent::LinkFailed => "link_failed",
            TraceEvent::RunStarted => "run_started",
            TraceEvent::RunFinished { .. } => "run_finished",
            TraceEvent::ExperimentStarted { .. } => "experiment_started",
            TraceEvent::SenderConfig { .. } => "sender_config",
            TraceEvent::BufferRelease { .. } => "buffer_release",
            TraceEvent::ReseqHold { .. } => "reseq_hold",
            TraceEvent::TraceHeader { .. } => "trace_header",
            TraceEvent::Superstep { .. } => "superstep",
        }
    }
}

/// An event sink a host plugs under protocol state machines.
///
/// Implementations receive the emitting node's label and the emission
/// time alongside the event, so a timestamped-record store (telemetry's
/// JSONL sinks) can be built on top without the protocol crates knowing
/// records exist.
pub trait ProtoTrace {
    /// Accept one event emitted at `t` by the node labelled `node`.
    fn record(&mut self, t: Instant, node: &'static str, event: TraceEvent);
}

/// Shared, dynamically-dispatched event-sink handle.
pub type SharedTrace = Rc<RefCell<dyn ProtoTrace>>;

/// Cheap per-node tracing handle carried by protocol state machines.
///
/// Disabled handles (the default) skip event construction entirely:
/// `emit` checks one `Option` and returns.
#[derive(Clone, Default)]
pub struct Trace {
    sink: Option<SharedTrace>,
    node: &'static str,
}

impl Trace {
    /// A disabled handle — every `emit` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            sink: None,
            node: "",
        }
    }

    /// A handle feeding `sink`, labelling events with `node`.
    pub fn to_sink(sink: SharedTrace, node: &'static str) -> Self {
        Trace {
            sink: Some(sink),
            node,
        }
    }

    /// This handle with a different node label, sharing the same sink.
    pub fn labelled(&self, node: &'static str) -> Self {
        Trace {
            sink: self.sink.clone(),
            node,
        }
    }

    /// True when events will actually be recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit one event at time `now`. The closure runs only when a sink
    /// is attached.
    #[inline]
    pub fn emit(&self, now: Instant, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(now, self.node, build());
        }
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("node", &self.node)
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingSink {
        events: Vec<(u64, &'static str, &'static str)>,
    }

    impl ProtoTrace for CountingSink {
        fn record(&mut self, t: Instant, node: &'static str, event: TraceEvent) {
            self.events.push((t.as_nanos(), node, event.kind()));
        }
    }

    #[test]
    fn disabled_trace_never_builds() {
        let trace = Trace::disabled();
        trace.emit(Instant::ZERO, || panic!("must not be called"));
        assert!(!trace.enabled());
    }

    #[test]
    fn trace_feeds_shared_sink_with_labels() {
        let sink = Rc::new(RefCell::new(CountingSink::default()));
        let trace = Trace::to_sink(sink.clone(), "rx");
        trace.emit(Instant::from_millis(5), || TraceEvent::StopGo {
            stop: true,
        });
        trace
            .labelled("rx2")
            .emit(Instant::from_millis(6), || TraceEvent::LinkFailed);
        let events = sink.borrow().events.clone();
        assert_eq!(
            events,
            vec![
                (5_000_000, "rx", "stop_go"),
                (6_000_000, "rx2", "link_failed")
            ]
        );
    }
}
