//! Adversarial schedule sweep for the sans-IO LAMS-DLC machines.
//!
//! ```text
//! model-check [--schedules N] [--json <path|->] [--artifact <path>]
//!             [--inject-stale-replay N]
//! model-check --replay <artifact>
//! ```
//!
//! Runs `N` (default 1000) derived schedules through the pure machines
//! and reports invariant violations. `--json` additionally writes the
//! machine-readable `lams-dlc.mcheck/1` coverage document — which
//! adversary knobs fired and which recovery machinery ran — so CI can
//! assert the sweep actually exercised every knob. On the first
//! violation, `--artifact` writes a replayable failure artifact
//! (schedule header + deterministic telemetry trace); `--replay`
//! re-runs such an artifact and demands the byte-identical finding.
//! `--inject-stale-replay` arms the known-bad-machine fault on every
//! schedule (replay the first information frame after the `N`-th
//! emission) to prove the checker and its artifacts end to end. Exits
//! non-zero if any invariant broke or a replay diverged.

use model_check::{read_artifact, run_schedule, write_artifact, Report, Schedule};
use std::process::ExitCode;

struct Opts {
    schedules: u64,
    json: Option<String>,
    artifact: Option<String>,
    replay: Option<String>,
    inject_stale_replay: u64,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        schedules: 1000,
        json: None,
        artifact: None,
        replay: None,
        inject_stale_replay: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match flag.as_str() {
            "--schedules" => {
                opts.schedules = value("--schedules")?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?
            }
            "--json" => opts.json = Some(value("--json")?),
            "--artifact" => opts.artifact = Some(value("--artifact")?),
            "--replay" => opts.replay = Some(value("--replay")?),
            "--inject-stale-replay" => {
                opts.inject_stale_replay = value("--inject-stale-replay")?
                    .parse()
                    .map_err(|e| format!("--inject-stale-replay: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: model-check [--schedules N] [--json <path|->] \
                     [--artifact <path>] [--inject-stale-replay N] | \
                     model-check --replay <artifact>"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

fn replay_artifact(path: &str) -> ExitCode {
    let (sched, expected) = match read_artifact(std::path::Path::new(path)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("model-check: replaying artifact {path}");
    match run_schedule(&sched) {
        Err(v) if v.what == expected => {
            println!("replay reproduced the finding byte-identically:");
            println!("  {expected}");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("replay DIVERGED:");
            eprintln!("  artifact: {expected}");
            eprintln!("  replay:   {}", v.what);
            ExitCode::FAILURE
        }
        Ok(outcome) => {
            eprintln!("replay DIVERGED: artifact expected a violation, run ended {outcome:?}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.replay {
        return replay_artifact(path);
    }

    println!(
        "model-check: exploring {} adversarial schedules{}",
        opts.schedules,
        if opts.inject_stale_replay > 0 {
            format!(
                " (stale-replay fault armed after {} emissions)",
                opts.inject_stale_replay
            )
        } else {
            String::new()
        }
    );
    let mut report = Report::default();
    for index in 0..opts.schedules {
        let mut sched = Schedule::derive(index);
        sched.replay_stale_after = opts.inject_stale_replay;
        let (result, cov) = model_check::run_schedule_observed(&sched);
        report.coverage.absorb(&cov);
        match result {
            Ok(model_check::Outcome::Complete {
                retransmissions, ..
            }) => {
                report.complete += 1;
                report.retransmissions += retransmissions;
            }
            Ok(model_check::Outcome::LinkFailed { .. }) => report.link_failures += 1,
            Err(v) => report.violations.push(v),
        }
    }
    println!(
        "complete: {} | declared link failures: {} | violations: {} | \
         retransmissions across completed runs: {}",
        report.complete,
        report.link_failures,
        report.violations.len(),
        report.retransmissions,
    );
    let c = &report.coverage;
    println!(
        "coverage: drops {} | dups {} | reorders {} | corruptions {} | \
         capacity losses {} | checkpoints {} | request naks {} | enforced naks {}",
        c.drops,
        c.dups,
        c.reorders,
        c.corruptions,
        c.capacity_losses,
        c.checkpoints,
        c.request_naks,
        c.enforced_naks,
    );

    if let Some(path) = &opts.json {
        let doc = report.to_json().render();
        let write_result = if path == "-" {
            println!("{doc}");
            Ok(())
        } else {
            std::fs::write(path, format!("{doc}\n"))
        };
        if let Err(e) = write_result {
            eprintln!("--json {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.violations.is_empty() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        if let Some(path) = &opts.artifact {
            match write_artifact(std::path::Path::new(path), &report.violations[0]) {
                Ok(()) => eprintln!(
                    "failure artifact written to {path} (verify with model-check --replay {path})"
                ),
                Err(e) => eprintln!("--artifact {path}: {e}"),
            }
        }
        ExitCode::FAILURE
    }
}
