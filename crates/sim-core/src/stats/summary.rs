//! Streaming summary statistics.

use core::fmt;

/// Online mean/variance/min/max using Welford's algorithm.
///
/// Numerically stable for long runs; O(1) memory.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Summary::record: non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.m2 = m2;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_values() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; unbiased = 4 * 8/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        a.record(1.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_merge_associates_with_sequential(
                xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                split in 0usize..200,
            ) {
                let split = split.min(xs.len());
                let mut all = Summary::new();
                for &x in &xs {
                    all.record(x);
                }
                let mut left = Summary::new();
                let mut right = Summary::new();
                for &x in &xs[..split] {
                    left.record(x);
                }
                for &x in &xs[split..] {
                    right.record(x);
                }
                left.merge(&right);
                prop_assert_eq!(left.count(), all.count());
                prop_assert!((left.mean() - all.mean()).abs() < 1e-6);
                prop_assert!((left.variance() - all.variance()).abs()
                    < 1e-6 * (1.0 + all.variance()));
            }

            #[test]
            fn prop_mean_within_min_max(
                xs in proptest::collection::vec(-1e9f64..1e9, 1..100),
            ) {
                let mut s = Summary::new();
                for &x in &xs {
                    s.record(x);
                }
                prop_assert!(s.mean() >= s.min().unwrap() - 1e-6);
                prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
                prop_assert!(s.variance() >= 0.0);
            }
        }
    }
}
