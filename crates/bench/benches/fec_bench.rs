//! FEC substrate micro-benchmarks: CRC, convolutional encode, Viterbi
//! decode, interleaving, the composed codec, and the channel samplers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fec::{BitBuf, BlockInterleaver, Crc16Ccitt, Crc32, LinkCodec, Viterbi, CCSDS_K7};
use netsim::channel::{ErrorProcess, GilbertElliott, UniformBer};
use sim_core::{Duration, Instant, SeedSplitter};
use std::hint::black_box;

fn crc_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc");
    let data = vec![0xA5u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("crc16_1k", |b| {
        b.iter(|| Crc16Ccitt::checksum(black_box(&data)))
    });
    g.bench_function("crc32_1k", |b| b.iter(|| Crc32::checksum(black_box(&data))));
    g.finish();
}

fn conv_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv");
    let input = BitBuf::from_bytes(&[0x37u8; 128]); // 1024 info bits
    g.throughput(Throughput::Elements(1024));
    g.bench_function("encode_1kbit", |b| {
        b.iter(|| CCSDS_K7.encode(black_box(&input)))
    });
    let v = Viterbi::new(CCSDS_K7);
    let coded = CCSDS_K7.encode(&input);
    g.bench_function("viterbi_decode_1kbit", |b| {
        b.iter(|| v.decode(black_box(&coded)))
    });
    g.finish();
}

fn interleave_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("interleave");
    let il = BlockInterleaver::new(32, 16);
    let data = BitBuf::from_bytes(&vec![0x5Au8; 256]); // 2048 bits
    g.throughput(Throughput::Elements(2048));
    g.bench_function("interleave_2kbit", |b| {
        b.iter(|| il.interleave(black_box(&data)))
    });
    let inter = il.interleave(&data);
    g.bench_function("deinterleave_2kbit", |b| {
        b.iter(|| il.deinterleave(black_box(&inter)))
    });
    g.finish();
}

fn codec_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    let codec = LinkCodec::iframe_default();
    let info = BitBuf::from_bytes(&vec![0x11u8; 256]);
    let coded = codec.encode(&info);
    g.bench_function("encode_256B", |b| b.iter(|| codec.encode(black_box(&info))));
    g.bench_function("decode_256B", |b| {
        b.iter(|| codec.decode(black_box(&coded), info.len()))
    });
    g.finish();
}

fn channel_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    let split = SeedSplitter::new(9);
    g.bench_function("uniform_frame_error", |b| {
        b.iter_batched(
            || UniformBer::new(1e-6, split.stream(0)),
            |mut ch| {
                let mut t = Instant::ZERO;
                for _ in 0..1000 {
                    black_box(ch.frame_error(t, Duration::from_micros(50), 8192));
                    t += Duration::from_micros(55);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("gilbert_frame_error", |b| {
        b.iter_batched(
            || {
                GilbertElliott::new(
                    Duration::from_millis(100),
                    Duration::from_millis(5),
                    1e-7,
                    1e-3,
                    split.stream(1),
                )
            },
            |mut ch| {
                let mut t = Instant::ZERO;
                for _ in 0..1000 {
                    black_box(ch.frame_error(t, Duration::from_micros(50), 8192));
                    t += Duration::from_micros(55);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    crc_benches,
    conv_benches,
    interleave_benches,
    codec_benches,
    channel_benches
);
criterion_main!(benches);
