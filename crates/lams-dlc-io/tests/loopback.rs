//! Loopback smoke test: real UDP, injected drops, in-order delivery,
//! clean shutdown. This is the CI gate for the sans-IO refactor's
//! "second host" — the same machines the simulator drives must finish
//! a lossy transfer over actual sockets.

use lams_dlc_io::{run_loopback, IoConfig};
use std::time::Duration;

#[test]
fn lossy_loopback_delivers_everything_in_order() {
    let cfg = IoConfig {
        sdus: 200,
        payload_len: 64,
        drop_every: 7,
        timeout: Duration::from_secs(60),
        ..IoConfig::default()
    };
    let summary = run_loopback(&cfg).expect("transfer must complete");
    assert_eq!(summary.delivered, 200, "every SDU delivered");
    assert!(
        summary.drops_injected >= 200 / 7,
        "loss injector must actually fire (injected {})",
        summary.drops_injected
    );
    assert!(
        summary.retransmissions >= summary.drops_injected,
        "each dropped frame needs at least one retransmission \
         (drops {} vs retx {})",
        summary.drops_injected,
        summary.retransmissions
    );
}
