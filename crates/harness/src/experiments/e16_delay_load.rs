//! E16 — the delay/throughput tradeoff (ours; paper §1: "there is a
//! tradeoff point between high user throughput and low user delay").
//!
//! Poisson datagram arrivals at offered load ρ; the LAMS sender is (at
//! low BER) an M/D/1 queue with service time `t_f`, so the mean link
//! delay should follow
//!
//! ```text
//! D(ρ) ≈ t_f·ρ / (2(1−ρ))  +  t_f  +  R/2  +  t_proc
//! ```
//!
//! — flat until the knee, then exploding as ρ → 1 while throughput
//! saturates at the line rate. The experiment sweeps ρ and validates the
//! M/D/1 prediction against the simulated protocol.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, ScenarioConfig};
use crate::traffic::Pattern;
use sim_core::Duration;

/// Offered loads swept (fraction of line rate).
pub const LOADS: &[f64] = &[0.2, 0.4, 0.6, 0.8, 0.9];

/// Run E16.
pub fn run(quick: bool) -> ExperimentOutput {
    let fast = sweep_table(
        "300 Mbps link: delay vs load (knee is µs-scale, propagation dominates)",
        300e6,
        if quick { 4_000 } else { 20_000 },
    );
    // On a slow link the service time is milliseconds and the M/D/1 knee
    // dominates propagation — the §1 tradeoff made visible.
    let slow = sweep_table(
        "2 Mbps link: delay vs load (queueing knee dominates)",
        2e6,
        if quick { 1_000 } else { 4_000 },
    );
    ExperimentOutput {
        id: "E16",
        title: "Delay vs offered load — the §1 throughput/delay tradeoff".into(),
        tables: vec![fast, slow],
        traces: vec![],
        notes: vec![
            "expected shape: delay tracks the M/D/1 curve              t_f·ρ/(2(1−ρ)) + t_f + R/2 + t_proc at both line rates; at              300 Mbps the knee is microseconds against 13 ms of              propagation, at 2 Mbps it dominates (the §1 tradeoff point);              sustained throughput matches the offer everywhere — the              tradeoff is pure queueing delay, not lost goodput"
                .into(),
        ],
    }
}

fn sweep_table(title: &str, rate_bps: f64, n: u64) -> Table {
    let mut table = Table::new(
        title,
        &[
            "load",
            "analytic_delay_ms",
            "sim_delay_ms",
            "achieved_throughput_frac",
        ],
    );
    let runs = parallel::map(LOADS.to_vec(), |rho| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.rate_bps = rate_bps;
        cfg.n_packets = n;
        cfg.data_residual_ber = 1e-7;
        cfg.ctrl_residual_ber = 1e-8;
        let t_f = cfg.t_f().as_secs_f64();
        cfg.pattern = Pattern::Cbr {
            interval: Duration::ZERO,
        }; // replaced below
        cfg.pattern = Pattern::Poisson {
            mean: Duration::from_secs_f64(t_f / rho),
        };
        cfg.deadline = Duration::from_secs(300);
        let analytic = t_f * rho / (2.0 * (1.0 - rho))
            + t_f
            + cfg.rtt().as_secs_f64() / 2.0
            + cfg.t_proc.as_secs_f64();
        (run_lams(&cfg), t_f, analytic)
    });
    for (&rho, (r, t_f, analytic)) in LOADS.iter().zip(runs) {
        // Normalise out the finite-run tail: the run's clock includes the
        // final drain (~R + W_cp after the last arrival), which is not
        // steady-state throughput.
        let arrival_span = n as f64 * t_f / rho;
        let sustained = r.delivered_unique as f64 * t_f
            / r.elapsed_s().min(arrival_span + 0.0).max(arrival_span);
        table.row(vec![
            rho.into(),
            (analytic * 1e3).into(),
            (r.delay.mean() * 1e3).into(),
            (sustained / rho).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_delay_follows_mdo_curve() {
        let out = run(true);
        let t = &out.tables[0];
        check_table(t, /*knee_expected=*/ false);
        check_table(&out.tables[1], /*knee_expected=*/ true);
    }

    fn check_table(t: &crate::report::Table, knee_expected: bool) {
        let mut last_sim = 0.0;
        for row in 0..t.len() {
            let analytic = t.value(row, 1).unwrap();
            let sim = t.value(row, 2).unwrap();
            // Delays increase with load...
            assert!(sim >= last_sim * 0.98, "row {row}: delay fell");
            last_sim = sim;
            // ...and track the M/D/1 prediction.
            assert!(
                (sim - analytic).abs() / analytic < 0.2,
                "row {row}: sim {sim} vs M/D/1 {analytic}"
            );
            // Throughput keeps up with the offer.
            let keep_up = t.value(row, 3).unwrap();
            assert!(keep_up > 0.9, "row {row}: throughput collapsed: {keep_up}");
        }
        // The knee: delay at ρ=0.9 exceeds delay at ρ=0.2 — dramatically
        // so when the service time dominates propagation.
        let d_low = t.value(0, 2).unwrap();
        let d_high = t.value(t.len() - 1, 2).unwrap();
        assert!(d_high > d_low, "no tradeoff visible");
        if knee_expected {
            assert!(
                d_high > 1.5 * d_low,
                "slow link: knee should dominate ({d_low} → {d_high})"
            );
        }
    }
}
