//! Conservative sharded execution: the coordinator half.
//!
//! [`run_sharded`] spawns one thread per shard and drives them in
//! supersteps. Each round it grants every shard a window
//!
//! ```text
//! G_s = min(H_s, LB, deadline)      H_s = min over inbound cut links
//!                                         (C_sender + link delay)
//! ```
//!
//! where `C_sender` is the sending shard's committed time. `H_s` is the
//! classic conservative-DES safe horizon: every *future* transmission
//! from a neighbour arrives strictly after its committed time plus the
//! link's propagation delay (serialization adds more), so processing
//! events at or before `H_s` can never be invalidated by a frame still
//! to be routed. `LB` is a lower bound on the run's finish time — for a
//! locally-done shard its `done_since`, otherwise the earliest instant
//! its state can change (next queued event, safe horizon, or earliest
//! pending routed arrival), maximised over shards. Capping grants at
//! `LB` keeps every shard from processing past the instant the whole
//! simulation completes, so the set of processed events — and with it
//! every trace record, counter and collector statistic — is identical
//! at any shard count.
//!
//! Termination mirrors the serial engine's exits: completion at
//! `T* = max(done_since)` once every shard has committed through `T*`
//! with nothing left to route; deadline when every shard has committed
//! to the deadline without completing; stall (queue exhaustion) at the
//! last processed instant; and sender-declared link failure at the
//! failure instant.
//!
//! Tracing: the coordinator emits `RunStarted`/`RunFinished` itself and
//! merges the per-shard buffered records by `(t, node label)` — a
//! stable sort applied at *every* shard count (including one), so the
//! merged stream is byte-identical across counts as long as no two
//! shards emit under the same label at the same instant. Endpoint,
//! collector and per-experiment labels are shard-owned by construction;
//! the shared `"channel"` label (outage drops) is the one caveat,
//! documented in DESIGN.md §11.

use crate::collect::Collect;
use crate::endpoint::{RxEndpoint, TxEndpoint};
use crate::shard::{CutPlan, FinishedShard, Inbound, ShardSim, WindowSummary};
use crate::topology::TopologyError;
use sim_core::{Duration, Instant, QueueProfile, RunTimer};
use std::collections::BTreeMap;
use std::sync::mpsc;
use telemetry::{BufferSink, SuperstepSpan, TraceEvent, TraceRecord};

/// Everything a sharded run hands back: per-shard user outputs (shard
/// order) plus the run-level facts the coordinator owns.
pub struct ShardedOutcome<O> {
    /// One output per shard, produced by the `finish` closure.
    pub outputs: Vec<O>,
    /// Instant the run completed (or the deadline / failure instant).
    pub finished_at: Instant,
    /// True if the deadline fired before completion.
    pub deadline_hit: bool,
    /// All shard queues' profiling snapshots, absorbed into one.
    pub queue: QueueProfile,
    /// Wall-clock seconds the whole sharded run took.
    pub wall_secs: f64,
    /// Superstep accounting aggregated over the run.
    pub shard: ShardProfile,
    /// Every granted window in deterministic grant order — `(round,
    /// shard)` ascending — with wall-clock placement, the timeline
    /// export's raw material.
    pub supersteps: Vec<SuperstepSpan>,
}

/// Aggregated superstep accounting for sharded runs, absorbable across
/// runs like [`QueueProfile`].
///
/// Every counter field is deterministic: byte-identical across repeated
/// runs, and — for [`ShardProfile::events`] — across shard counts too.
/// The per-shard wall vectors and [`ShardProfile::wall_secs`] are
/// determinism-exempt, mirroring the report's `perf`/`profile` blocks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardProfile {
    /// Shard count (max over absorbed runs).
    pub shards: u64,
    /// Coordinator rounds driven (each granting ≥ 1 window).
    pub supersteps: u64,
    /// Windows granted, summed over rounds and shards.
    pub windows: u64,
    /// Granted windows that processed zero events (pure lookahead
    /// stalls: the shard advanced its commit front but had no work).
    pub null_windows: u64,
    /// Events processed: pushes and arrivals only. Wakes are engine
    /// bookkeeping whose count varies with the window schedule, so
    /// excluding them keeps this total invariant across shard counts.
    pub events: u64,
    /// Cross-shard arrivals injected into granted windows.
    pub inbound: u64,
    /// Frames exported across outbound cut links.
    pub outbound: u64,
    /// Σ over windows of `G_s − C_s`: simulated nanoseconds actually
    /// granted past each shard's previous commit front.
    pub granted_ns: u64,
    /// Σ over windows (with a finite safe horizon) of `H_s − C_s`:
    /// simulated nanoseconds the lookahead made available. The gap to
    /// [`ShardProfile::granted_ns`] is grant ceded to the finish-time
    /// lower bound or the deadline.
    pub available_ns: u64,
    /// Critical-cut histogram: for each global cut-link id, how many
    /// windows had their grant bound by that inbound link's
    /// `C_sender + delay` horizon.
    pub critical_cuts: BTreeMap<u64, u64>,
    /// Busy wall-clock nanoseconds per shard (determinism-exempt).
    pub busy_ns: Vec<u64>,
    /// Wall-clock nanoseconds each shard spent blocked waiting for its
    /// next grant (determinism-exempt).
    pub blocked_ns: Vec<u64>,
    /// Wall-clock seconds of the coordinated run (determinism-exempt).
    pub wall_secs: f64,
}

impl ShardProfile {
    /// Parallel efficiency: `Σ busy / (shards × wall)`. Exactly `1.0`
    /// for single-shard runs (there is no coordination to lose time
    /// to — the degenerate window *is* the serial engine).
    pub fn efficiency(&self) -> f64 {
        if self.shards <= 1 {
            return 1.0;
        }
        let wall_ns = self.wall_secs * 1e9;
        if wall_ns <= 0.0 {
            return 1.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        busy as f64 / (self.shards as f64 * wall_ns)
    }

    /// Load-imbalance factor: `max busy / mean busy` over shards
    /// (`1.0` when degenerate — one shard, or no busy time recorded).
    pub fn imbalance(&self) -> f64 {
        let busy: u64 = self.busy_ns.iter().sum();
        if self.busy_ns.len() <= 1 || busy == 0 {
            return 1.0;
        }
        let max = *self.busy_ns.iter().max().expect("nonempty") as f64;
        let mean = busy as f64 / self.busy_ns.len() as f64;
        max / mean
    }

    /// Lookahead utilization: `granted_ns / available_ns` — how much of
    /// the safe horizon the coordinator actually granted. `1.0` when no
    /// horizon-bounded window was granted (single-shard runs).
    pub fn lookahead_utilization(&self) -> f64 {
        if self.available_ns == 0 {
            return 1.0;
        }
        self.granted_ns as f64 / self.available_ns as f64
    }

    /// Fold another run's accounting into this one: counters sum, the
    /// critical-cut histogram merges, per-shard wall vectors add
    /// element-wise (growing to the larger shard count), and `shards`
    /// takes the maximum.
    pub fn absorb(&mut self, other: &ShardProfile) {
        self.shards = self.shards.max(other.shards);
        self.supersteps += other.supersteps;
        self.windows += other.windows;
        self.null_windows += other.null_windows;
        self.events += other.events;
        self.inbound += other.inbound;
        self.outbound += other.outbound;
        self.granted_ns += other.granted_ns;
        self.available_ns += other.available_ns;
        for (&link, &count) in &other.critical_cuts {
            *self.critical_cuts.entry(link).or_insert(0) += count;
        }
        if self.busy_ns.len() < other.busy_ns.len() {
            self.busy_ns.resize(other.busy_ns.len(), 0);
        }
        for (mine, theirs) in self.busy_ns.iter_mut().zip(&other.busy_ns) {
            *mine += theirs;
        }
        if self.blocked_ns.len() < other.blocked_ns.len() {
            self.blocked_ns.resize(other.blocked_ns.len(), 0);
        }
        for (mine, theirs) in self.blocked_ns.iter_mut().zip(&other.blocked_ns) {
            *mine += theirs;
        }
        self.wall_secs += other.wall_secs;
    }
}

enum Cmd<F> {
    Window {
        grant: Instant,
        stop_on_done: bool,
        arrivals: Vec<Inbound<F>>,
    },
    Finish {
        finished_at: Instant,
        deadline_hit: bool,
    },
}

struct ShardDone<O> {
    out: O,
    queue: QueueProfile,
    records: Vec<TraceRecord>,
    /// Wall-clock ns this shard spent waiting for window grants.
    blocked_ns: u64,
    /// The shard thread's span-profiler report, when profiling.
    profile: Option<profile::Report>,
}

enum Up<F, O> {
    Built(usize, Option<TopologyError>),
    /// A window's summary plus its wall placement: start and busy time
    /// in nanoseconds since the run epoch (determinism-exempt).
    Window(usize, WindowSummary<F>, u64, u64),
    Done(usize, Box<ShardDone<O>>),
}

/// Per-thread configuration forwarded to shard threads.
#[derive(Clone, Copy)]
struct ThreadCfg {
    /// Buffer and forward trace records to the caller's global sink.
    forward_traces: bool,
    /// Install a span profiler on the shard thread and ship its report.
    profiled: bool,
    /// Shared wall-clock epoch for window placement.
    epoch: std::time::Instant,
}

/// Coordinator-side view of one shard between rounds.
struct ShardState<F> {
    committed: Instant,
    next_event: Option<Instant>,
    done_since: Option<Instant>,
    failed_at: Option<Instant>,
    last_event_at: Instant,
    /// Routed cut-link arrivals awaiting injection with the next grant.
    pending: Vec<Inbound<F>>,
}

/// Run one simulation split across `plan.n_shards` OS threads.
///
/// `build(s)` constructs shard `s`'s [`ShardSim`] *on its thread* (so
/// `Rc`-based trace handles resolve against the shard's buffered sink);
/// `finish(s, pieces)` turns the finished shard into a `Send`able
/// output on the same thread. Outputs come back in shard order.
///
/// With one shard the same machinery runs the whole simulation in a
/// single window with serial stop-on-done semantics — the degenerate
/// case is the reference the multi-shard runs are checked against.
pub fn run_sharded<T, R, C, O, Build, Fin>(
    plan: &CutPlan,
    deadline: Duration,
    build: Build,
    finish: Fin,
) -> Result<ShardedOutcome<O>, TopologyError>
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
    T::Frame: Send,
    O: Send,
    Build: Fn(usize) -> Result<ShardSim<T, R, C>, TopologyError> + Sync,
    Fin: Fn(usize, FinishedShard<T, R, C>) -> O + Sync,
{
    let n = plan.n_shards.max(1);
    let timer = RunTimer::start();
    let cfg = ThreadCfg {
        forward_traces: telemetry::global_sink().is_some(),
        profiled: profile::enabled(),
        epoch: std::time::Instant::now(),
    };
    let deadline = Instant::ZERO + deadline;

    // Per-shard inbound cut lists for the safe horizon (sender shard,
    // delay, global link id), and the link → destination routing table.
    let mut inbound_cuts: Vec<Vec<(usize, Duration, u64)>> = vec![Vec::new(); n];
    let mut route: Vec<(usize, usize)> = Vec::new(); // (global link, to_shard)
    for c in &plan.cuts {
        inbound_cuts[c.to_shard].push((c.from_shard, c.delay, c.link.0 as u64));
        route.push((c.link.0, c.to_shard));
    }
    route.sort_unstable();

    let (up_tx, up_rx) = mpsc::channel::<Up<T::Frame, O>>();
    let result = std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(n);
        for s in 0..n {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<T::Frame>>();
            cmd_txs.push(cmd_tx);
            let up = up_tx.clone();
            let build = &build;
            let finish = &finish;
            scope.spawn(move || shard_thread(s, cmd_rx, up, build, finish, cfg));
        }
        drop(up_tx);
        coordinate(n, deadline, &inbound_cuts, &route, cmd_txs, up_rx)
    });
    let (outputs, finished_at, deadline_hit, queue, records, mut shard, supersteps) = result?;
    shard.wall_secs = timer.elapsed_secs();

    // Deterministic trace merge: shard-order concatenation plus the
    // coordinator's own superstep records (already in (round, shard)
    // order), stable-sorted by (instant, node label) — the same rule at
    // every shard count — replayed into the caller's sink between the
    // coordinator's own run markers.
    let sim_trace = telemetry::global_handle("sim");
    sim_trace.emit(Instant::ZERO, || TraceEvent::RunStarted);
    if let Some(sink) = telemetry::global_sink() {
        let _merge = profile::span("merge");
        let mut merged: Vec<TraceRecord> = records.into_iter().flatten().collect();
        merged.extend(supersteps.iter().map(|sp| TraceRecord {
            t: Instant::from_nanos(sp.grant_ns),
            node: "coord",
            event: TraceEvent::Superstep {
                round: sp.round,
                shard: sp.shard,
                grant_ns: sp.grant_ns,
                cut_bound: sp.cut_bound,
                critical_link: sp.critical_link,
                events: sp.events,
                inbound: sp.inbound,
                outbound: sp.outbound,
                queue_depth: sp.queue_depth,
            },
        }));
        merged.sort_by(|a, b| (a.t, a.node).cmp(&(b.t, b.node)));
        sink.borrow_mut().record_all(&merged);
    }
    sim_trace.emit(finished_at, || TraceEvent::RunFinished { deadline_hit });

    Ok(ShardedOutcome {
        outputs,
        finished_at,
        deadline_hit,
        queue,
        wall_secs: timer.elapsed_secs(),
        shard,
        supersteps,
    })
}

/// One shard's thread: build (under a buffered trace sink and, when
/// profiling, a thread-local span profiler), serve granted windows with
/// `superstep/exchange/advance` spans and busy/blocked wall accounting,
/// then finish and ship the pieces home.
fn shard_thread<T, R, C, O, Build, Fin>(
    s: usize,
    cmds: mpsc::Receiver<Cmd<T::Frame>>,
    up: mpsc::Sender<Up<T::Frame, O>>,
    build: &Build,
    finish: &Fin,
    cfg: ThreadCfg,
) where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
    Build: Fn(usize) -> Result<ShardSim<T, R, C>, TopologyError>,
    Fin: Fn(usize, FinishedShard<T, R, C>) -> O,
{
    let sink = if cfg.forward_traces {
        let sink = std::rc::Rc::new(std::cell::RefCell::new(BufferSink::new()));
        telemetry::install_global(sink.clone());
        Some(sink)
    } else {
        None
    };
    let uninstall = |sink: &Option<std::rc::Rc<std::cell::RefCell<BufferSink>>>| {
        if sink.is_some() {
            telemetry::uninstall_global();
        }
    };
    // Installed before `build` so the shard's event queue binds to this
    // thread's profiler.
    if cfg.profiled {
        profile::install();
    }
    let prof = profile::current();
    let now_ns = || cfg.epoch.elapsed().as_nanos() as u64;
    let mut sim = match build(s) {
        Ok(sim) => {
            let _ = up.send(Up::Built(s, None));
            sim
        }
        Err(e) => {
            if cfg.profiled {
                let _ = profile::take();
            }
            uninstall(&sink);
            let _ = up.send(Up::Built(s, Some(e)));
            return;
        }
    };
    sim.start();
    let mut blocked_ns = 0u64;
    loop {
        let wait0 = now_ns();
        match cmds.recv() {
            Ok(Cmd::Window {
                grant,
                stop_on_done,
                arrivals,
            }) => {
                let t0 = now_ns();
                blocked_ns += t0 - wait0;
                let summary = {
                    let _step = prof.span("superstep");
                    {
                        let _x = prof.span("exchange");
                        sim.inject(arrivals);
                    }
                    let _a = prof.span("advance");
                    sim.run_window(grant, stop_on_done)
                };
                let busy_ns = now_ns() - t0;
                let _ = up.send(Up::Window(s, summary, t0, busy_ns));
            }
            Ok(Cmd::Finish {
                finished_at,
                deadline_hit,
            }) => {
                let queue = sim.queue_profile();
                let out = finish(s, sim.into_finished(finished_at, deadline_hit));
                let profile = if cfg.profiled { profile::take() } else { None };
                uninstall(&sink);
                let records = sink.map(|b| b.borrow_mut().take()).unwrap_or_default();
                let _ = up.send(Up::Done(
                    s,
                    Box::new(ShardDone {
                        out,
                        queue,
                        records,
                        blocked_ns,
                        profile,
                    }),
                ));
                return;
            }
            // Coordinator dropped the command channel (build error on a
            // sibling shard): exit without finishing.
            Err(_) => {
                if cfg.profiled {
                    let _ = profile::take();
                }
                uninstall(&sink);
                return;
            }
        }
    }
}

type CoordResult<O> = Result<
    (
        Vec<O>,
        Instant,
        bool,
        QueueProfile,
        Vec<Vec<TraceRecord>>,
        ShardProfile,
        Vec<SuperstepSpan>,
    ),
    TopologyError,
>;

/// The superstep loop. Runs on the caller's thread inside the scope.
fn coordinate<F: Send, O: Send>(
    n: usize,
    deadline: Instant,
    inbound_cuts: &[Vec<(usize, Duration, u64)>],
    route: &[(usize, usize)],
    cmd_txs: Vec<mpsc::Sender<Cmd<F>>>,
    up_rx: mpsc::Receiver<Up<F, O>>,
) -> CoordResult<O> {
    // Phase 1: all shards built?
    let mut build_errors = Vec::new();
    for _ in 0..n {
        match up_rx.recv() {
            Ok(Up::Built(_, None)) => {}
            Ok(Up::Built(s, Some(e))) => build_errors.push((s, e)),
            Ok(_) => unreachable!("first message per shard is Built"),
            Err(_) => build_errors.push((n, TopologyError(vec!["shard thread died".into()]))),
        }
    }
    if !build_errors.is_empty() {
        build_errors.sort_by_key(|(s, _)| *s);
        let msgs = build_errors
            .into_iter()
            .flat_map(|(s, e)| e.0.into_iter().map(move |m| format!("shard {s}: {m}")))
            .collect();
        // Dropping cmd_txs unblocks the surviving threads.
        drop(cmd_txs);
        return Err(TopologyError(msgs));
    }

    // Phase 2: supersteps.
    let mut states: Vec<ShardState<F>> = (0..n)
        .map(|_| ShardState {
            committed: Instant::ZERO,
            next_event: Some(Instant::ZERO),
            done_since: None,
            failed_at: None,
            last_event_at: Instant::ZERO,
            pending: Vec::new(),
        })
        .collect();
    let to_shard = |link: usize| -> usize {
        route[route
            .binary_search_by_key(&link, |(l, _)| *l)
            .expect("outbound batch on a non-cut link")]
        .1
    };

    // Superstep accounting: every counter below is a pure function of
    // the grant sequence, which the conservative protocol makes
    // deterministic; the busy/blocked wall vectors are filled from the
    // shards' (determinism-exempt) measurements.
    let mut acc = ShardProfile {
        shards: n as u64,
        busy_ns: vec![0; n],
        blocked_ns: vec![0; n],
        ..ShardProfile::default()
    };
    let mut supersteps: Vec<SuperstepSpan> = Vec::new();
    // Index into `supersteps` of each shard's in-flight window.
    let mut in_flight: Vec<Option<usize>> = vec![None; n];
    let mut round: u64 = 0;

    let (finished_at, deadline_hit) = loop {
        // Exits, in the serial engine's priority order: failure, global
        // completion, queue exhaustion, deadline.
        if let Some(f) = states.iter().filter_map(|st| st.failed_at).min() {
            break (f, false);
        }
        let all_done = states.iter().all(|st| st.done_since.is_some());
        let no_pending = states.iter().all(|st| st.pending.is_empty());
        if all_done && no_pending {
            let t_star = states
                .iter()
                .filter_map(|st| st.done_since)
                .max()
                .expect("all done implies a done_since");
            if states.iter().all(|st| st.committed >= t_star) {
                break (t_star, false);
            }
        }
        let any_events = states.iter().any(|st| st.next_event.is_some());
        if !any_events && no_pending && !all_done {
            // Queue exhaustion without completion: the serial loop just
            // runs out of events.
            let last = states.iter().map(|st| st.last_event_at).max();
            break (last.unwrap_or(Instant::ZERO), false);
        }
        if !all_done && states.iter().all(|st| st.committed >= deadline) {
            break (deadline, true);
        }

        // Safe horizons from the neighbours' committed times, each
        // paired with the global id of the binding inbound link (ties
        // break to the smallest link id); `None` = no inbound cuts,
        // unbounded.
        let horizons: Vec<Option<(Instant, u64)>> = (0..n)
            .map(|s| {
                inbound_cuts[s]
                    .iter()
                    .map(|&(from, delay, link)| (states[from].committed + delay, link))
                    .min()
            })
            .collect();

        // Finish-time lower bound LB: no shard may process past it.
        // `None` = unbounded (some shard can never finish locally; the
        // run ends by deadline or failure, both already capped).
        let mut lb: Option<Instant> = Some(Instant::ZERO);
        for (s, st) in states.iter().enumerate() {
            let term = match st.done_since {
                Some(d) => Some(d),
                None => {
                    let mut t: Option<Instant> = horizons[s].map(|(h, _)| h);
                    let mut cap = |c: Option<Instant>| {
                        t = match (t, c) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, None) => a,
                            (None, b) => b,
                        };
                    };
                    cap(st.next_event);
                    cap(st.pending.iter().map(|a| a.at).min());
                    t
                }
            };
            lb = match (lb, term) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }

        // Grants. With one shard there is nothing to coordinate: grant
        // the deadline and stop at local (= global) done, exactly like
        // the serial loop.
        let mut awaiting = 0usize;
        for (s, st) in states.iter_mut().enumerate() {
            let mut grant = deadline;
            if n > 1 {
                if let Some((h, _)) = horizons[s] {
                    grant = grant.min(h);
                }
                if let Some(lb) = lb {
                    grant = grant.min(lb);
                }
                grant = grant.max(st.committed);
            }
            // A window is useful when it can advance the shard, deliver
            // routed arrivals, or cover events at exactly the committed
            // instant (the t = 0 bootstrap round).
            if grant > st.committed || !st.pending.is_empty() || st.next_event == Some(st.committed)
            {
                let arrivals = {
                    let mut a = std::mem::take(&mut st.pending);
                    a.sort_by_key(|x| (x.at, x.link, x.seq));
                    a
                };
                // The critical cut: the inbound link whose horizon is
                // the binding constraint on this grant.
                let cut = (n > 1)
                    .then_some(horizons[s])
                    .flatten()
                    .filter(|&(h, _)| h == grant);
                acc.windows += 1;
                acc.inbound += arrivals.len() as u64;
                acc.granted_ns += (grant - st.committed).as_nanos();
                if n > 1 {
                    if let Some((h, _)) = horizons[s] {
                        if h > st.committed {
                            acc.available_ns += (h - st.committed).as_nanos();
                        }
                    }
                }
                if let Some((_, link)) = cut {
                    *acc.critical_cuts.entry(link).or_insert(0) += 1;
                }
                in_flight[s] = Some(supersteps.len());
                supersteps.push(SuperstepSpan {
                    round,
                    shard: s as u64,
                    grant_ns: grant.as_nanos(),
                    cut_bound: cut.is_some(),
                    critical_link: cut.map(|(_, l)| l).unwrap_or(0),
                    inbound: arrivals.len() as u64,
                    ..SuperstepSpan::default()
                });
                cmd_txs[s]
                    .send(Cmd::Window {
                        grant,
                        stop_on_done: n == 1,
                        arrivals,
                    })
                    .expect("shard thread alive");
                awaiting += 1;
            }
        }
        assert!(awaiting > 0, "conservative grant loop must make progress");
        acc.supersteps += 1;
        round += 1;

        for _ in 0..awaiting {
            match up_rx.recv().expect("shard thread alive") {
                Up::Window(s, summary, t0_ns, busy_ns) => {
                    let idx = in_flight[s].take().expect("reply matches a granted window");
                    let sp = &mut supersteps[idx];
                    sp.events = summary.events;
                    sp.outbound = summary.outbound.len() as u64;
                    sp.queue_depth = summary.queue_depth;
                    sp.t0_ns = t0_ns;
                    sp.busy_ns = busy_ns;
                    acc.events += summary.events;
                    acc.outbound += summary.outbound.len() as u64;
                    if summary.events == 0 {
                        acc.null_windows += 1;
                    }
                    acc.busy_ns[s] += busy_ns;
                    let outbound = {
                        let st = &mut states[s];
                        st.committed = summary.committed;
                        st.next_event = summary.next_event;
                        st.done_since = summary.done_since;
                        st.failed_at = summary.failed_at;
                        st.last_event_at = st.last_event_at.max(summary.last_event_at);
                        summary.outbound
                    };
                    for a in outbound {
                        states[to_shard(a.link)].pending.push(a);
                    }
                }
                _ => unreachable!("windows answer with Window"),
            }
        }
    };

    // Phase 3: finish.
    for tx in &cmd_txs {
        tx.send(Cmd::Finish {
            finished_at,
            deadline_hit,
        })
        .expect("shard thread alive");
    }
    let mut outputs: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let mut records: Vec<Vec<TraceRecord>> = (0..n).map(|_| Vec::new()).collect();
    let mut queue = QueueProfile::default();
    for _ in 0..n {
        match up_rx.recv().expect("shard thread alive") {
            Up::Done(s, done) => {
                queue.absorb(&done.queue);
                acc.blocked_ns[s] = done.blocked_ns;
                if let Some(report) = &done.profile {
                    // Runs on the caller's thread: fold the shard's
                    // span tree into the profiled run's report.
                    profile::absorb(report);
                }
                outputs[s] = Some(done.out);
                records[s] = done.records;
            }
            _ => unreachable!("finish answers with Done"),
        }
    }
    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every shard reported Done"))
        .collect();
    Ok((
        outputs,
        finished_at,
        deadline_hit,
        queue,
        records,
        acc,
        supersteps,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FrameMeta;
    use crate::link::{Channel, DelayModel, ErrorModel};
    use crate::shard::{Partition, ShardBuilder};
    use crate::topology::{LinkSpec, NodeId, NodeRole, Topology};
    use crate::traffic::{Pattern, TrafficGen};
    use bytes::Bytes;
    use sim_core::SeedSplitter;
    use std::collections::{BTreeMap, VecDeque};

    /// Toy protocol: one frame per SDU, no acknowledgements, no timers.
    struct EchoTx {
        queue: VecDeque<u64>,
        sent: u64,
    }

    impl TxEndpoint for EchoTx {
        type Frame = u64;
        fn start(&mut self, _now: Instant) {}
        fn push(&mut self, id: u64, _payload: Bytes) -> bool {
            self.queue.push_back(id);
            true
        }
        fn poll_transmit(&mut self, _now: Instant) -> Option<u64> {
            let f = self.queue.pop_front();
            if f.is_some() {
                self.sent += 1;
            }
            f
        }
        fn handle_frame(&mut self, _now: Instant, _frame: u64, _ok: bool) {}
        fn on_timeout(&mut self, _now: Instant) {}
        fn poll_timeout(&self) -> Option<Instant> {
            None
        }
        fn buffered(&self) -> usize {
            self.queue.len()
        }
        fn meta(_frame: &u64) -> FrameMeta {
            FrameMeta {
                bytes: 64,
                is_info: true,
            }
        }
        fn drain_holding(&mut self, _out: &mut Vec<f64>) {}
        fn transmissions(&self) -> u64 {
            self.sent
        }
        fn retransmissions(&self) -> u64 {
            0
        }
    }

    struct EchoRx {
        pending: VecDeque<u64>,
    }

    impl RxEndpoint for EchoRx {
        type Frame = u64;
        fn start(&mut self, _now: Instant) {}
        fn handle_frame(&mut self, _now: Instant, frame: u64, ok: bool) {
            if ok {
                self.pending.push_back(frame);
            }
        }
        fn on_timeout(&mut self, _now: Instant) {}
        fn poll_timeout(&self) -> Option<Instant> {
            None
        }
        fn poll_transmit(&mut self, _now: Instant) -> Option<u64> {
            None
        }
        fn poll_deliver(&mut self, _now: Instant) -> Option<(u64, usize)> {
            self.pending.pop_front().map(|id| (id, 64))
        }
        fn occupancy(&self) -> usize {
            self.pending.len()
        }
        fn meta(_frame: &u64) -> FrameMeta {
            FrameMeta {
                bytes: 64,
                is_info: true,
            }
        }
    }

    #[derive(Default)]
    struct CountCollector {
        delivered: u64,
        last_at: Instant,
    }

    impl Collect for CountCollector {
        fn on_push(&mut self, _now: Instant, _id: u64) {}
        fn on_deliver(&mut self, now: Instant, _id: u64) {
            self.delivered += 1;
            self.last_at = now;
        }
        fn on_holding(&mut self, _samples: &[f64]) {}
        fn sample(&mut self, _now: Instant, _tx: usize, _rx: usize, _rate: f64) {}
        fn delivered_unique(&self) -> u64 {
            self.delivered
        }
    }

    fn clean_channel() -> Channel {
        Channel::new(
            1e6,
            DelayModel::Fixed(Duration::from_millis(1)),
            ErrorModel::Clean,
        )
    }

    fn chain_topo(hops: usize) -> Topology {
        let mut t = Topology::default();
        t.roles.push(NodeRole::Source);
        for _ in 1..hops {
            t.roles.push(NodeRole::Relay);
        }
        t.roles.push(NodeRole::Sink);
        for i in 0..hops {
            t.links.push(LinkSpec {
                from: NodeId(i),
                to: NodeId(i + 1),
                dir: "fwd",
            });
        }
        t
    }

    type ChainResult = (Instant, Instant, bool, u64, Vec<u64>);

    /// Run an `hops`-hop forward-only echo chain (hop i = global link i)
    /// split across `shards` shards; `n` SDUs batch-pushed at t = 0.
    /// Returns the deterministic outcome tuple plus the superstep
    /// accounting and raw spans.
    fn run_chain(
        hops: usize,
        shards: usize,
        n: u64,
    ) -> (ChainResult, ShardProfile, Vec<SuperstepSpan>) {
        let topo = chain_topo(hops);
        let part = Partition::contiguous(hops + 1, shards);
        let delays = vec![DelayModel::Fixed(Duration::from_millis(1)); hops];
        let plan = part.plan(&topo, &delays).expect("valid partition");
        let ranges: Vec<(usize, usize)> = (0..part.n_shards())
            .map(|s| {
                let mine = (0..=hops).filter(|&i| part.shard_of(NodeId(i)) == Some(s));
                let lo = mine.clone().min().expect("no shard is empty");
                (lo, mine.max().expect("no shard is empty"))
            })
            .collect();
        let out = run_sharded(
            &plan,
            Duration::from_secs(60),
            |s| {
                let (lo, hi) = ranges[s];
                let mut b: ShardBuilder<EchoTx, EchoRx, CountCollector> = ShardBuilder::new(64);
                // Links ascending by global id: the inbound stub (if
                // any), then this shard's owned hops. Hop `hi` is a cut
                // when node hi+1 lives in the next shard.
                let stub = (lo > 0).then(|| b.cut_in(lo - 1));
                let mut owned = Vec::new(); // (hop, local link)
                for i in lo..=hi.min(hops.saturating_sub(1)) {
                    let l = if i == hi {
                        b.cut_out(i, clean_channel(), "fwd")
                    } else {
                        b.link(i, clean_channel(), "fwd")
                    };
                    owned.push((i, l));
                }
                let mut txs = BTreeMap::new();
                for &(i, l) in &owned {
                    txs.insert(
                        i,
                        b.tx(
                            l,
                            EchoTx {
                                queue: VecDeque::new(),
                                sent: 0,
                            },
                        ),
                    );
                }
                // Receivers for hops terminating in this shard: the stub
                // hop and every non-cut owned hop. Draining right after
                // the arrival link lets a forward catch the same pump
                // pass, like the serial relay wiring.
                let mut rxs = Vec::new(); // (hop, rx, local link)
                if let Some(sl) = stub {
                    rxs.push((
                        lo - 1,
                        b.rx_silent(EchoRx {
                            pending: VecDeque::new(),
                        }),
                        sl,
                    ));
                }
                for &(i, l) in &owned {
                    if i < hi {
                        rxs.push((
                            i,
                            b.rx_silent(EchoRx {
                                pending: VecDeque::new(),
                            }),
                            l,
                        ));
                    }
                }
                for &(j, r, l) in &rxs {
                    b.listen(l, r);
                    b.drain_after(r, l);
                    if j + 1 == hops {
                        let c = b.collector(CountCollector::default());
                        b.expect(c, n);
                        b.deliver(r, c);
                    } else {
                        b.forward(r, txs[&(j + 1)]);
                    }
                }
                if lo == 0 {
                    let gen = TrafficGen::new(Pattern::Batch, n, SeedSplitter::new(1).stream(2));
                    b.source(gen, txs[&0], None, 0);
                }
                b.build()
            },
            |_s, fin| {
                let delivered: u64 = fin.collectors.iter().map(|c| c.delivered).sum();
                let last_at = fin
                    .collectors
                    .iter()
                    .map(|c| c.last_at)
                    .max()
                    .unwrap_or(Instant::ZERO);
                let sent: Vec<u64> = fin.txs.iter().map(|t| t.sent).collect();
                (delivered, last_at, sent)
            },
        )
        .expect("sharded run");
        let delivered: u64 = out.outputs.iter().map(|(d, _, _)| d).sum();
        let last_at = out
            .outputs
            .iter()
            .map(|(_, a, _)| *a)
            .max()
            .expect("at least one shard");
        let sent: Vec<u64> = out.outputs.iter().flat_map(|(_, _, s)| s.clone()).collect();
        (
            (out.finished_at, last_at, out.deadline_hit, delivered, sent),
            out.shard,
            out.supersteps,
        )
    }

    /// Zero a span's determinism-exempt wall fields.
    fn strip_wall(mut sp: SuperstepSpan) -> SuperstepSpan {
        sp.t0_ns = 0;
        sp.busy_ns = 0;
        sp
    }

    #[test]
    fn echo_chain_identical_at_every_shard_count() {
        let hops = 4;
        let n = 9;
        let (serial, serial_profile, _) = run_chain(hops, 1, n);
        for shards in 2..=4 {
            let (sharded, profile, _) = run_chain(hops, shards, n);
            assert_eq!(serial, sharded, "shards={shards} diverged");
            assert_eq!(
                profile.events, serial_profile.events,
                "shards={shards}: event count must be shard-count-invariant"
            );
        }
        let (finished_at, last_at, deadline_hit, delivered, sent) = serial;
        assert_eq!(delivered, n, "all SDUs delivered");
        assert_eq!(sent, vec![n; hops], "every hop forwarded every frame");
        assert!(!deadline_hit);
        assert_eq!(finished_at, last_at, "run completes at the last delivery");
    }

    #[test]
    fn single_shard_profile_is_degenerate() {
        let (hops, n) = (4, 9);
        let (_, profile, supersteps) = run_chain(hops, 1, n);
        assert_eq!(profile.shards, 1);
        assert_eq!(
            profile.supersteps, 1,
            "one window covers the whole serial run"
        );
        assert_eq!(profile.windows, 1);
        assert_eq!(profile.efficiency(), 1.0, "single shard is exactly 1.0");
        assert_eq!(profile.imbalance(), 1.0);
        assert_eq!(profile.lookahead_utilization(), 1.0);
        assert_eq!(profile.available_ns, 0, "no horizon without cuts");
        assert!(profile.critical_cuts.is_empty());
        assert_eq!(
            profile.events,
            n * (hops as u64 + 1),
            "one push plus one arrival per hop per SDU"
        );
        assert_eq!(supersteps.len(), 1);
        assert!(!supersteps[0].cut_bound);
    }

    #[test]
    fn superstep_accounting_deterministic_across_runs() {
        let (out_a, prof_a, spans_a) = run_chain(4, 3, 9);
        let (out_b, prof_b, spans_b) = run_chain(4, 3, 9);
        assert_eq!(out_a, out_b);
        let strip = |sp: Vec<SuperstepSpan>| -> Vec<SuperstepSpan> {
            sp.into_iter().map(strip_wall).collect()
        };
        assert_eq!(
            strip(spans_a),
            strip(spans_b),
            "grant sequence, critical cuts and per-window counts are deterministic"
        );
        for p in [&prof_a, &prof_b] {
            assert!(p.windows >= p.supersteps);
            assert!(p.granted_ns <= p.available_ns + p.granted_ns);
            assert_eq!(p.busy_ns.len(), 3);
            assert_eq!(p.blocked_ns.len(), 3);
        }
        assert_eq!(
            (
                prof_a.supersteps,
                prof_a.windows,
                prof_a.null_windows,
                prof_a.events,
                prof_a.inbound,
                prof_a.outbound,
                prof_a.granted_ns,
                prof_a.available_ns,
                &prof_a.critical_cuts,
            ),
            (
                prof_b.supersteps,
                prof_b.windows,
                prof_b.null_windows,
                prof_b.events,
                prof_b.inbound,
                prof_b.outbound,
                prof_b.granted_ns,
                prof_b.available_ns,
                &prof_b.critical_cuts,
            )
        );
        // Multi-shard runs must see the cut horizons bind at least once,
        // and every critical link must be a real cut link.
        assert!(!prof_a.critical_cuts.is_empty());
        for &link in prof_a.critical_cuts.keys() {
            assert!(link < 4, "critical link {link} is not a chain hop");
        }
    }

    #[test]
    fn shard_profile_absorb_sums_and_merges() {
        let (_, mut a, _) = run_chain(4, 2, 5);
        let (_, b, _) = run_chain(4, 3, 5);
        let expected_events = a.events + b.events;
        let expected_windows = a.windows + b.windows;
        let mut cuts = a.critical_cuts.clone();
        for (&l, &c) in &b.critical_cuts {
            *cuts.entry(l).or_insert(0) += c;
        }
        a.absorb(&b);
        assert_eq!(a.shards, 3, "max of absorbed shard counts");
        assert_eq!(a.events, expected_events);
        assert_eq!(a.windows, expected_windows);
        assert_eq!(a.critical_cuts, cuts);
        assert_eq!(a.busy_ns.len(), 3, "wall vectors grow to the larger run");
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig { cases: 8, ..Default::default() })]

        /// Conservative windows must process exactly the serial event
        /// set: Σ per-superstep events across shards equals the serial
        /// engine's count for the same workload — analytically
        /// `n · (hops + 1)` for the echo chain.
        #[test]
        fn event_totals_invariant_across_shard_counts(
            hops in 2usize..6,
            shards in 2usize..5,
            n in 1u64..20,
        ) {
            let shards = shards.min(hops + 1);
            let (_, serial, _) = run_chain(hops, 1, n);
            let (_, sharded, _) = run_chain(hops, shards, n);
            proptest::prop_assert_eq!(serial.events, n * (hops as u64 + 1));
            proptest::prop_assert_eq!(sharded.events, serial.events);
        }
    }

    #[test]
    fn build_error_surfaces_with_shard_prefix() {
        let plan = CutPlan {
            n_shards: 2,
            cuts: Vec::new(),
        };
        let err = match run_sharded(
            &plan,
            Duration::from_secs(1),
            |_s| -> Result<ShardSim<EchoTx, EchoRx, CountCollector>, TopologyError> {
                Err(TopologyError(vec!["boom".into()]))
            },
            |_s, _fin| (),
        ) {
            Err(e) => e,
            Ok(_) => panic!("build errors must propagate"),
        };
        let msg = err.to_string();
        assert!(msg.contains("shard 0: boom"), "{msg}");
        assert!(msg.contains("shard 1: boom"), "{msg}");
    }
}
