//! Pluggable time sources for protocol hosts.
//!
//! The state machines never read a clock — every entry point takes
//! `now: Instant` — so *hosts* decide where time comes from. This module
//! names that decision: a [`Clock`] yields the current [`Instant`] and
//! can park the calling thread, and every host (the discrete-event
//! simulator, the real-UDP loopback host, the model checker, tests)
//! drives the same machines and the same telemetry pipeline through one
//! of its implementations:
//!
//! * [`ManualClock`] — time advances only when the owner says so. The
//!   simulator's event loop keeps one in lock-step with its event queue,
//!   and tests use it as a *fake clock*: deterministic timer expiry with
//!   no real waiting ([`Clock::sleep`] advances virtual time instead of
//!   parking).
//! * [`WallClock`] — monotonic real time, measured from the clock's
//!   construction so timestamps stay run-local and small (a trace never
//!   carries Unix-epoch nanoseconds unless a host asks for them via
//!   [`WallClock::unix_epoch_nanos`]).
//!
//! Which source produced a trace matters to consumers — wall-clock
//! cadences are only approximately the configured protocol periods,
//! and re-running never reproduces identical timestamps — so streams
//! are tagged with a [`ClockDomain`] (the `trace_header` record).

use crate::time::{Duration, Instant};
use std::cell::Cell;

/// Which kind of time a stream of instants was measured in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// Virtual time: deterministic, reproducible bit-for-bit.
    Sim,
    /// Monotonic wall-clock time: real, never exactly reproducible.
    Wall,
}

impl ClockDomain {
    /// Stable machine-readable name (the `clock_domain` trace field).
    pub fn as_str(self) -> &'static str {
        match self {
            ClockDomain::Sim => "sim",
            ClockDomain::Wall => "wall",
        }
    }

    /// Parse the machine-readable name back.
    pub fn parse(s: &str) -> Option<ClockDomain> {
        match s {
            "sim" => Some(ClockDomain::Sim),
            "wall" => Some(ClockDomain::Wall),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A host's time source.
///
/// `&self` throughout: hosts hand out shared references to one clock
/// (the event loop, the stats emitter, and the trace pipeline all read
/// the same instant stream).
pub trait Clock {
    /// The current instant on this clock's timeline.
    fn now(&self) -> Instant;

    /// Let `d` pass. Wall clocks park the thread; manual clocks advance
    /// their virtual time, so host loops written against [`Clock`] run
    /// unmodified (and instantly) under a fake clock in tests.
    fn sleep(&self, d: Duration);

    /// Which domain this clock's instants live in.
    fn domain(&self) -> ClockDomain;
}

/// Monotonic wall-clock time, zeroed at construction.
#[derive(Clone, Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
    unix_epoch_nanos: u128,
}

impl WallClock {
    /// A wall clock whose `t = 0` is now.
    pub fn new() -> Self {
        WallClock {
            epoch: std::time::Instant::now(),
            unix_epoch_nanos: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
        }
    }

    /// Unix time of this clock's `t = 0`, in nanoseconds — lets a
    /// machine-readable report anchor its run-local timestamps to
    /// calendar time without widening every trace record.
    pub fn unix_epoch_nanos(&self) -> u128 {
        self.unix_epoch_nanos
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(std::time::Duration::from_nanos(d.as_nanos()));
    }

    fn domain(&self) -> ClockDomain {
        ClockDomain::Wall
    }
}

/// Manually-advanced virtual time.
///
/// The simulator keeps one in lock-step with its event queue; tests use
/// it as a fake clock. `sleep` advances the clock instead of parking,
/// so a polling host loop makes progress under manual time without any
/// real delay.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: Cell<u64>,
}

impl ManualClock {
    /// A manual clock starting at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manual clock starting at `t`.
    pub fn at(t: Instant) -> Self {
        ManualClock {
            now_ns: Cell::new(t.as_nanos()),
        }
    }

    /// Move the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.now_ns
            .set(self.now_ns.get().saturating_add(d.as_nanos()));
    }

    /// Jump the clock to `t`. Time never runs backwards: an earlier `t`
    /// is ignored, so event loops can re-assert "it is now the popped
    /// event's instant" without guarding.
    pub fn set(&self, t: Instant) {
        if t.as_nanos() > self.now_ns.get() {
            self.now_ns.set(t.as_nanos());
        }
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.now_ns.get())
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }

    fn domain(&self) -> ClockDomain {
        ClockDomain::Sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_on_request() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Instant::ZERO);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Instant::from_millis(5));
        // sleep is virtual: it advances rather than parking.
        c.sleep(Duration::from_millis(2));
        assert_eq!(c.now(), Instant::from_millis(7));
        assert_eq!(c.domain(), ClockDomain::Sim);
    }

    #[test]
    fn manual_clock_never_runs_backwards() {
        let c = ManualClock::at(Instant::from_millis(10));
        c.set(Instant::from_millis(3));
        assert_eq!(c.now(), Instant::from_millis(10));
        c.set(Instant::from_millis(12));
        assert_eq!(c.now(), Instant::from_millis(12));
    }

    #[test]
    fn wall_clock_is_monotonic_and_run_local() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // Run-local: fresh clocks start near zero, not at the Unix epoch.
        assert!(a < Instant::from_millis(60_000), "{a:?}");
        assert_eq!(c.domain(), ClockDomain::Wall);
    }

    #[test]
    fn domain_names_round_trip() {
        for d in [ClockDomain::Sim, ClockDomain::Wall] {
            assert_eq!(ClockDomain::parse(d.as_str()), Some(d));
        }
        assert_eq!(ClockDomain::parse("lamport"), None);
    }
}
