//! Quickstart: run LAMS-DLC over a noisy 4,000 km laser link.
//!
//! Shows both API levels:
//!  1. the raw sans-IO state machines (`lams_dlc::{Sender, Receiver}`)
//!     driven by hand for a handful of frames;
//!  2. the scenario harness running thousands of frames over a stochastic
//!     channel and reporting throughput/delay/buffer statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use harness::{run_lams, ScenarioConfig};
use lams_dlc::{LamsConfig, PacketId, Receiver, RxStatus, Sender};
use sim_core::{Duration, Instant};

fn main() {
    raw_state_machines();
    scenario_run();
}

/// Drive the protocol objects directly: push three datagrams, carry the
/// frames across an imaginary link, watch the checkpoint acknowledge
/// them.
fn raw_state_machines() {
    println!("== raw state machines ==");
    let cfg = LamsConfig::paper_default();
    let mut tx = Sender::new(cfg.clone());
    let mut rx = Receiver::new(cfg.clone());
    let mut now = Instant::ZERO;
    tx.start(now);
    rx.start(now);

    for i in 0..3u64 {
        tx.push(PacketId(i), Bytes::from(format!("datagram-{i}")))
            .unwrap();
    }

    // Transmit all three I-frames (pacing advances the clock by t_f).
    let one_way = cfg.expected_rtt / 2;
    let mut arrivals = Vec::new();
    while let Some(frame) = {
        // advance past pacing if needed
        if let Some(t) = tx.poll_timeout() {
            now = now.max(t);
        }
        tx.poll_transmit(now)
    } {
        println!("t={now} sender emits {}", frame.kind());
        arrivals.push((now + one_way, frame));
        if tx.queued() == 0 {
            break;
        }
    }
    for (at, frame) in arrivals {
        now = now.max(at);
        rx.handle_frame(now, frame, RxStatus::Ok);
    }
    // Deliveries pop after t_proc, out of order is allowed (none here).
    now += cfg.t_proc * 4;
    while let Some(d) = rx.poll_deliver(now) {
        println!(
            "t={now} receiver delivers packet {} (seq {}): {:?}",
            d.packet_id.0,
            d.seq,
            std::str::from_utf8(&d.payload).unwrap()
        );
    }
    // The periodic checkpoint acknowledges and releases sender buffers.
    rx.on_timeout(now.max(Instant::ZERO + cfg.w_cp));
    now = now.max(Instant::ZERO + cfg.w_cp) + one_way;
    if let Some(cp) = rx.poll_transmit(now) {
        println!("t={now} receiver emits {}", cp.kind());
        tx.handle_frame(now, cp, RxStatus::Ok);
    }
    while let Some(ev) = tx.poll_event() {
        println!("sender event: {ev:?}");
    }
    println!("sender buffer now holds {} frames\n", tx.buffered());
}

/// Run a full scenario: 10,000 × 1 kB datagrams over a 4,000 km, 300 Mbps
/// link with residual BER 1e-6 (data) / 1e-7 (control).
fn scenario_run() {
    println!("== scenario harness ==");
    let mut cfg = ScenarioConfig::paper_default();
    cfg.n_packets = 10_000;
    cfg.deadline = Duration::from_secs(120);
    let report = run_lams(&cfg);
    println!(
        "delivered      : {}/{}",
        report.delivered_unique, report.offered
    );
    println!("lost           : {}", report.lost);
    println!("duplicates     : {}", report.duplicates);
    println!("retransmissions: {}", report.retransmissions);
    println!("elapsed        : {:.3} ms", report.elapsed_s() * 1e3);
    println!("efficiency     : {:.3}", report.efficiency());
    println!("mean delay     : {:.3} ms", report.delay.mean() * 1e3);
    println!("mean holding   : {:.3} ms", report.holding.mean() * 1e3);
    println!(
        "tx buffer      : mean {:.1} / peak {:.0} frames",
        report.tx_buffer_tw.mean_at(report.finished_at),
        report.tx_buffer_tw.peak()
    );
    assert_eq!(report.lost, 0, "LAMS-DLC guarantees zero packet loss");
}
