//! Loopback UDP demo for the sans-IO LAMS-DLC machines.
//!
//! ```text
//! lams-dlc-io [--sdus N] [--payload BYTES] [--drop-every K]
//!             [--corrupt-every K] [--timeout-secs S]
//!             [--stats <path|->] [--stats-interval-ms MS]
//!             [--trace <path>]
//! ```
//!
//! Transfers `N` SDUs from a `lams_dlc::Sender` to a
//! `lams_dlc::Receiver` over two real UDP sockets on 127.0.0.1,
//! dropping every `K`-th information frame before the socket send and
//! marking every `--corrupt-every`-th arriving information frame as
//! payload-corrupted. The transfer runs under the live protocol
//! auditor; `--stats` streams periodic machine-readable
//! `lams-dlc.live/1` snapshots (plus one final document), and
//! `--trace` records the full telemetry stream for offline
//! `trace-tools` replay. Exits non-zero if the transfer fails, the
//! order check trips, or the audit reports findings.

use lams_dlc_io::{run_loopback, IoConfig};
use std::process::ExitCode;

fn parse_args() -> Result<IoConfig, String> {
    let mut cfg = IoConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match flag.as_str() {
            "--sdus" => {
                cfg.sdus = value("--sdus")?
                    .parse()
                    .map_err(|e| format!("--sdus: {e}"))?
            }
            "--payload" => {
                cfg.payload_len = value("--payload")?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?
            }
            "--drop-every" => {
                cfg.drop_every = value("--drop-every")?
                    .parse()
                    .map_err(|e| format!("--drop-every: {e}"))?
            }
            "--corrupt-every" => {
                cfg.corrupt_every = value("--corrupt-every")?
                    .parse()
                    .map_err(|e| format!("--corrupt-every: {e}"))?
            }
            "--timeout-secs" => {
                let secs: u64 = value("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?;
                cfg.timeout = std::time::Duration::from_secs(secs);
            }
            "--stats" => cfg.stats = Some(value("--stats")?),
            "--stats-interval-ms" => {
                let ms: u64 = value("--stats-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--stats-interval-ms: {e}"))?;
                if ms == 0 {
                    return Err("--stats-interval-ms must be positive".into());
                }
                cfg.stats_interval = std::time::Duration::from_millis(ms);
            }
            "--trace" => cfg.trace = Some(value("--trace")?.into()),
            "--help" | "-h" => {
                println!(
                    "usage: lams-dlc-io [--sdus N] [--payload BYTES] \
                     [--drop-every K] [--corrupt-every K] [--timeout-secs S] \
                     [--stats <path|->] [--stats-interval-ms MS] [--trace <path>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // With stats on stdout, the human banner moves to stderr so the
    // JSONL stream stays machine-clean.
    let to_stdout = cfg.stats.as_deref() != Some("-");
    let banner = format!(
        "lams-dlc-io: {} SDUs x {} B over loopback UDP, dropping every {} info frame(s), \
         corrupting every {}",
        cfg.sdus,
        cfg.payload_len,
        if cfg.drop_every == 0 {
            "no".to_string()
        } else {
            format!("{}th", cfg.drop_every)
        },
        if cfg.corrupt_every == 0 {
            "none".to_string()
        } else {
            format!("{}th", cfg.corrupt_every)
        },
    );
    if to_stdout {
        println!("{banner}");
    } else {
        eprintln!("{banner}");
    }
    match run_loopback(&cfg) {
        Ok(s) => {
            let mut lines = format!(
                "delivered {} SDUs in order in {:.1} ms \
                 (datagrams: {} data + {} feedback, retransmissions: {})\n",
                s.delivered,
                s.wall.as_secs_f64() * 1e3,
                s.datagrams_sent,
                s.feedback_sent,
                s.retransmissions,
            );
            for (name, v) in s.counters.entries() {
                lines.push_str(&format!("  {name} = {v}\n"));
            }
            lines.push_str(&format!(
                "audit: {} finding(s) across {} trace record(s)",
                s.audit_findings, s.audit_records
            ));
            if to_stdout {
                println!("{lines}");
            } else {
                eprintln!("{lines}");
            }
            if s.audit_findings > 0 {
                eprintln!("audit failed: {} finding(s)", s.audit_findings);
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("transfer failed: {e}");
            ExitCode::FAILURE
        }
    }
}
