#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # hdlc
//!
//! The baseline ARQ protocols the paper compares LAMS-DLC against:
//!
//! * [`SrSender`] / [`SrReceiver`] — **selective-repeat HDLC** as modelled
//!   in §4: SREJ recovery in the transmission period, timeout recovery
//!   (`t_out = R + α`) in retransmission periods, Poll/Final RR as the
//!   per-window positive acknowledgement, stable sequence numbers, and
//!   strict in-sequence delivery through a window-sized resequencing
//!   buffer;
//! * [`GbnSender`] / [`GbnReceiver`] — **Go-Back-N** (REJ-based), the
//!   variant §2 notes is often preferred under strict reliability despite
//!   discarding every good frame that follows a loss.
//!
//! Both are sans-IO state machines driven exactly like
//! `lams_dlc::{Sender, Receiver}`, so the experiment harness runs all
//! three protocols over identical channel realisations.

pub mod config;
pub mod frame;
pub mod gbn;
pub mod sr_receiver;
pub mod sr_sender;
pub mod wire;

pub use config::HdlcConfig;
pub use frame::{HdlcFrame, RxStatus};
pub use gbn::{GbnReceiver, GbnReceiverStats, GbnSender, GbnSenderStats};
pub use sr_receiver::{SrDelivery, SrReceiver, SrReceiverStats};
pub use sr_sender::{SrSender, SrSenderEvent, SrSenderStats};
