//! The one generic event loop, and the builder that wires a topology
//! into it.
//!
//! Every simulation is four event kinds on one deterministic queue:
//!
//! * **Push** — a traffic source hands an SDU to its sender;
//! * **Arrive** — a frame reaches the far end of a link;
//! * **Sample** — the periodic occupancy sampling tick;
//! * **Wake** — re-poll at the earliest pending protocol instant.
//!
//! After draining every event scheduled for the current instant, the
//! loop pumps: endpoint timers fire, each link's transmitter serves its
//! senders in priority order while idle, receivers drain deliveries at
//! their configured point in the link order (store-and-forward relays
//! must forward into the *next* link's sender before that link is
//! pumped), holding samples flow to collectors, and the completion /
//! failure / wake checks run. The pump order and event insertion order
//! are exactly those of the original hand-rolled point-to-point,
//! duplex and relay loops, so a given seed reproduces their numbers
//! bit-for-bit.

use crate::collect::Collect;
use crate::endpoint::{RxEndpoint, TxEndpoint};
use crate::link::{Channel, Fate};
use crate::topology::{
    ColId, EndpointId, LinkId, LinkSpec, NodeId, NodeRole, RxId, Topology, TopologyError, TxId,
};
use crate::traffic::TrafficGen;
use bytes::Bytes;
use proto_core::{Clock, ManualClock};
use sim_core::{Duration, EventQueue, Instant, QueueProfile, RunTimer};
use telemetry::TraceEvent;

/// One event on the engine's queue, generic over the protocol frame.
pub enum SimEvent<F> {
    /// SDU `id` arrives at the source with this index.
    Push {
        /// Index of the traffic source (registration order).
        source: usize,
        /// SDU id.
        id: u64,
    },
    /// A frame reaches the receiving end of link `link`.
    Arrive {
        /// The link the frame travelled.
        link: usize,
        /// The frame itself.
        frame: F,
        /// True if it survived the channel uncorrupted.
        clean: bool,
    },
    /// Periodic occupancy sampling tick.
    Sample,
    /// Re-poll endpoints at a previously requested instant.
    Wake,
}

/// Where a receiver's completed deliveries go.
enum Delivery {
    /// Terminal: credit the collector (the flow's destination).
    Collect(ColId),
    /// Store-and-forward: push into a co-located sender.
    Forward(TxId),
}

/// A traffic source: a generator feeding one sender, accounted by one
/// collector.
struct SourceSpec {
    gen: TrafficGen,
    tx: TxId,
    col: ColId,
}

/// One collector's periodic sampling subjects.
struct SamplerSpec {
    col: ColId,
    tx: TxId,
    /// Receivers whose worst (max) occupancy is sampled.
    rxs: Vec<RxId>,
}

/// Builder wiring endpoints, links, sources and collectors into a
/// [`Sim`]. Registration order is semantic: links pump in creation
/// order, a link's senders are served in registration order (first
/// registered wins the transmitter), and arrivals are offered to
/// listeners in registration order (all but the last get a clone).
pub struct SimBuilder<T, R, C> {
    topo: Topology,
    channels: Vec<Channel>,
    link_senders: Vec<Vec<EndpointId>>,
    link_listeners: Vec<Vec<EndpointId>>,
    txs: Vec<T>,
    tx_node: Vec<NodeId>,
    tx_link: Vec<LinkId>,
    rxs: Vec<R>,
    rx_node: Vec<NodeId>,
    rx_link: Vec<LinkId>,
    rx_delivery: Vec<Option<Delivery>>,
    rx_drain_after: Vec<Option<LinkId>>,
    collectors: Vec<C>,
    sources: Vec<SourceSpec>,
    samplers: Vec<SamplerSpec>,
    holdings: Vec<(ColId, TxId)>,
    payload_bytes: usize,
    deadline: Duration,
    sample_every: Duration,
}

impl<T, R, C> SimBuilder<T, R, C>
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
{
    /// Start a build: SDU payload size, give-up time, sampling period.
    pub fn new(payload_bytes: usize, deadline: Duration, sample_every: Duration) -> Self {
        SimBuilder {
            topo: Topology::default(),
            channels: Vec::new(),
            link_senders: Vec::new(),
            link_listeners: Vec::new(),
            txs: Vec::new(),
            tx_node: Vec::new(),
            tx_link: Vec::new(),
            rxs: Vec::new(),
            rx_node: Vec::new(),
            rx_link: Vec::new(),
            rx_delivery: Vec::new(),
            rx_drain_after: Vec::new(),
            collectors: Vec::new(),
            sources: Vec::new(),
            samplers: Vec::new(),
            holdings: Vec::new(),
            payload_bytes,
            deadline,
            sample_every,
        }
    }

    /// Add a node with the given role.
    pub fn node(&mut self, role: NodeRole) -> NodeId {
        self.topo.roles.push(role);
        NodeId(self.topo.roles.len() - 1)
    }

    /// Add a directed link `from → to` carried by `channel`. Links pump
    /// in creation order; `dir` labels channel-drop trace records.
    pub fn link(
        &mut self,
        from: NodeId,
        to: NodeId,
        channel: Channel,
        dir: &'static str,
    ) -> LinkId {
        self.topo.links.push(LinkSpec { from, to, dir });
        self.channels.push(channel);
        self.link_senders.push(Vec::new());
        self.link_listeners.push(Vec::new());
        LinkId(self.topo.links.len() - 1)
    }

    /// Host a sending endpoint at `node`, transmitting on `link`.
    /// Registration order on a link is its transmitter priority.
    pub fn tx(&mut self, node: NodeId, link: LinkId, endpoint: T) -> TxId {
        let id = TxId(self.txs.len());
        self.txs.push(endpoint);
        self.tx_node.push(node);
        self.tx_link.push(link);
        if let Some(senders) = self.link_senders.get_mut(link.0) {
            senders.push(EndpointId::Tx(id));
        }
        id
    }

    /// Host a receiving endpoint at `node`, transmitting its control
    /// frames on `link`. Registration order on a link is its
    /// transmitter priority (register the receiver first for
    /// control-frame priority, as full-duplex nodes do).
    pub fn rx(&mut self, node: NodeId, link: LinkId, endpoint: R) -> RxId {
        let id = RxId(self.rxs.len());
        self.rxs.push(endpoint);
        self.rx_node.push(node);
        self.rx_link.push(link);
        if let Some(senders) = self.link_senders.get_mut(link.0) {
            senders.push(EndpointId::Rx(id));
        }
        id
    }

    /// Deliver `link`'s arrivals to `endpoint`. Listeners are offered
    /// frames in registration order; all but the last receive a clone.
    pub fn listen(&mut self, link: LinkId, endpoint: impl Into<EndpointId>) {
        if let Some(listeners) = self.link_listeners.get_mut(link.0) {
            listeners.push(endpoint.into());
        }
    }

    /// Register a collector.
    pub fn collector(&mut self, collector: C) -> ColId {
        self.collectors.push(collector);
        ColId(self.collectors.len() - 1)
    }

    /// Feed `gen`'s SDUs into `tx`, accounted by `col`. Sources push
    /// their first SDU in registration order at t = 0.
    pub fn source(&mut self, gen: TrafficGen, tx: TxId, col: ColId) {
        self.sources.push(SourceSpec { gen, tx, col });
    }

    /// Terminal receiver: `rx`'s deliveries credit `col`.
    pub fn deliver(&mut self, rx: RxId, col: ColId) {
        if let Some(slot) = self.rx_delivery.get_mut(rx.0) {
            *slot = Some(Delivery::Collect(col));
        } else {
            self.rx_delivery.resize_with(rx.0 + 1, || None);
            self.rx_delivery[rx.0] = Some(Delivery::Collect(col));
        }
    }

    /// Store-and-forward receiver: `rx`'s deliveries push into `tx`.
    pub fn forward(&mut self, rx: RxId, tx: TxId) {
        if self.rx_delivery.len() <= rx.0 {
            self.rx_delivery.resize_with(rx.0 + 1, || None);
        }
        self.rx_delivery[rx.0] = Some(Delivery::Forward(tx));
    }

    /// Drain `rx`'s deliveries right after `link` is pumped (default:
    /// after the last link). A relay must drain hop `i`'s receiver
    /// before hop `i + 1`'s link pumps, so forwarded frames catch the
    /// same pump pass.
    pub fn drain_after(&mut self, rx: RxId, link: LinkId) {
        if self.rx_drain_after.len() <= rx.0 {
            self.rx_drain_after.resize_with(rx.0 + 1, || None);
        }
        self.rx_drain_after[rx.0] = Some(link);
    }

    /// Sample `tx`'s buffer and the worst occupancy among `rxs` into
    /// `col` on every sampling tick, in registration order.
    pub fn sample(&mut self, col: ColId, tx: TxId, rxs: Vec<RxId>) {
        self.samplers.push(SamplerSpec { col, tx, rxs });
    }

    /// Drain `tx`'s holding-time samples into `col` each pump pass.
    pub fn holding(&mut self, col: ColId, tx: TxId) {
        self.holdings.push((col, tx));
    }

    /// Validate the wiring against the topology and produce a runnable
    /// [`Sim`].
    pub fn build(mut self) -> Result<Sim<T, R, C>, TopologyError> {
        let mut errors = Vec::new();
        let nodes = self.topo.nodes();
        let links = self.topo.link_count();
        if links == 0 {
            errors.push("no links".to_string());
        }
        for (i, l) in self.topo.links.iter().enumerate() {
            if l.from.0 >= nodes || l.to.0 >= nodes {
                errors.push(format!("link {i} references an unknown node"));
            } else if l.from == l.to {
                errors.push(format!("link {i} is a self-loop"));
            }
        }
        for (i, link) in self.tx_link.iter().enumerate() {
            match self.topo.links.get(link.0) {
                Some(spec) if spec.from == self.tx_node[i] => {}
                Some(_) => errors.push(format!("tx {i} transmits on a link it does not originate")),
                None => errors.push(format!("tx {i} transmits on an unknown link")),
            }
        }
        for (i, link) in self.rx_link.iter().enumerate() {
            match self.topo.links.get(link.0) {
                Some(spec) if spec.from == self.rx_node[i] => {}
                Some(_) => errors.push(format!("rx {i} transmits on a link it does not originate")),
                None => errors.push(format!("rx {i} transmits on an unknown link")),
            }
        }
        for (li, listeners) in self.link_listeners.iter().enumerate() {
            let to = self.topo.links[li].to;
            for ep in listeners {
                let host = match *ep {
                    EndpointId::Tx(t) => self.tx_node.get(t.0).copied(),
                    EndpointId::Rx(r) => self.rx_node.get(r.0).copied(),
                };
                if host != Some(to) {
                    errors.push(format!(
                        "link {li} listener {ep:?} is not hosted at its far end"
                    ));
                }
            }
        }
        self.rx_delivery.resize_with(self.rxs.len(), || None);
        self.rx_drain_after.resize_with(self.rxs.len(), || None);
        let mut deliveries = Vec::with_capacity(self.rxs.len());
        for (i, d) in self.rx_delivery.drain(..).enumerate() {
            match d {
                Some(Delivery::Forward(t)) => {
                    if t.0 >= self.txs.len() {
                        errors.push(format!("rx {i} forwards into an unknown tx"));
                    } else if self.tx_node[t.0] != self.rx_node[i] {
                        errors.push(format!("rx {i} forwards into a tx at a different node"));
                    }
                    deliveries.push(Delivery::Forward(t));
                }
                Some(Delivery::Collect(c)) => {
                    if c.0 >= self.collectors.len() {
                        errors.push(format!("rx {i} delivers to an unknown collector"));
                    }
                    deliveries.push(Delivery::Collect(c));
                }
                None => {
                    errors.push(format!("rx {i} has no delivery target"));
                    deliveries.push(Delivery::Collect(ColId(0)));
                }
            }
        }
        for (i, s) in self.sources.iter().enumerate() {
            if s.tx.0 >= self.txs.len() {
                errors.push(format!("source {i} feeds an unknown tx"));
            }
            if s.col.0 >= self.collectors.len() {
                errors.push(format!("source {i} uses an unknown collector"));
            }
        }
        for (i, s) in self.samplers.iter().enumerate() {
            if s.col.0 >= self.collectors.len() || s.tx.0 >= self.txs.len() {
                errors.push(format!("sampler {i} references unknown ids"));
            }
            if s.rxs.iter().any(|r| r.0 >= self.rxs.len()) {
                errors.push(format!("sampler {i} references an unknown rx"));
            }
        }
        for (i, (c, t)) in self.holdings.iter().enumerate() {
            if c.0 >= self.collectors.len() || t.0 >= self.txs.len() {
                errors.push(format!("holding {i} references unknown ids"));
            }
        }
        // Role consistency: the wiring must exhibit each node's role.
        for (n, role) in self.topo.roles.iter().enumerate() {
            let node = NodeId(n);
            let sourced_tx = |node| {
                self.sources
                    .iter()
                    .any(|s| self.tx_node.get(s.tx.0) == Some(&node))
            };
            let delivering_rx = |node| {
                self.rx_node.iter().enumerate().any(|(i, h)| {
                    *h == node && matches!(deliveries.get(i), Some(Delivery::Collect(_)))
                })
            };
            let forwarding_rx = |node| {
                self.rx_node.iter().enumerate().any(|(i, h)| {
                    *h == node && matches!(deliveries.get(i), Some(Delivery::Forward(_)))
                })
            };
            let ok = match role {
                NodeRole::Source => sourced_tx(node),
                NodeRole::Sink => delivering_rx(node),
                NodeRole::Relay => forwarding_rx(node),
                NodeRole::Duplex => sourced_tx(node) && delivering_rx(node),
            };
            if !ok {
                errors.push(format!("node {n} does not exhibit its {role:?} role"));
            }
        }
        if !errors.is_empty() {
            return Err(TopologyError(errors));
        }
        // Per-link drain lists: receivers with no explicit point drain
        // after the last link (the classic end-of-pump position).
        let mut drains: Vec<Vec<RxId>> = vec![Vec::new(); links];
        let last = LinkId(links - 1);
        for (i, after) in self.rx_drain_after.iter().enumerate() {
            let li = after.unwrap_or(last);
            drains[li.0.min(links - 1)].push(RxId(i));
        }
        Ok(Sim {
            topo: self.topo,
            channels: self.channels,
            link_senders: self.link_senders,
            link_listeners: self.link_listeners,
            txs: self.txs,
            rxs: self.rxs,
            deliveries,
            drains,
            collectors: self.collectors,
            sources: self.sources,
            samplers: self.samplers,
            holdings: self.holdings,
            payload_bytes: self.payload_bytes,
            deadline: self.deadline,
            sample_every: self.sample_every,
        })
    }
}

/// Everything a finished run hands back to its topology builder, which
/// owns report assembly (offered counts, extra stats, perf stamping).
pub struct Outcome<T, R, C> {
    /// The senders, in registration order.
    pub txs: Vec<T>,
    /// The receivers, in registration order.
    pub rxs: Vec<R>,
    /// The collectors, in registration order.
    pub collectors: Vec<C>,
    /// SDUs issued per source, in registration order.
    pub issued: Vec<u64>,
    /// SDUs each source would issue in total, in registration order.
    pub targets: Vec<u64>,
    /// Instant the run completed (or the deadline).
    pub finished_at: Instant,
    /// True if the deadline fired before completion.
    pub deadline_hit: bool,
    /// The event queue's profiling snapshot for this run.
    pub queue: QueueProfile,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
}

/// A validated, runnable simulation. Consume with [`Sim::run`] (fresh
/// queue) or [`Sim::run_in`] (reuse a queue's allocation across runs).
pub struct Sim<T, R, C> {
    topo: Topology,
    channels: Vec<Channel>,
    link_senders: Vec<Vec<EndpointId>>,
    link_listeners: Vec<Vec<EndpointId>>,
    txs: Vec<T>,
    rxs: Vec<R>,
    deliveries: Vec<Delivery>,
    drains: Vec<Vec<RxId>>,
    collectors: Vec<C>,
    sources: Vec<SourceSpec>,
    samplers: Vec<SamplerSpec>,
    holdings: Vec<(ColId, TxId)>,
    payload_bytes: usize,
    deadline: Duration,
    sample_every: Duration,
}

impl<T, R, C> Sim<T, R, C>
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
{
    /// The validated topology this simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Run to completion on a fresh event queue.
    pub fn run(self) -> Outcome<T, R, C> {
        let mut q = EventQueue::new();
        self.run_in(&mut q)
    }

    /// Run to completion, reusing `q`'s allocation (it is reset first).
    /// The returned profile covers this run only.
    pub fn run_in(self, q: &mut EventQueue<SimEvent<T::Frame>>) -> Outcome<T, R, C> {
        q.reset();
        // Self-profiling: resolve this thread's profiler once per run
        // (disabled = one branch per span) and hand the queue its own
        // handle so queue operations attribute under the engine spans.
        let prof = profile::current();
        q.set_profiler(prof.clone());
        let _run_span = prof.span("sim.run");
        let timer = RunTimer::start();
        let trace = telemetry::global_handle("channel");
        // Structural run markers: observers (the live auditor, offline
        // trace analysis) reset per-run state at `run_started` and
        // finalise at `run_finished`, so one JSONL stream can carry any
        // number of runs back to back.
        let sim_trace = telemetry::global_handle("sim");
        sim_trace.emit(Instant::ZERO, || TraceEvent::RunStarted);
        let Sim {
            topo,
            mut channels,
            link_senders,
            link_listeners,
            mut txs,
            mut rxs,
            deliveries,
            drains,
            mut collectors,
            mut sources,
            samplers,
            holdings,
            payload_bytes,
            deadline,
            sample_every,
            ..
        } = self;
        let deadline = Instant::ZERO + deadline;
        let payload = Bytes::from(vec![0u8; payload_bytes]);

        for t in txs.iter_mut() {
            t.start(Instant::ZERO);
        }
        for r in rxs.iter_mut() {
            r.start(Instant::ZERO);
        }
        for (s, src) in sources.iter_mut().enumerate() {
            if let Some((at, id)) = src.gen.next() {
                q.schedule(at, SimEvent::Push { source: s, id });
            }
        }
        q.schedule(Instant::ZERO, SimEvent::Sample);
        // Exactly one Wake is ever pending: re-arming an earlier wake
        // *reschedules* it (O(1) on the slab queue) instead of piling up
        // stale duplicates that would each buy a no-op pump pass.
        let mut wake = Some((Instant::ZERO, q.schedule(Instant::ZERO, SimEvent::Wake)));
        let mut holding_buf: Vec<f64> = Vec::new();
        // Simulated time as a Clock: kept in lock-step with the event
        // queue, so the engine's notion of "now" (and the instant the
        // run finished at) is the same abstraction a wall-clock host
        // uses — a ManualClock never advanced past the last dispatched
        // event (or the deadline, when that cuts the run short).
        let sim_clock = ManualClock::new();
        let mut deadline_hit = false;

        while let Some((now, first_ev)) = q.pop() {
            if now > deadline {
                deadline_hit = true;
                sim_clock.set(deadline);
                break;
            }
            sim_clock.set(now);
            // Drain every event scheduled for this same instant before
            // pumping: simultaneous SDU arrivals (a batch) must all be
            // in the sending buffer before any transmission decision.
            let dispatch_span = prof.span("sim.dispatch");
            let mut ev = first_ev;
            loop {
                match ev {
                    SimEvent::Push { source, id } => {
                        let src = &mut sources[source];
                        collectors[src.col.0].on_push(now, id);
                        txs[src.tx.0].push(id, payload.clone());
                        if let Some((at, nid)) = src.gen.next() {
                            q.schedule(at.max(now), SimEvent::Push { source, id: nid });
                        }
                    }
                    SimEvent::Arrive { link, frame, clean } => {
                        // Single listener — the common wiring — moves the
                        // frame straight through; only genuine fan-out
                        // (duplex links feeding both co-located endpoints)
                        // pays a clone, and only for the non-final copies.
                        match link_listeners[link].as_slice() {
                            [ep] => match *ep {
                                EndpointId::Tx(t) => txs[t.0].handle_frame(now, frame, clean),
                                EndpointId::Rx(r) => rxs[r.0].handle_frame(now, frame, clean),
                            },
                            listeners => {
                                let last = listeners.len().saturating_sub(1);
                                let mut frame = Some(frame);
                                for (k, ep) in listeners.iter().enumerate() {
                                    let f = if k == last {
                                        frame.take().expect("frame consumed once")
                                    } else {
                                        frame.as_ref().expect("frame present").clone()
                                    };
                                    match *ep {
                                        EndpointId::Tx(t) => txs[t.0].handle_frame(now, f, clean),
                                        EndpointId::Rx(r) => rxs[r.0].handle_frame(now, f, clean),
                                    }
                                }
                            }
                        }
                    }
                    SimEvent::Sample => {
                        prof.sample_queue_depth(q.len() as u64);
                        for s in &samplers {
                            let worst_rx = s
                                .rxs
                                .iter()
                                .map(|r| rxs[r.0].occupancy())
                                .max()
                                .unwrap_or(0);
                            collectors[s.col.0].sample(
                                now,
                                txs[s.tx.0].buffered(),
                                worst_rx,
                                txs[s.tx.0].rate(),
                            );
                        }
                        if now + sample_every <= deadline {
                            q.schedule(now + sample_every, SimEvent::Sample);
                        }
                    }
                    SimEvent::Wake => {
                        if wake.is_some_and(|(t, _)| t <= now) {
                            wake = None;
                        }
                    }
                }
                match q.pop_at(now) {
                    Some(next) => ev = next,
                    None => break,
                }
            }
            drop(dispatch_span);

            // Pump: timers, transmissions, deliveries.
            let timer_span = prof.span("sim.pump_timers");
            for t in txs.iter_mut() {
                t.on_timeout(now);
            }
            for r in rxs.iter_mut() {
                r.on_timeout(now);
            }
            drop(timer_span);
            let links_span = prof.span("sim.pump_links");
            for li in 0..channels.len() {
                // Serve the link's senders in priority order while the
                // transmitter is idle (re-checking priority after each
                // frame: a control frame freed mid-pump still wins).
                let tx_span = prof.span("sim.tx_serve");
                while channels[li].idle(now) {
                    let mut next = None;
                    for ep in &link_senders[li] {
                        next = match *ep {
                            EndpointId::Tx(t) => {
                                txs[t.0].poll_transmit(now).map(|f| (T::meta(&f), f))
                            }
                            EndpointId::Rx(r) => {
                                rxs[r.0].poll_transmit(now).map(|f| (R::meta(&f), f))
                            }
                        };
                        if next.is_some() {
                            break;
                        }
                    }
                    let Some((meta, frame)) = next else {
                        break;
                    };
                    match channels[li].transmit(now, meta.bytes, meta.is_info) {
                        Fate::Arrives { at, clean } => {
                            q.schedule(
                                at,
                                SimEvent::Arrive {
                                    link: li,
                                    frame,
                                    clean,
                                },
                            );
                        }
                        Fate::Lost => {
                            let dir = topo.links[li].dir;
                            trace.emit(now, || TraceEvent::ChannelDrop { dir });
                        }
                    }
                }
                drop(tx_span);
                let rx_span = prof.span("sim.rx_drain");
                for r in &drains[li] {
                    while let Some((id, _len)) = rxs[r.0].poll_deliver(now) {
                        match deliveries[r.0] {
                            Delivery::Collect(c) => collectors[c.0].on_deliver(now, id),
                            Delivery::Forward(t) => {
                                txs[t.0].push(id, payload.clone());
                            }
                        }
                    }
                }
                drop(rx_span);
            }
            drop(links_span);
            let collect_span = prof.span("sim.collect");
            for (col, t) in &holdings {
                holding_buf.clear();
                txs[t.0].drain_holding(&mut holding_buf);
                collectors[col.0].on_holding(&holding_buf);
            }

            // "Safe delivery" (§4): the run completes when every flow
            // delivered its offer AND every sender has drained (each
            // frame positively acknowledged).
            let done = sources
                .iter()
                .all(|s| collectors[s.col.0].delivered_unique() >= s.gen.total())
                && txs.iter().all(|t| t.buffered() == 0);
            drop(collect_span);
            if done || txs.iter().any(|t| t.is_failed()) {
                break;
            }

            // Re-arm the wake-up at the earliest pending protocol
            // instant.
            let _wake_span = prof.span("sim.wake");
            let mut want: Option<Instant> = None;
            let mut consider = |c: Option<Instant>| {
                if let Some(t) = c {
                    want = Some(want.map_or(t, |w| w.min(t)));
                }
            };
            for t in &txs {
                consider(t.poll_timeout());
            }
            for r in &rxs {
                consider(r.poll_timeout());
            }
            for c in &channels {
                if !c.idle(now) {
                    consider(Some(c.free_at()));
                }
            }
            if let Some(t) = want {
                // A want at or before `now` means the protocol is
                // blocked on a busy transmitter (the pump already did
                // everything else possible at `now`): waking again at
                // `now` would spin without advancing time, so defer to
                // the earliest channel-free instant — strictly in the
                // future when busy.
                let t = if t > now {
                    Some(t)
                } else {
                    channels
                        .iter()
                        .filter(|c| !c.idle(now))
                        .map(|c| c.free_at())
                        .min()
                };
                if let Some(t) = t {
                    debug_assert!(t > now, "wake must advance time");
                    match wake {
                        Some((at, id)) if t < at => {
                            let id = q.reschedule(id, t).expect("tracked wake is pending");
                            wake = Some((t, id));
                        }
                        None => {
                            wake = Some((t, q.schedule(t, SimEvent::Wake)));
                        }
                        Some(_) => {}
                    }
                }
            }
        }

        let finished_at = sim_clock.now();
        sim_trace.emit(finished_at, || TraceEvent::RunFinished { deadline_hit });

        Outcome {
            issued: sources.iter().map(|s| s.gen.issued()).collect(),
            targets: sources.iter().map(|s| s.gen.total()).collect(),
            txs,
            rxs,
            collectors,
            finished_at,
            deadline_hit,
            queue: q.profile(),
            wall_secs: timer.elapsed_secs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FrameMeta;
    use crate::link::{DelayModel, ErrorModel};
    use crate::traffic::Pattern;
    use sim_core::SeedSplitter;
    use std::collections::VecDeque;

    /// A toy stop-and-wait-free protocol: the sender emits each SDU
    /// once as a `u64` frame; the receiver delivers it and never talks
    /// back. Enough to exercise push/arrive/deliver/done plumbing.
    struct EchoTx {
        queue: VecDeque<u64>,
        sent: u64,
    }

    impl TxEndpoint for EchoTx {
        type Frame = u64;

        fn start(&mut self, _now: Instant) {}
        fn push(&mut self, id: u64, _payload: Bytes) -> bool {
            self.queue.push_back(id);
            true
        }
        fn poll_transmit(&mut self, _now: Instant) -> Option<u64> {
            let f = self.queue.pop_front();
            if f.is_some() {
                self.sent += 1;
            }
            f
        }
        fn handle_frame(&mut self, _now: Instant, _frame: u64, _ok: bool) {}
        fn on_timeout(&mut self, _now: Instant) {}
        fn poll_timeout(&self) -> Option<Instant> {
            None
        }
        fn buffered(&self) -> usize {
            self.queue.len()
        }
        fn meta(_frame: &u64) -> FrameMeta {
            FrameMeta {
                bytes: 64,
                is_info: true,
            }
        }
        fn drain_holding(&mut self, _out: &mut Vec<f64>) {}
        fn transmissions(&self) -> u64 {
            self.sent
        }
        fn retransmissions(&self) -> u64 {
            0
        }
    }

    struct EchoRx {
        pending: VecDeque<u64>,
    }

    impl RxEndpoint for EchoRx {
        type Frame = u64;

        fn start(&mut self, _now: Instant) {}
        fn handle_frame(&mut self, _now: Instant, frame: u64, ok: bool) {
            if ok {
                self.pending.push_back(frame);
            }
        }
        fn on_timeout(&mut self, _now: Instant) {}
        fn poll_timeout(&self) -> Option<Instant> {
            None
        }
        fn poll_transmit(&mut self, _now: Instant) -> Option<u64> {
            None
        }
        fn poll_deliver(&mut self, _now: Instant) -> Option<(u64, usize)> {
            self.pending.pop_front().map(|id| (id, 64))
        }
        fn occupancy(&self) -> usize {
            self.pending.len()
        }
        fn meta(_frame: &u64) -> FrameMeta {
            FrameMeta {
                bytes: 64,
                is_info: true,
            }
        }
    }

    #[derive(Default)]
    struct CountCollector {
        pushed: u64,
        delivered: u64,
        samples: u64,
    }

    impl Collect for CountCollector {
        fn on_push(&mut self, _now: Instant, _id: u64) {
            self.pushed += 1;
        }
        fn on_deliver(&mut self, _now: Instant, _id: u64) {
            self.delivered += 1;
        }
        fn on_holding(&mut self, _samples: &[f64]) {}
        fn sample(&mut self, _now: Instant, _tx: usize, _rx: usize, _rate: f64) {
            self.samples += 1;
        }
        fn delivered_unique(&self) -> u64 {
            self.delivered
        }
    }

    fn clean_channel() -> Channel {
        Channel::new(
            1e6,
            DelayModel::Fixed(Duration::from_millis(1)),
            ErrorModel::Clean,
        )
    }

    fn p2p(n: u64) -> SimBuilder<EchoTx, EchoRx, CountCollector> {
        let mut b = SimBuilder::new(64, Duration::from_secs(60), Duration::from_millis(5));
        let a = b.node(NodeRole::Source);
        let z = b.node(NodeRole::Sink);
        let lf = b.link(a, z, clean_channel(), "fwd");
        let lr = b.link(z, a, clean_channel(), "rev");
        let t = b.tx(
            a,
            lf,
            EchoTx {
                queue: VecDeque::new(),
                sent: 0,
            },
        );
        let r = b.rx(
            z,
            lr,
            EchoRx {
                pending: VecDeque::new(),
            },
        );
        b.listen(lf, r);
        b.listen(lr, t);
        let c = b.collector(CountCollector::default());
        b.source(
            TrafficGen::new(Pattern::Batch, n, SeedSplitter::new(1).stream(2)),
            t,
            c,
        );
        b.deliver(r, c);
        b.sample(c, t, vec![r]);
        b.holding(c, t);
        b
    }

    #[test]
    fn point_to_point_delivers_everything() {
        let out = p2p(10).build().expect("valid").run();
        assert_eq!(out.collectors[0].delivered, 10);
        assert_eq!(out.collectors[0].pushed, 10);
        assert_eq!(out.issued, vec![10]);
        assert_eq!(out.targets, vec![10]);
        assert!(!out.deadline_hit);
        assert!(out.finished_at > Instant::ZERO);
        assert!(out.queue.popped > 0);
    }

    #[test]
    fn queue_reuse_is_equivalent_to_fresh() {
        let fresh = p2p(25).build().expect("valid").run();
        let mut q = EventQueue::new();
        // Dirty the queue, then reuse it: reset must make it pristine.
        q.schedule(Instant::from_millis(3), SimEvent::Wake);
        q.pop();
        let reused = p2p(25).build().expect("valid").run_in(&mut q);
        assert_eq!(fresh.finished_at, reused.finished_at);
        assert_eq!(fresh.queue.scheduled, reused.queue.scheduled);
        assert_eq!(fresh.queue.popped, reused.queue.popped);
    }

    #[test]
    fn build_rejects_unwired_receiver() {
        let mut b: SimBuilder<EchoTx, EchoRx, CountCollector> =
            SimBuilder::new(64, Duration::from_secs(1), Duration::from_millis(5));
        let a = b.node(NodeRole::Source);
        let z = b.node(NodeRole::Sink);
        let lf = b.link(a, z, clean_channel(), "fwd");
        let lr = b.link(z, a, clean_channel(), "rev");
        let t = b.tx(
            a,
            lf,
            EchoTx {
                queue: VecDeque::new(),
                sent: 0,
            },
        );
        let r = b.rx(
            z,
            lr,
            EchoRx {
                pending: VecDeque::new(),
            },
        );
        b.listen(lf, r);
        let c = b.collector(CountCollector::default());
        b.source(
            TrafficGen::new(Pattern::Batch, 1, SeedSplitter::new(1).stream(2)),
            t,
            c,
        );
        // No deliver()/forward() for r: must be rejected.
        let err = b.build().err().expect("unwired rx must not build");
        assert!(err.to_string().contains("no delivery target"), "{err}");
    }

    #[test]
    fn build_rejects_role_mismatch_and_bad_links() {
        let mut b: SimBuilder<EchoTx, EchoRx, CountCollector> =
            SimBuilder::new(64, Duration::from_secs(1), Duration::from_millis(5));
        let a = b.node(NodeRole::Source);
        // Self-loop link, and a Source node with no source feeding it.
        b.link(a, a, clean_channel(), "fwd");
        let err = b.build().err().expect("must not build");
        let msg = err.to_string();
        assert!(msg.contains("self-loop"), "{msg}");
        assert!(msg.contains("Source"), "{msg}");
    }

    #[test]
    fn relay_forwarding_chain_delivers() {
        // 3 nodes, 2 hops: source → relay → sink, with per-hop drain
        // points so forwarded frames catch the next link's pump pass.
        let mut b: SimBuilder<EchoTx, EchoRx, CountCollector> =
            SimBuilder::new(64, Duration::from_secs(60), Duration::from_millis(5));
        let n0 = b.node(NodeRole::Source);
        let n1 = b.node(NodeRole::Relay);
        let n2 = b.node(NodeRole::Sink);
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for (from, to) in [(n0, n1), (n1, n2)] {
            let lf = b.link(from, to, clean_channel(), "fwd");
            let lr = b.link(to, from, clean_channel(), "rev");
            let t = b.tx(
                from,
                lf,
                EchoTx {
                    queue: VecDeque::new(),
                    sent: 0,
                },
            );
            let r = b.rx(
                to,
                lr,
                EchoRx {
                    pending: VecDeque::new(),
                },
            );
            b.listen(lf, r);
            b.listen(lr, t);
            b.drain_after(r, lr);
            txs.push(t);
            rxs.push(r);
        }
        let c = b.collector(CountCollector::default());
        b.source(
            TrafficGen::new(Pattern::Batch, 7, SeedSplitter::new(1).stream(2)),
            txs[0],
            c,
        );
        b.forward(rxs[0], txs[1]);
        b.deliver(rxs[1], c);
        b.sample(c, txs[0], rxs.clone());
        b.holding(c, txs[0]);
        let out = b.build().expect("valid relay").run();
        assert_eq!(out.collectors[0].delivered, 7);
        assert_eq!(out.txs[0].sent, 7);
        assert_eq!(out.txs[1].sent, 7, "relay must forward every frame");
    }
}
