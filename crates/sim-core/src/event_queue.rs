//! The discrete-event scheduler.
//!
//! A classic calendar of `(Instant, payload)` pairs backed by a binary heap.
//! Ties are broken by insertion order (FIFO among simultaneous events) so
//! that runs are deterministic regardless of heap internals — a requirement
//! for reproducible experiments and for paper assumption 8 (deterministic
//! model).

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle returned by [`EventQueue::schedule`]; can be used to cancel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: Instant,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and among
        // equals, the first inserted) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use sim_core::{EventQueue, Instant};
///
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_millis(2), "later");
/// q.schedule(Instant::from_millis(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (Instant::from_millis(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<EventId>,
    now: Instant,
    stats: QueueStats,
}

/// Lifetime counters maintained by [`EventQueue`]; cheap enough to be
/// always-on (a handful of integer updates per operation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct QueueStats {
    scheduled: u64,
    popped: u64,
    cancelled: u64,
    peak_depth: usize,
}

/// A profiling snapshot of an [`EventQueue`], taken with
/// [`EventQueue::profile`] — typically once, after a run drains the
/// queue — and reported in machine-readable run output.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueueProfile {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped (fired).
    pub popped: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Maximum number of pending events at any point.
    pub peak_depth: usize,
    /// Simulated time reached (timestamp of the last pop).
    pub horizon: Instant,
}

impl QueueProfile {
    /// Simulated events processed per wall-clock second.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.popped as f64 / wall_secs
        } else {
            0.0
        }
    }

    /// Fold another profile into this one (summing counters, taking the
    /// max of peaks and horizons) — used when one run drives several
    /// queues.
    pub fn absorb(&mut self, other: &QueueProfile) {
        self.scheduled += other.scheduled;
        self.popped += other.popped;
        self.cancelled += other.cancelled;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.horizon = self.horizon.max(other.horizon);
    }
}

/// Wall-clock stopwatch for computing simulated-events/sec alongside a
/// [`QueueProfile`]. Separate from simulated time on purpose: nothing
/// inside the simulation may observe it.
#[derive(Clone, Copy, Debug)]
pub struct RunTimer {
    started: std::time::Instant,
}

impl RunTimer {
    /// Start timing now.
    pub fn start() -> Self {
        RunTimer {
            started: std::time::Instant::now(),
        }
    }

    /// Wall-clock seconds since `start`.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: Instant::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Return the queue to its just-constructed state — clock at t = 0,
    /// no pending events, fresh counters — while keeping the heap's
    /// allocation. Lets a driver reuse one queue across many runs.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.next_seq = 0;
        self.now = Instant::ZERO;
        self.stats = QueueStats::default();
    }

    /// Snapshot the queue's lifetime profiling counters.
    pub fn profile(&self) -> QueueProfile {
        QueueProfile {
            scheduled: self.stats.scheduled,
            popped: self.stats.popped,
            cancelled: self.stats.cancelled,
            peak_depth: self.stats.peak_depth,
            horizon: self.now,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (t = 0 before the first pop).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// Scheduling in the past is a logic error and panics: the simulated
    /// clock must never run backwards.
    pub fn schedule(&mut self, at: Instant, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            at,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        self.stats.scheduled += 1;
        let depth = self.heap.len() - self.cancelled.len();
        self.stats.peak_depth = self.stats.peak_depth.max(depth);
        id
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// unknown id is a no-op. Returns whether the id was pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: mark and skip at pop time. Guard against marking
        // ids that were never issued or have already fired.
        if id.0 >= self.next_seq {
            return false;
        }
        if self.heap.iter().any(|e| e.id == id) {
            let newly = self.cancelled.insert(id);
            if newly {
                self.stats.cancelled += 1;
            }
            newly
        } else {
            false
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Instant> {
        self.drop_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        self.drop_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.stats.popped += 1;
        Some((entry.at, entry.payload))
    }

    fn drop_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_nanos(30), 3);
        q.schedule(Instant::from_nanos(10), 1);
        q.schedule(Instant::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_nanos(5), ());
        q.schedule(Instant::from_nanos(5), ());
        q.schedule(Instant::from_nanos(9), ());
        let mut last = Instant::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, Instant::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_nanos(10), ());
        q.pop();
        q.schedule(Instant::from_nanos(5), ());
    }

    #[test]
    fn cancel_pending_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_fired_event_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Instant::from_nanos(7)));
    }

    #[test]
    fn profile_counts_operations() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(2), "b");
        q.schedule(Instant::from_nanos(3), "c");
        q.cancel(a);
        q.cancel(a); // double-cancel must not double-count
        while q.pop().is_some() {}
        let p = q.profile();
        assert_eq!(p.scheduled, 3);
        assert_eq!(p.cancelled, 1);
        assert_eq!(p.popped, 2);
        assert_eq!(p.peak_depth, 3);
        assert_eq!(p.horizon, Instant::from_nanos(3));
    }

    #[test]
    fn profile_absorb_merges() {
        let mut a = QueueProfile {
            scheduled: 5,
            popped: 4,
            cancelled: 1,
            peak_depth: 3,
            horizon: Instant::from_millis(2),
        };
        let b = QueueProfile {
            scheduled: 2,
            popped: 2,
            cancelled: 0,
            peak_depth: 7,
            horizon: Instant::from_millis(1),
        };
        a.absorb(&b);
        assert_eq!(a.scheduled, 7);
        assert_eq!(a.popped, 6);
        assert_eq!(a.peak_depth, 7);
        assert_eq!(a.horizon, Instant::from_millis(2));
        assert!(a.events_per_sec(2.0) == 3.0);
        assert!(a.events_per_sec(0.0) == 0.0);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(2), "b");
        q.cancel(a);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), Instant::ZERO);
        assert_eq!(q.profile(), QueueProfile::default());
        // Post-reset behaviour matches a fresh queue, including seq-based
        // FIFO tie-breaking starting over from zero.
        q.schedule(Instant::from_nanos(1), "x");
        q.schedule(Instant::from_nanos(1), "y");
        assert_eq!(q.pop().unwrap().1, "x");
        assert_eq!(q.pop().unwrap().1, "y");
        let p = q.profile();
        assert_eq!((p.scheduled, p.popped), (2, 2));
    }

    #[test]
    fn reschedule_pattern() {
        // A periodic timer: pop, then reschedule relative to now.
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(1), ());
        let mut fired = 0;
        while fired < 5 {
            let (t, ()) = q.pop().unwrap();
            fired += 1;
            if fired < 5 {
                q.schedule(t + Duration::from_millis(1), ());
            }
        }
        assert_eq!(q.now(), Instant::from_millis(5));
    }
}
