//! E5 — sender-buffer occupancy at sustained load: the §4 transparent
//! buffer size. LAMS-DLC's sending buffer plateaus near the analytic
//! `B_LAMS`; SR-HDLC's grows without bound (`B_HDLC = ∞`).

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use crate::traffic::Pattern;
use analysis::buffer::{b_hdlc_growth_rate, b_lams};

/// Run E5.
pub fn run(quick: bool) -> ExperimentOutput {
    let mut cfg = ScenarioConfig::paper_default();
    // CBR at the line rate: one SDU per frame time — the paper's
    // saturated forwarding-node model (incoming rate 1/t_f).
    let t_f = cfg.t_f();
    cfg.pattern = Pattern::Cbr { interval: t_f };
    let seconds = if quick { 0.4 } else { 2.0 };
    cfg.n_packets = (seconds / t_f.as_secs_f64()) as u64;
    cfg.sample_every = sim_core::Duration::from_millis(if quick { 2 } else { 10 });
    // Cut at the end of the loaded phase: the measurement is occupancy
    // *under sustained load*, not the post-arrival drain.
    cfg.deadline = sim_core::Duration::from_secs_f64(seconds);

    let p = cfg.link_params();
    let lams = run_lams(&cfg);
    let sr = run_sr(&cfg);

    let mut table = Table::new(
        "sender-buffer occupancy at saturation (frames)",
        &["protocol", "mean", "peak", "final", "analytic_bound"],
    );
    table.row(vec![
        "lams".into(),
        lams.tx_buffer_tw.mean_at(lams.finished_at).into(),
        lams.tx_buffer_tw.peak().into(),
        lams.tx_buffer.last_value().unwrap_or(0.0).into(),
        b_lams(&p).into(),
    ]);
    table.row(vec![
        "sr-hdlc".into(),
        sr.tx_buffer_tw.mean_at(sr.finished_at).into(),
        sr.tx_buffer_tw.peak().into(),
        sr.tx_buffer.last_value().unwrap_or(0.0).into(),
        f64::INFINITY.into(),
    ]);

    let mut growth = Table::new(
        "SR-HDLC buffer growth (no transparent size exists)",
        &[
            "analytic_growth_frames_per_s",
            "simulated_growth_frames_per_s",
        ],
    );
    let sim_growth = linear_growth(&sr.tx_buffer);
    growth.row(vec![b_hdlc_growth_rate(&p).into(), sim_growth.into()]);

    ExperimentOutput {
        id: "E5",
        title: "Transparent buffer size: B_LAMS finite, B_HDLC = ∞ (paper §4)".into(),
        tables: vec![table, growth],
        traces: vec![lams.tx_buffer.clone(), sr.tx_buffer.clone()],
        notes: vec!["expected shape: the LAMS trace plateaus at ≈ B_LAMS; the \
             SR-HDLC trace climbs linearly for the whole run"
            .into()],
    }
}

/// Least-squares slope of a series (frames per second).
fn linear_growth(s: &sim_core::stats::Series) -> f64 {
    let pts = s.points();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(t, v) in pts {
        let x = t.as_secs_f64();
        sx += x;
        sy += v;
        sxx += x * x;
        sxy += x * v;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-18 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_lams_bounded_hdlc_grows() {
        let out = run(true);
        let t = &out.tables[0];
        let lams_peak = t.value(0, 2).unwrap();
        let bound = t.value(0, 4).unwrap();
        // LAMS peak stays within a small multiple of the analytic
        // transparent size (transients included).
        assert!(
            lams_peak < 4.0 * bound,
            "lams peak {lams_peak} vs analytic bound {bound}"
        );
        let hdlc_final = t.value(1, 3).unwrap();
        let lams_final = t.value(0, 3).unwrap();
        assert!(
            hdlc_final > 3.0 * lams_final.max(1.0),
            "HDLC ({hdlc_final}) must dwarf LAMS ({lams_final}) at saturation"
        );
        // Positive growth slope for HDLC.
        let g = &out.tables[1];
        assert!(g.value(0, 1).unwrap() > 0.0, "HDLC buffer must grow");
    }

    #[test]
    fn linear_growth_of_line() {
        let mut s = sim_core::stats::Series::new("x");
        for i in 0..100u64 {
            s.push(sim_core::Instant::from_millis(i), 3.0 * i as f64 / 1000.0);
        }
        assert!((linear_growth(&s) - 3.0).abs() < 1e-9);
    }
}
