//! Destination-side resequencing and deduplication.
//!
//! Relaxing the in-sequence constraint (§2.3) moves ordering
//! responsibility from every subnet hop to the destination node: "the
//! destination node now has responsibility to provide sequencing" and —
//! because enforced recovery can duplicate frames — deduplication. The
//! [`Resequencer`] reorders datagrams by [`PacketId`] and drops
//! duplicates, exposing the buffer occupancy that §2.3 argues is the
//! (bounded) price of the relaxation.

use crate::frame::PacketId;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Statistics of a resequencer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResequencerStats {
    /// Datagrams released in order.
    pub released: u64,
    /// Duplicate datagrams dropped.
    pub duplicates: u64,
    /// Datagrams accepted out of order (buffered before release).
    pub reordered: u64,
    /// Peak reorder-buffer occupancy.
    pub peak_buffered: usize,
}

/// Orders datagrams by contiguous [`PacketId`] starting from an initial
/// id, dropping duplicates.
pub struct Resequencer {
    next: u64,
    buffer: BTreeMap<u64, Bytes>,
    stats: ResequencerStats,
}

impl Resequencer {
    /// Expect ids starting at `first` (usually 0).
    pub fn new(first: u64) -> Self {
        Resequencer {
            next: first,
            buffer: BTreeMap::new(),
            stats: ResequencerStats::default(),
        }
    }

    /// Offer a datagram; returns every datagram that becomes releasable in
    /// order (possibly empty if `id` is ahead of the contiguous horizon).
    pub fn offer(&mut self, id: PacketId, payload: Bytes) -> Vec<(PacketId, Bytes)> {
        let mut out = Vec::new();
        self.offer_into(id, payload, &mut out);
        out
    }

    /// Allocation-free form of [`Resequencer::offer`]: releasable
    /// datagrams are appended to `out` (not cleared first). The caller
    /// keeps one scratch `Vec` across offers instead of receiving a
    /// fresh one per datagram.
    pub fn offer_into(&mut self, id: PacketId, payload: Bytes, out: &mut Vec<(PacketId, Bytes)>) {
        let id = id.0;
        if id == self.next {
            // In-order fast path — the overwhelmingly common case on a
            // FIFO link. The buffer cannot hold `next` (it would have
            // been drained already), so no duplicate probe is needed and
            // the datagram releases without a reorder-buffer round trip.
            out.push((PacketId(id), payload));
            self.stats.released += 1;
            self.next += 1;
            while let Some(payload) = self.buffer.remove(&self.next) {
                out.push((PacketId(self.next), payload));
                self.stats.released += 1;
                self.next += 1;
            }
        } else if id < self.next || self.buffer.contains_key(&id) {
            self.stats.duplicates += 1;
            return;
        } else {
            self.stats.reordered += 1;
            self.buffer.insert(id, payload);
        }
        // Peak measures datagrams *held* awaiting order, after any release.
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffer.len());
    }

    /// Next id awaited for in-order release.
    pub fn awaiting(&self) -> u64 {
        self.next
    }

    /// Datagrams currently held for reordering.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Statistics.
    pub fn stats(&self) -> ResequencerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn in_order_passthrough() {
        let mut r = Resequencer::new(0);
        for i in 0..5u64 {
            let out = r.offer(PacketId(i), b("x"));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, PacketId(i));
        }
        assert_eq!(r.stats().released, 5);
        assert_eq!(r.stats().reordered, 0);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reorders_gap() {
        let mut r = Resequencer::new(0);
        assert!(r.offer(PacketId(1), b("one")).is_empty());
        assert!(r.offer(PacketId(2), b("two")).is_empty());
        assert_eq!(r.buffered(), 2);
        let out = r.offer(PacketId(0), b("zero"));
        assert_eq!(
            out.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(r.stats().reordered, 2);
        assert_eq!(r.stats().peak_buffered, 2);
        assert_eq!(r.awaiting(), 3);
    }

    #[test]
    fn drops_duplicates() {
        let mut r = Resequencer::new(0);
        r.offer(PacketId(0), b("a"));
        assert!(r.offer(PacketId(0), b("a")).is_empty());
        // Duplicate of a still-buffered out-of-order datagram too.
        r.offer(PacketId(2), b("c"));
        assert!(r.offer(PacketId(2), b("c")).is_empty());
        assert_eq!(r.stats().duplicates, 2);
    }

    #[test]
    fn nonzero_start() {
        let mut r = Resequencer::new(100);
        assert!(r.offer(PacketId(99), b("late")).is_empty());
        assert_eq!(r.stats().duplicates, 1);
        let out = r.offer(PacketId(100), b("ok"));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn interleaved_duplicates_and_gaps() {
        let mut r = Resequencer::new(0);
        let order = [3u64, 1, 1, 0, 3, 2];
        let mut released = Vec::new();
        for id in order {
            for (pid, _) in r.offer(PacketId(id), b("p")) {
                released.push(pid.0);
            }
        }
        assert_eq!(released, vec![0, 1, 2, 3]);
        assert_eq!(r.stats().duplicates, 2);
        assert_eq!(r.stats().released, 4);
    }
}
