//! Online protocol auditor and time-series metrics over the telemetry
//! stream.
//!
//! A [`Monitor`] is a [`telemetry::TraceSink`]: install it (alone or
//! inside a [`telemetry::FanoutSink`] next to a JSONL writer) and every
//! simulation run is audited **live** against the five LAMS-DLC
//! invariants (paper §3):
//!
//! 1. **No-loss delivery** — a buffered frame is released only after a
//!    clean arrival, and every frame resolves by a clean run end.
//! 2. **Monotone wire sequence numbers** — renumbering gives every
//!    (re)transmission a fresh, strictly increasing number.
//! 3. **Checkpoint cadence** — the receiver emits every `W_cp`; sender
//!    silence beyond `C_depth·W_cp` (+slack) implies enforced recovery.
//! 4. **Release on implicit ACK only** — releases happen at the
//!    covering checkpoint's instant, within its covered horizon.
//! 5. **Bounded numbering** — frames resolve (release or renumber)
//!    within the resolving period `R + W_cp/2 + C_depth·W_cp` (+slack),
//!    restarted by enforced recovery.
//!
//! Violations surface as structured [`AuditFinding`]s. Alongside the
//! audit, the monitor maintains fixed-interval windowed series
//! (throughput, NAK rate, retransmissions in flight, buffer occupancy
//! high-water marks) and per-frame lifecycles feeding delivery-latency
//! histograms — summarized per experiment in [`ExperimentMetrics`].
//!
//! The same state machine powers the `trace-tools` binary, which
//! replays a `--trace` JSONL file offline and reconstructs identical
//! verdicts, series, and lifecycles.
//!
//! Everything is keyed by *link*: trace node labels pair up by prefix
//! (`"tx"`/`"rx"`, `"a2b.tx"`/`"a2b.rx"`, `"hop3.tx"`/`"hop3.rx"`).
//! Only links announcing a [`telemetry::TraceEvent::SenderConfig`]
//! (LAMS-DLC senders) are audited; the HDLC baselines reuse sequence
//! numbers by design and pass through unaudited.

#![warn(missing_docs)]

pub mod attribution;
pub mod audit;
pub mod finding;
pub mod lifecycle;
pub mod series;

pub use attribution::{AttributionAgg, LinkAttribution, Phase, PhaseAgg, PHASE_NAMES};
pub use audit::{LinkAuditor, LinkTiming};
pub use finding::{AuditFinding, Findings, Invariant};
pub use lifecycle::FrameLifecycle;
pub use series::{LinkSeries, WindowAcc};

use sim_core::stats::Histogram;
use sim_core::{Duration, Instant};
use std::collections::HashMap;
use telemetry::{Json, Registry, TraceEvent, TraceRecord, TraceSink};

/// Which side of a link a node label names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Tx,
    Rx,
}

/// Map a trace node label onto `(link key, side)`: the label minus its
/// `.tx`/`.rx` suffix is the link key; the bare `"tx"`/`"rx"` pair
/// (point-to-point scenarios) shares the empty key. Labels without a
/// side suffix (`"channel"`, `"collector"`, ...) belong to no link.
fn split_node(node: &'static str) -> Option<(&'static str, Side)> {
    match node {
        "tx" => Some(("", Side::Tx)),
        "rx" => Some(("", Side::Rx)),
        _ => {
            if let Some(p) = node.strip_suffix(".tx") {
                Some((p, Side::Tx))
            } else {
                node.strip_suffix(".rx").map(|p| (p, Side::Rx))
            }
        }
    }
}

/// Monitor knobs.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Width of the fixed-interval metric windows.
    pub window: Duration,
    /// Retain completed [`FrameLifecycle`] records (memory-heavy; the
    /// `trace-tools lifecycle` command turns this on).
    pub keep_lifecycles: bool,
    /// Maximum findings kept verbatim; the rest are counted.
    pub findings_cap: usize,
    /// Extra allowance added to every audited timing bound when the
    /// stream declares a wall clock domain (`trace_header`): real hosts
    /// observe timer-fire and scheduling jitter that virtual time never
    /// has, so strict sim-calibrated deadlines would flag OS latency as
    /// protocol violations. Sim streams are unaffected.
    pub wall_slack: Duration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: Duration::from_millis(100),
            keep_lifecycles: false,
            findings_cap: 256,
            wall_slack: Duration::from_millis(50),
        }
    }
}

/// Per-experiment metric summary built from audited links.
pub struct ExperimentMetrics {
    /// Experiment id (`"e1"`, ...; `""` for runs outside the runner).
    pub id: &'static str,
    /// Simulation runs observed.
    pub runs: u64,
    /// Frame lifecycles completed (sender releases).
    pub frames: u64,
    /// Unique clean deliveries.
    pub delivered: u64,
    /// NAKs observed.
    pub naks: u64,
    /// Retransmissions observed.
    pub retransmissions: u64,
    /// Peak unresolved-frame count across runs (sender occupancy HWM).
    pub max_outstanding: u64,
    /// Audit findings attributed to this experiment's runs.
    pub findings: u64,
    /// Causal latency attribution: per-phase breakdown of delivery
    /// latency plus the resolution-bound cross-check.
    pub attribution: AttributionAgg,
    /// Delivery-latency distribution (first send → clean arrival), s.
    delivery: Histogram,
}

impl ExperimentMetrics {
    fn new(id: &'static str) -> Self {
        ExperimentMetrics {
            id,
            runs: 0,
            frames: 0,
            delivered: 0,
            naks: 0,
            retransmissions: 0,
            max_outstanding: 0,
            findings: 0,
            attribution: AttributionAgg::default(),
            // [0, 5 s) in 1 ms bins: LAMS delivery latencies are a few
            // RTTs at worst; the overflow bucket catches the rest.
            delivery: Histogram::new(0.0, 5.0, 5000),
        }
    }

    /// Delivery-latency quantile in seconds (`None` with no samples).
    pub fn delivery_quantile(&self, q: f64) -> Option<f64> {
        self.delivery.quantile(q)
    }

    /// Delivery-latency samples recorded.
    pub fn delivery_count(&self) -> u64 {
        self.delivery.count()
    }

    /// The report's `metrics` block for this experiment.
    pub fn to_json(&self) -> Json {
        let q = |p: f64| {
            self.delivery
                .quantile(p)
                .map(Json::Num)
                .unwrap_or(Json::Null)
        };
        Json::obj([
            ("runs", self.runs.into()),
            ("frames", self.frames.into()),
            ("delivered", self.delivered.into()),
            ("naks", self.naks.into()),
            ("retransmissions", self.retransmissions.into()),
            ("max_tx_outstanding", self.max_outstanding.into()),
            ("audit_findings", self.findings.into()),
            (
                "delivery_latency",
                Json::obj([
                    ("count", self.delivery.count().into()),
                    ("p50_s", q(0.5)),
                    ("p99_s", q(0.99)),
                ]),
            ),
        ])
    }
}

/// Everything a [`Monitor`] accumulated, drained at end of use.
pub struct MonitorReport {
    /// Kept findings in arrival order (capped; see `total_findings`).
    pub findings: Vec<AuditFinding>,
    /// All findings detected, including capped-out ones.
    pub total_findings: u64,
    /// Per-experiment summaries in first-seen order.
    pub experiments: Vec<ExperimentMetrics>,
    /// Windowed metric lines (JSONL-ready objects) in run order.
    pub window_lines: Vec<Json>,
    /// Completed lifecycles (only with `keep_lifecycles`).
    pub lifecycles: Vec<FrameLifecycle>,
    /// Monitor-side counters (`monitor.attribution.incomplete`, ...).
    pub counters: Registry,
    /// Trace records observed.
    pub records: u64,
}

impl MonitorReport {
    /// An empty report (for runs that observed nothing).
    pub fn empty() -> Self {
        MonitorReport {
            findings: Vec::new(),
            total_findings: 0,
            experiments: Vec::new(),
            window_lines: Vec::new(),
            lifecycles: Vec::new(),
            counters: Registry::new(),
            records: 0,
        }
    }

    /// Fold another report into this one (item-order merge).
    pub fn absorb(&mut self, mut other: MonitorReport) {
        self.findings.append(&mut other.findings);
        self.total_findings += other.total_findings;
        self.experiments.append(&mut other.experiments);
        self.window_lines.append(&mut other.window_lines);
        self.lifecycles.append(&mut other.lifecycles);
        self.counters.absorb(&other.counters);
        self.records += other.records;
    }

    /// The experiment summary for `id`, if any run carried it.
    pub fn experiment(&self, id: &str) -> Option<&ExperimentMetrics> {
        self.experiments.iter().find(|e| e.id == id)
    }
}

/// A point-in-time view of the current run's audited links, taken
/// mid-run without disturbing any audit or series state — the data
/// behind a live `--stats` snapshot on a wall-clock host.
pub struct LiveSnapshot {
    /// Findings so far (monitor lifetime, capped-out ones included).
    pub findings: u64,
    /// Trace records observed so far.
    pub records: u64,
    /// Frame lifecycles completed (sender releases) this run.
    pub frames: u64,
    /// Unique clean deliveries this run.
    pub delivered: u64,
    /// NAKs observed this run.
    pub naks: u64,
    /// Retransmissions observed this run.
    pub retransmissions: u64,
    /// Peak unresolved-frame count (sender occupancy HWM) this run.
    pub max_outstanding: u64,
    /// Windowed series lines accumulated so far (all links, key order).
    pub series: Vec<Json>,
    /// Delivery latencies recorded so far, seconds, sorted ascending.
    latencies: Vec<f64>,
}

impl LiveSnapshot {
    /// Delivery-latency samples in the snapshot.
    pub fn delivery_count(&self) -> u64 {
        self.latencies.len() as u64
    }

    /// Delivery-latency quantile in seconds (nearest-rank over the
    /// samples so far; `None` with no samples).
    pub fn delivery_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.latencies.len() as f64).ceil() as usize)
            .clamp(1, self.latencies.len());
        Some(self.latencies[rank - 1])
    }
}

/// The live auditor/metrics engine. Implements [`TraceSink`]; feed it
/// records through the global sink, a fanout, or [`Monitor::observe`].
pub struct Monitor {
    cfg: MonitorConfig,
    seen: u64,
    findings: Findings,
    run_base: u64,
    experiments: Vec<ExperimentMetrics>,
    cur_exp: usize,
    experiment_id: &'static str,
    run_ordinal: u64,
    links: HashMap<&'static str, LinkAuditor>,
    /// Per-link latency attribution, rebuilt each run next to `links`.
    attrs: HashMap<&'static str, LinkAttribution>,
    /// Resequencer holds observed during the current run (collector
    /// records; the collector node belongs to no link).
    run_reseq: PhaseAgg,
    counters: Registry,
    window_lines: Vec<Json>,
    lifecycles: Vec<FrameLifecycle>,
    /// Clock domain announced by the stream's `trace_header`, if any.
    clock_domain: Option<&'static str>,
    /// Self-profiling handle, resolved at construction (create the
    /// monitor after `profile::install` to attribute audit time).
    prof: profile::Prof,
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            cfg,
            seen: 0,
            findings: Findings::with_cap(cfg.findings_cap),
            run_base: 0,
            experiments: Vec::new(),
            cur_exp: 0,
            experiment_id: "",
            run_ordinal: 0,
            links: HashMap::new(),
            attrs: HashMap::new(),
            run_reseq: PhaseAgg::default(),
            counters: Registry::new(),
            window_lines: Vec::new(),
            lifecycles: Vec::new(),
            clock_domain: None,
            prof: profile::current(),
        }
    }

    /// Clock domain announced by the stream's `trace_header` record:
    /// `"sim"` or `"wall"`. `None` for streams without one (simulator
    /// traces predating the header, which are implicitly `"sim"`).
    pub fn clock_domain(&self) -> Option<&'static str> {
        self.clock_domain
    }

    /// Findings detected so far (including capped-out ones).
    pub fn total_findings(&self) -> u64 {
        self.findings.total()
    }

    /// The kept findings so far.
    pub fn findings(&self) -> &[AuditFinding] {
        self.findings.list()
    }

    /// Records observed so far.
    pub fn records(&self) -> u64 {
        self.seen
    }

    fn experiment_slot(&mut self, id: &'static str) -> usize {
        match self.experiments.iter().position(|e| e.id == id) {
            Some(i) => i,
            None => {
                self.experiments.push(ExperimentMetrics::new(id));
                self.experiments.len() - 1
            }
        }
    }

    fn begin_run(&mut self) {
        self.cur_exp = self.experiment_slot(self.experiment_id);
        self.links.clear();
        self.attrs.clear();
        self.run_reseq = PhaseAgg::default();
        self.run_base = self.findings.total();
    }

    fn finish_run(&mut self, t: Instant, deadline_hit: bool) {
        let _span = self.prof.span("monitor.rebuild");
        self.cur_exp = self.experiment_slot(self.experiment_id);
        let mut keys: Vec<&'static str> = self.links.keys().copied().collect();
        keys.sort_unstable();
        let run = self.run_ordinal;
        for key in keys {
            let la = self.links.get_mut(key).expect("key from map");
            la.on_run_finished(t, deadline_hit, &mut self.findings);
            if !la.audited() {
                continue;
            }
            let exp = &mut self.experiments[self.cur_exp];
            exp.frames += la.tally.frames;
            exp.delivered += la.tally.delivered;
            exp.naks += la.tally.naks;
            exp.retransmissions += la.tally.retransmissions;
            exp.max_outstanding = exp.max_outstanding.max(la.tally.max_outstanding);
            for &l in &la.tally.latencies {
                exp.delivery.record(l);
            }
            self.window_lines
                .extend(la.series.drain_lines(exp.id, run, key));
            self.lifecycles.append(&mut la.lifecycles);
        }
        let mut akeys: Vec<&'static str> = self.attrs.keys().copied().collect();
        akeys.sort_unstable();
        for key in akeys {
            let at = self.attrs.get_mut(key).expect("key from map");
            at.on_run_finished();
            if !at.armed() {
                continue;
            }
            if at.agg.incomplete > 0 {
                self.counters
                    .add("monitor.attribution.incomplete", at.agg.incomplete as f64);
            }
            self.experiments[self.cur_exp].attribution.absorb(&at.agg);
        }
        let exp = &mut self.experiments[self.cur_exp];
        exp.attribution.reseq.absorb(&self.run_reseq);
        self.run_reseq = PhaseAgg::default();
        exp.runs += 1;
        exp.findings += self.findings.total() - self.run_base;
        self.run_base = self.findings.total();
        self.links.clear();
        self.attrs.clear();
        self.run_ordinal += 1;
    }

    /// Process one trace record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.seen += 1;
        let t = rec.t;
        match rec.event {
            TraceEvent::ExperimentStarted { id } => {
                self.experiment_id = id;
                self.cur_exp = self.experiment_slot(id);
                // Run ordinals restart per experiment, so an offline
                // replay of a whole-suite trace numbers runs exactly
                // like the per-experiment live monitors did.
                self.run_ordinal = 0;
            }
            TraceEvent::TraceHeader { clock_domain } => {
                self.clock_domain = Some(clock_domain);
            }
            TraceEvent::RunStarted => self.begin_run(),
            TraceEvent::RunFinished { deadline_hit } => self.finish_run(t, deadline_hit),
            // Resequencer holds come from the collector node, which
            // belongs to no link; they aggregate at experiment level.
            TraceEvent::ReseqHold { held_ns, .. } => self.run_reseq.add(held_ns),
            ref event => {
                let Some((key, side)) = split_node(rec.node) else {
                    return;
                };
                let audit_span = self.prof.span("monitor.audit");
                let (window, keep) = (self.cfg.window, self.cfg.keep_lifecycles);
                let exp_id = self.experiment_id;
                let la = self
                    .links
                    .entry(key)
                    .or_insert_with(|| LinkAuditor::new(key, exp_id, window, keep));
                let out = &mut self.findings;
                match (side, event) {
                    (
                        Side::Tx,
                        &TraceEvent::SenderConfig {
                            w_cp_ns,
                            rtt_ns,
                            cp_timeout_ns,
                            resolving_ns,
                            failure_ns,
                            ..
                        },
                    ) => {
                        // Wall-clock streams carry timer-fire and socket
                        // jitter virtual time never has; widen every
                        // audited bound so the invariants check protocol
                        // logic, not OS scheduling. Sim streams keep the
                        // exact bounds.
                        let slack = if self.clock_domain == Some("wall") {
                            self.cfg.wall_slack.as_nanos()
                        } else {
                            0
                        };
                        la.on_sender_config(
                            t,
                            rec.node,
                            LinkTiming {
                                w_cp: Duration::from_nanos(w_cp_ns + slack),
                                cp_timeout: Duration::from_nanos(cp_timeout_ns + slack),
                                rtt: Duration::from_nanos(rtt_ns),
                                resolving: Duration::from_nanos(resolving_ns + slack),
                                failure: Duration::from_nanos(failure_ns + slack),
                            },
                        )
                    }
                    (Side::Tx, &TraceEvent::IFrameTx { seq, retx, .. }) => {
                        la.on_tx(t, rec.node, seq, retx, out)
                    }
                    (Side::Tx, &TraceEvent::CheckpointReceived { index, covered, .. }) => {
                        la.on_cp_rx(t, rec.node, index, covered, out)
                    }
                    (Side::Tx, &TraceEvent::Renumbered { old_seq, new_seq }) => {
                        la.on_renumbered(t, rec.node, old_seq, new_seq, out)
                    }
                    (Side::Tx, &TraceEvent::EnforcedRecoveryStarted { .. }) => {
                        la.on_enforced_start(t)
                    }
                    (Side::Tx, &TraceEvent::EnforcedRecoveryResolved) => la.on_enforced_end(t),
                    (Side::Tx, &TraceEvent::StopGo { stop: true }) => la.on_stop(t),
                    (Side::Tx, &TraceEvent::BufferRelease { seq, .. }) => {
                        la.on_release(t, rec.node, seq, out)
                    }
                    (Side::Tx, &TraceEvent::LinkFailed) => la.on_link_failed(),
                    (Side::Rx, &TraceEvent::IFrameRx { seq, clean, .. }) => la.on_rx(t, seq, clean),
                    (Side::Rx, &TraceEvent::CheckpointEmitted { index, .. }) => {
                        la.on_cp_emit(t, rec.node, index, out)
                    }
                    (Side::Rx, &TraceEvent::Nak { seq, .. }) => la.on_nak(t, seq),
                    _ => {}
                }
                drop(audit_span);
                // Second pass: the latency-attribution layer consumes
                // the same record with its own per-link state machine.
                let _attr_span = self.prof.span("monitor.attribution");
                let at = self
                    .attrs
                    .entry(key)
                    .or_insert_with(|| LinkAttribution::new(exp_id));
                let out = &mut self.findings;
                match (side, event) {
                    (
                        Side::Tx,
                        &TraceEvent::SenderConfig {
                            w_cp_ns,
                            rtt_ns,
                            c_depth,
                            ..
                        },
                    ) => at.on_sender_config(rec.node, w_cp_ns, rtt_ns, c_depth),
                    (Side::Tx, &TraceEvent::IFrameTx { seq, retx, .. }) => at.on_tx(t, seq, retx),
                    (Side::Tx, &TraceEvent::Renumbered { old_seq, new_seq }) => {
                        at.on_renumbered(old_seq, new_seq)
                    }
                    (
                        Side::Tx,
                        &TraceEvent::RetxCause {
                            seq,
                            cause,
                            cp_index,
                        },
                    ) => at.on_retx_cause(t, seq, cause, cp_index, out),
                    (Side::Tx, &TraceEvent::CheckpointReceived { index, .. }) => {
                        at.on_cp_rx(t, index)
                    }
                    (Side::Tx, &TraceEvent::StopGo { stop }) => at.on_stop_go(t, stop),
                    (Side::Tx, &TraceEvent::EnforcedRecoveryStarted { .. }) => {
                        at.on_enforced_start(t)
                    }
                    (Side::Tx, &TraceEvent::EnforcedRecoveryResolved) => at.on_enforced_end(t),
                    (Side::Tx, &TraceEvent::BufferRelease { seq, .. }) => at.on_release(seq),
                    (Side::Rx, &TraceEvent::IFrameRx { seq, clean, .. }) => {
                        at.on_rx(t, seq, clean, out)
                    }
                    (Side::Rx, &TraceEvent::CheckpointEmitted { index, .. }) => {
                        at.on_cp_emit(t, index)
                    }
                    (Side::Rx, &TraceEvent::Nak { seq, cp_index }) => at.on_nak(t, seq, cp_index),
                    _ => {}
                }
            }
        }
    }

    /// Parse one JSONL trace line and process it.
    pub fn observe_line(&mut self, line: &str) -> Result<(), String> {
        let rec = telemetry::parse_line(line)?;
        self.observe(&rec);
        Ok(())
    }

    /// A point-in-time view of the current (unfinished) run: link
    /// tallies, windowed series so far, and delivery latencies, summed
    /// over audited links in key order. Reading is non-destructive —
    /// the run keeps accumulating and `finish_run` folds as usual.
    pub fn live_snapshot(&self) -> LiveSnapshot {
        let mut snap = LiveSnapshot {
            findings: self.findings.total(),
            records: self.seen,
            frames: 0,
            delivered: 0,
            naks: 0,
            retransmissions: 0,
            max_outstanding: 0,
            series: Vec::new(),
            latencies: Vec::new(),
        };
        let mut keys: Vec<&'static str> = self.links.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let la = &self.links[key];
            if !la.audited() {
                continue;
            }
            snap.frames += la.tally.frames;
            snap.delivered += la.tally.delivered;
            snap.naks += la.tally.naks;
            snap.retransmissions += la.tally.retransmissions;
            snap.max_outstanding = snap.max_outstanding.max(la.tally.max_outstanding);
            snap.latencies.extend_from_slice(&la.tally.latencies);
            snap.series.extend(
                la.series
                    .peek_lines(self.experiment_id, self.run_ordinal, key),
            );
        }
        snap.latencies
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        snap
    }

    /// Drain everything accumulated into a report, resetting the
    /// monitor.
    pub fn take_report(&mut self) -> MonitorReport {
        let total_findings = self.findings.total();
        self.run_base = 0;
        MonitorReport {
            findings: self.findings.take(),
            total_findings,
            experiments: std::mem::take(&mut self.experiments),
            window_lines: std::mem::take(&mut self.window_lines),
            lifecycles: std::mem::take(&mut self.lifecycles),
            counters: std::mem::replace(&mut self.counters, Registry::new()),
            records: std::mem::replace(&mut self.seen, 0),
        }
    }
}

impl TraceSink for Monitor {
    fn record(&mut self, rec: &TraceRecord) {
        self.observe(rec);
    }

    fn len(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn rec(t_ns: u64, node: &'static str, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t: Instant::from_nanos(t_ns),
            node,
            event,
        }
    }

    fn sender_config() -> TraceEvent {
        TraceEvent::SenderConfig {
            w_cp_ns: 5 * MS,
            c_depth: 3,
            rtt_ns: 27 * MS,
            cp_timeout_ns: 16 * MS,
            resolving_ns: 60 * MS,
            failure_ns: 60 * MS,
        }
    }

    /// A minimal clean run: one frame sent, delivered, covered by a
    /// checkpoint, released at the checkpoint instant.
    fn clean_run() -> Vec<TraceRecord> {
        vec![
            rec(0, "sim", TraceEvent::RunStarted),
            rec(0, "tx", sender_config()),
            rec(
                MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 1,
                    retx: false,
                    len: 1024,
                },
            ),
            rec(
                15 * MS,
                "rx",
                TraceEvent::IFrameRx {
                    seq: 1,
                    clean: true,
                    len: 1024,
                },
            ),
            rec(
                16 * MS,
                "rx",
                TraceEvent::CheckpointEmitted {
                    index: 1,
                    covered: 1,
                    naks: 0,
                    enforced: false,
                    stop: false,
                },
            ),
            rec(
                30 * MS,
                "tx",
                TraceEvent::CheckpointReceived {
                    index: 1,
                    covered: 1,
                    naks: 0,
                },
            ),
            rec(
                30 * MS,
                "tx",
                TraceEvent::BufferRelease {
                    seq: 1,
                    held_ns: 29 * MS,
                    cp_index: 1,
                },
            ),
            rec(
                31 * MS,
                "sim",
                TraceEvent::RunFinished {
                    deadline_hit: false,
                },
            ),
        ]
    }

    fn feed(records: &[TraceRecord]) -> Monitor {
        let mut m = Monitor::new(MonitorConfig::default());
        for r in records {
            m.observe(r);
        }
        m
    }

    #[test]
    fn clean_run_produces_no_findings_and_full_metrics() {
        let mut m = feed(&clean_run());
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
        let report = m.take_report();
        let exp = &report.experiments[0];
        assert_eq!(exp.id, "");
        assert_eq!(exp.runs, 1);
        assert_eq!(exp.frames, 1);
        assert_eq!(exp.delivered, 1);
        assert_eq!(exp.delivery_count(), 1);
        // Delivery latency 14 ms lands in the right quantile bin.
        let p50 = exp.delivery_quantile(0.5).expect("one sample");
        assert!((p50 - 0.014).abs() < 2e-3, "{p50}");
        assert!(!report.window_lines.is_empty());
    }

    #[test]
    fn suppressed_release_is_detected_as_unresolved() {
        // Fault injection: drop the buffer_release record — the run now
        // ends with the frame still buffered, violating no-loss.
        let records: Vec<TraceRecord> = clean_run()
            .into_iter()
            .filter(|r| !matches!(r.event, TraceEvent::BufferRelease { .. }))
            .collect();
        let m = feed(&records);
        assert_eq!(m.total_findings(), 1);
        assert_eq!(m.findings()[0].invariant, Invariant::NoLoss);
        assert!(m.findings()[0].detail.contains("never resolved"));
    }

    #[test]
    fn release_without_delivery_is_a_no_loss_violation() {
        let records: Vec<TraceRecord> = clean_run()
            .into_iter()
            .filter(|r| !matches!(r.event, TraceEvent::IFrameRx { .. }))
            .collect();
        let m = feed(&records);
        assert!(m
            .findings()
            .iter()
            .any(|f| f.invariant == Invariant::NoLoss && f.detail.contains("without a clean")));
    }

    #[test]
    fn release_off_the_checkpoint_instant_violates_release_on_ack() {
        let records: Vec<TraceRecord> = clean_run()
            .into_iter()
            .map(|mut r| {
                if matches!(r.event, TraceEvent::BufferRelease { .. }) {
                    r.t = Instant::from_nanos(30 * MS + 1);
                }
                r
            })
            .collect();
        let m = feed(&records);
        assert!(m
            .findings()
            .iter()
            .any(|f| f.invariant == Invariant::ReleaseOnAck));
    }

    #[test]
    fn non_monotone_wire_seq_is_flagged() {
        let mut records = clean_run();
        records.insert(
            3,
            rec(
                2 * MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 1,
                    retx: false,
                    len: 1024,
                },
            ),
        );
        let m = feed(&records);
        assert!(m
            .findings()
            .iter()
            .any(|f| f.invariant == Invariant::MonotoneSeq));
    }

    #[test]
    fn checkpoint_emission_gap_beyond_w_cp_is_flagged() {
        let mut records = clean_run();
        // A second periodic checkpoint 12 ms after the first (> W_cp).
        records.insert(
            6,
            rec(
                28 * MS,
                "rx",
                TraceEvent::CheckpointEmitted {
                    index: 2,
                    covered: 1,
                    naks: 0,
                    enforced: false,
                    stop: false,
                },
            ),
        );
        let m = feed(&records);
        assert!(m
            .findings()
            .iter()
            .any(|f| f.invariant == Invariant::CheckpointCadence
                && f.window == (Instant::from_nanos(16 * MS), Instant::from_nanos(28 * MS))));
    }

    #[test]
    fn wall_clock_streams_get_cadence_slack() {
        // Same 12 ms emission gap as the strict sim-domain test above,
        // but the stream declares a wall clock — the gap is within the
        // default jitter allowance, so no finding.
        let mut records = clean_run();
        records.insert(
            0,
            rec(
                0,
                "host",
                TraceEvent::TraceHeader {
                    clock_domain: "wall",
                },
            ),
        );
        records.insert(
            7,
            rec(
                28 * MS,
                "rx",
                TraceEvent::CheckpointEmitted {
                    index: 2,
                    covered: 1,
                    naks: 0,
                    enforced: false,
                    stop: false,
                },
            ),
        );
        let m = feed(&records);
        assert!(
            m.findings().is_empty(),
            "wall-domain jitter must not be flagged: {:?}",
            m.findings()
        );
    }

    #[test]
    fn retransmission_without_renumbering_is_flagged() {
        let mut records = clean_run();
        records.insert(
            3,
            rec(
                2 * MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 2,
                    retx: true,
                    len: 1024,
                },
            ),
        );
        let m = feed(&records);
        assert!(m
            .findings()
            .iter()
            .any(|f| f.invariant == Invariant::MonotoneSeq && f.detail.contains("renumbering")));
    }

    #[test]
    fn renumbered_chain_keeps_its_lifecycle() {
        let cfg = MonitorConfig {
            keep_lifecycles: true,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(cfg);
        // Wider cadence than the default fixture: checkpoints land at
        // 16 ms and 46 ms, so W_cp must cover the 30 ms gap.
        let records = vec![
            rec(0, "sim", TraceEvent::RunStarted),
            rec(
                0,
                "tx",
                TraceEvent::SenderConfig {
                    w_cp_ns: 30 * MS,
                    c_depth: 3,
                    rtt_ns: 27 * MS,
                    cp_timeout_ns: 40 * MS,
                    resolving_ns: 120 * MS,
                    failure_ns: 120 * MS,
                },
            ),
            rec(
                MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 1,
                    retx: false,
                    len: 1024,
                },
            ),
            // Corrupted arrival, NAK, renumber, clean retransmission.
            rec(
                15 * MS,
                "rx",
                TraceEvent::IFrameRx {
                    seq: 1,
                    clean: false,
                    len: 1024,
                },
            ),
            rec(
                15 * MS,
                "rx",
                TraceEvent::Nak {
                    seq: 1,
                    cp_index: 1,
                },
            ),
            rec(
                16 * MS,
                "rx",
                TraceEvent::CheckpointEmitted {
                    index: 1,
                    covered: 1,
                    naks: 1,
                    enforced: false,
                    stop: false,
                },
            ),
            rec(
                30 * MS,
                "tx",
                TraceEvent::CheckpointReceived {
                    index: 1,
                    covered: 1,
                    naks: 1,
                },
            ),
            rec(
                30 * MS,
                "tx",
                TraceEvent::Renumbered {
                    old_seq: 1,
                    new_seq: 2,
                },
            ),
            rec(
                30 * MS,
                "tx",
                TraceEvent::RetxCause {
                    seq: 2,
                    cause: "nak",
                    cp_index: 1,
                },
            ),
            rec(
                30 * MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 2,
                    retx: true,
                    len: 1024,
                },
            ),
            rec(
                44 * MS,
                "rx",
                TraceEvent::IFrameRx {
                    seq: 2,
                    clean: true,
                    len: 1024,
                },
            ),
            rec(
                46 * MS,
                "rx",
                TraceEvent::CheckpointEmitted {
                    index: 2,
                    covered: 2,
                    naks: 0,
                    enforced: false,
                    stop: false,
                },
            ),
            rec(
                60 * MS,
                "tx",
                TraceEvent::CheckpointReceived {
                    index: 2,
                    covered: 2,
                    naks: 0,
                },
            ),
            rec(
                60 * MS,
                "tx",
                TraceEvent::BufferRelease {
                    seq: 2,
                    held_ns: 30 * MS,
                    cp_index: 2,
                },
            ),
            rec(
                61 * MS,
                "sim",
                TraceEvent::RunFinished {
                    deadline_hit: false,
                },
            ),
        ];
        for r in &records {
            m.observe(r);
        }
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
        let report = m.take_report();
        assert_eq!(report.lifecycles.len(), 1);
        let lc = &report.lifecycles[0];
        assert_eq!((lc.first_seq, lc.final_seq), (1, 2));
        assert_eq!((lc.naks, lc.retransmits), (1, 1));
        // Latency measured from the FIRST transmission of the chain.
        assert!((lc.delivery_latency_s().unwrap() - 0.043).abs() < 1e-9);
        assert_eq!(report.experiments[0].retransmissions, 1);
        // The attribution layer splits the same 43 ms into phases that
        // partition it exactly.
        let a = &report.experiments[0].attribution;
        assert_eq!((a.sdus, a.clean, a.errored), (1, 0, 1));
        let p = |ph: Phase| a.phases[ph as usize].total_ns;
        assert_eq!(p(Phase::FirstFlight), 14 * MS);
        assert_eq!(p(Phase::NakWait), MS);
        assert_eq!(p(Phase::ControlFlight), 14 * MS);
        assert_eq!(p(Phase::RetxFlight), 14 * MS);
        assert_eq!(a.latency_total_ns, 43 * MS);
        let total: u64 = a.phases.iter().map(|ph| ph.total_ns).sum();
        assert_eq!(total, a.latency_total_ns);
        assert_eq!((a.audit_failures, a.incomplete), (0, 0));
        // Resolution cycle: error recorded at 15 ms, retx decided at
        // 30 ms — 15 ms, far under R + W_cp/2 + C_depth·W_cp = 132 ms.
        assert_eq!((a.res_cycles, a.res_max_ns), (1, 15 * MS));
        assert_eq!(a.res_violations, 0);
        assert_eq!(a.res_bound_ns, 132 * MS);
    }

    #[test]
    fn clean_run_attribution_is_pure_first_flight() {
        let mut m = feed(&clean_run());
        let report = m.take_report();
        let a = &report.experiments[0].attribution;
        assert_eq!((a.sdus, a.clean, a.errored, a.incomplete), (1, 1, 0, 0));
        assert_eq!(a.latency_total_ns, 14 * MS);
        assert_eq!(a.phases[Phase::FirstFlight as usize].total_ns, 14 * MS);
        let rest: u64 = a.phases[1..].iter().map(|p| p.total_ns).sum();
        assert_eq!(rest, 0);
        assert!(a.res_bound_ns > 0, "bound derives from sender_config");
        assert_eq!(
            report.counters.get("monitor.attribution.incomplete"),
            None,
            "no partial chains in a clean run"
        );
    }

    #[test]
    fn truncated_run_counts_incomplete_attribution() {
        // Frame still in flight when the run hits its deadline: the
        // chain stays partial — counted under the incomplete counter,
        // never folded into the phase sums, and no finding is raised.
        let records: Vec<TraceRecord> = clean_run()
            .into_iter()
            .filter(|r| {
                !matches!(
                    r.event,
                    TraceEvent::IFrameRx { .. } | TraceEvent::BufferRelease { .. }
                )
            })
            .map(|mut r| {
                if let TraceEvent::RunFinished { deadline_hit } = &mut r.event {
                    *deadline_hit = true;
                }
                r
            })
            .collect();
        let mut m = feed(&records);
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
        let report = m.take_report();
        let a = &report.experiments[0].attribution;
        assert_eq!((a.sdus, a.incomplete), (0, 1));
        assert_eq!(a.latency_total_ns, 0);
        let total: u64 = a.phases.iter().map(|p| p.total_ns).sum();
        assert_eq!(total, 0, "partial chains must not fold into phase sums");
        assert_eq!(
            report.counters.get("monitor.attribution.incomplete"),
            Some(1.0)
        );
    }

    #[test]
    fn reseq_holds_aggregate_at_experiment_level() {
        let mut records = clean_run();
        let end = records.len() - 1;
        records.insert(
            end,
            rec(
                15 * MS,
                "collector",
                TraceEvent::ReseqHold {
                    id: 1,
                    held_ns: 3 * MS,
                },
            ),
        );
        let mut m = feed(&records);
        let report = m.take_report();
        let a = &report.experiments[0].attribution;
        assert_eq!(a.reseq.count, 1);
        assert_eq!(a.reseq.total_ns, 3 * MS);
        assert_eq!(a.reseq.max_ns, 3 * MS);
    }

    #[test]
    fn deadline_hit_suppresses_unresolved_findings() {
        let records: Vec<TraceRecord> = clean_run()
            .into_iter()
            .filter(|r| !matches!(r.event, TraceEvent::BufferRelease { .. }))
            .map(|mut r| {
                if let TraceEvent::RunFinished { deadline_hit } = &mut r.event {
                    *deadline_hit = true;
                }
                r
            })
            .collect();
        let m = feed(&records);
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
    }

    #[test]
    fn experiment_markers_attribute_runs() {
        let mut records = vec![rec(0, "runner", TraceEvent::ExperimentStarted { id: "e8" })];
        records.extend(clean_run());
        let mut m = feed(&records);
        let report = m.take_report();
        assert_eq!(report.experiments.len(), 1);
        assert_eq!(report.experiments[0].id, "e8");
        assert_eq!(report.experiments[0].runs, 1);
        assert_eq!(
            report.window_lines[0]
                .get("experiment")
                .and_then(Json::as_str),
            Some("e8")
        );
        assert!(report.experiment("e8").is_some());
    }

    #[test]
    fn hdlc_links_without_sender_config_are_not_audited() {
        let records = vec![
            rec(0, "sim", TraceEvent::RunStarted),
            rec(
                MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 5,
                    retx: false,
                    len: 1024,
                },
            ),
            // Sequence reuse, no release, no checkpoints: all legal for
            // an HDLC baseline; the auditor must stay silent.
            rec(
                2 * MS,
                "tx",
                TraceEvent::IFrameTx {
                    seq: 5,
                    retx: true,
                    len: 1024,
                },
            ),
            rec(
                3 * MS,
                "sim",
                TraceEvent::RunFinished {
                    deadline_hit: false,
                },
            ),
        ];
        let m = feed(&records);
        assert_eq!(m.total_findings(), 0);
    }

    #[test]
    fn duplex_and_relay_labels_pair_by_prefix() {
        assert_eq!(split_node("tx"), Some(("", Side::Tx)));
        assert_eq!(split_node("rx"), Some(("", Side::Rx)));
        assert_eq!(split_node("a2b.tx"), Some(("a2b", Side::Tx)));
        assert_eq!(split_node("a2b.rx"), Some(("a2b", Side::Rx)));
        assert_eq!(split_node("hop3.rx"), Some(("hop3", Side::Rx)));
        assert_eq!(split_node("channel"), None);
        assert_eq!(split_node("collector"), None);
    }

    #[test]
    fn live_snapshot_reads_mid_run_without_disturbing_audit() {
        let mut m = Monitor::new(MonitorConfig::default());
        let records = clean_run();
        // Feed everything except RunFinished: the run is still live.
        for r in &records[..records.len() - 1] {
            m.observe(r);
        }
        let snap = m.live_snapshot();
        assert_eq!(snap.delivered, 1);
        assert_eq!(snap.frames, 1);
        assert_eq!(snap.findings, 0);
        assert_eq!(snap.delivery_count(), 1);
        let p50 = snap.delivery_quantile(0.5).unwrap();
        assert!((p50 - 0.014).abs() < 1e-9, "{p50}");
        assert!(!snap.series.is_empty());
        // Snapshot is non-destructive: finishing the run still folds
        // the same tallies and series into the report.
        m.observe(&records[records.len() - 1]);
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
        let report = m.take_report();
        assert_eq!(report.experiments[0].delivered, 1);
        assert!(!report.window_lines.is_empty());
    }

    #[test]
    fn trace_header_sets_clock_domain() {
        let mut m = Monitor::new(MonitorConfig::default());
        assert_eq!(m.clock_domain(), None);
        m.observe(&rec(
            0,
            "host",
            TraceEvent::TraceHeader {
                clock_domain: "wall",
            },
        ));
        assert_eq!(m.clock_domain(), Some("wall"));
        // The header is stream metadata: no links, no findings.
        for r in clean_run() {
            m.observe(&r);
        }
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
    }

    #[test]
    fn observe_line_round_trips_through_jsonl() {
        let mut m = Monitor::new(MonitorConfig::default());
        for r in clean_run() {
            let line = r.to_json().render();
            m.observe_line(&line).expect("valid line");
        }
        assert_eq!(m.total_findings(), 0, "{:?}", m.findings());
        assert!(m.observe_line("not json").is_err());
    }
}
