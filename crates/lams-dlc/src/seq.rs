//! Bounded sequence numbering (§2.3, §3.3).
//!
//! LAMS-DLC's numbering size is bounded by the resolving period: a frame
//! is either resolved (acknowledged or renumbered-and-retransmitted)
//! within `R + W_cp/2 + C_depth·W_cp`, or the sender halts. At most
//! `resolving_period / t_f` frames can therefore be outstanding, and a
//! modulus of twice that uniquely identifies every unresolved frame — the
//! same ½-window rule as selective-repeat, but with a *bounded* window
//! where HDLC's holding time (and hence numbering requirement) is
//! unbounded under repeated ACK loss.
//!
//! Internally the protocol uses monotone `u64` logical numbers;
//! [`compress`] reduces them to the wire field and [`expand`] recovers the
//! logical value at the receiver using the highest number seen so far as a
//! reference.

/// Reduce a logical sequence number to its wire representation.
pub fn compress(logical: u64, modulus: u64) -> u32 {
    debug_assert!(modulus > 1 && modulus <= u32::MAX as u64 + 1);
    (logical % modulus) as u32
}

/// Recover the logical sequence number closest to `reference` that is
/// congruent to `wire` modulo `modulus`.
///
/// Correct whenever the true logical value lies within `modulus / 2` of
/// `reference` — guaranteed by the resolving-period bound.
pub fn expand(wire: u32, reference: u64, modulus: u64) -> u64 {
    debug_assert!((wire as u64) < modulus);
    let base = reference / modulus * modulus;
    let candidates = [
        base.checked_sub(modulus).map(|b| b + wire as u64),
        Some(base + wire as u64),
        base.checked_add(modulus).map(|b| b + wire as u64),
    ];
    candidates
        .into_iter()
        .flatten()
        .min_by_key(|&c| c.abs_diff(reference))
        .expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn compress_wraps() {
        assert_eq!(compress(0, 256), 0);
        assert_eq!(compress(255, 256), 255);
        assert_eq!(compress(256, 256), 0);
        assert_eq!(compress(1000, 256), (1000 % 256) as u32);
    }

    #[test]
    fn expand_exact_at_reference() {
        for m in [16u64, 256, 1024] {
            for logical in [0u64, 5, m - 1, m, 3 * m + 7] {
                let w = compress(logical, m);
                assert_eq!(expand(w, logical, m), logical);
            }
        }
    }

    #[test]
    fn expand_within_half_window() {
        let m = 256u64;
        let reference = 10_000u64;
        for offset in -127i64..=127 {
            let logical = (reference as i64 + offset) as u64;
            let w = compress(logical, m);
            assert_eq!(expand(w, reference, m), logical, "offset {offset}");
        }
    }

    #[test]
    fn expand_near_zero() {
        // Reference near zero must not underflow.
        let m = 64u64;
        for logical in 0..32u64 {
            let w = compress(logical, m);
            assert_eq!(expand(w, 0, m), logical);
            assert_eq!(expand(w, 10, m), logical);
        }
    }

    #[test]
    fn ambiguity_outside_half_window() {
        // Beyond modulus/2 the mapping must (by design) pick the nearer
        // congruent value — demonstrating why modulus ≥ 2 × outstanding.
        let m = 16u64;
        let reference = 100u64;
        let logical = reference + m / 2 + 1; // 109 ≡ 13; 93 is nearer to 100
        let w = compress(logical, m);
        assert_ne!(expand(w, reference, m), logical);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_within_window(
            reference in 0u64..1_000_000_000,
            offset in -500i64..=500,
            modulus_pow in 11u32..20,
        ) {
            let m = 1u64 << modulus_pow; // ≥ 2048 > 2*500
            let logical = if offset < 0 {
                reference.saturating_sub((-offset) as u64)
            } else {
                reference + offset as u64
            };
            let w = compress(logical, m);
            prop_assert_eq!(expand(w, reference, m), logical);
        }

        #[test]
        fn prop_expand_is_congruent(
            wire in 0u32..1024,
            reference in 0u64..1_000_000,
        ) {
            let m = 1024u64;
            let e = expand(wire, reference, m);
            prop_assert_eq!(e % m, wire as u64);
            // And within half a modulus of the reference.
            prop_assert!(e.abs_diff(reference) <= m);
        }
    }
}
