//! Protocol configuration.

use proto_core::Duration;

/// Tunable parameters of a LAMS-DLC endpoint pair.
///
/// The two central knobs are the **checkpoint interval** `W_cp` (written
/// `I_cp` in the paper's delay derivations — the same quantity) and the
/// **cumulation depth** `C_depth`: each checkpoint command carries the
/// NAKs accumulated over the last `C_depth` intervals, so a single lost
/// checkpoint costs only one extra interval rather than a round trip, and
/// a burst error shorter than `C_depth · W_cp` cannot silence error
/// reporting entirely (§3.3).
#[derive(Clone, Debug)]
pub struct LamsConfig {
    /// Checkpoint interval `W_cp`: receiver-side period between
    /// Check-Point commands.
    pub w_cp: Duration,
    /// Cumulation depth `C_depth`: how many consecutive checkpoints repeat
    /// each NAK.
    pub c_depth: u32,
    /// Deterministic per-frame processing time `t_proc` (paper assumption
    /// 8: processing a frame is deterministic).
    pub t_proc: Duration,
    /// Expected round-trip time `R` of the link (known from orbital
    /// geometry — paper §3.2 assumes deterministic link behaviour). Used
    /// to size the resolving period and the failure timer.
    pub expected_rtt: Duration,
    /// Transmission time of a control frame `t_c` (serialization at the
    /// line rate, including the control FEC expansion).
    pub t_c: Duration,
    /// Transmission time of an I-frame `t_f`.
    pub t_f: Duration,
    /// Flow-control behaviour.
    pub flow: FlowConfig,
    /// Safety margin added to computed deadlines to absorb modelling slack
    /// (processing jitter is zero in this deterministic model, but the
    /// serialization of queued control frames is not accounted exactly).
    pub deadline_slack: Duration,
}

/// Stop-Go flow-control parameters (§3.4): multiplicative decrease while
/// the receiver keeps signalling Stop, stepwise increase on Go.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Multiplicative factor applied to the sending rate on a sustained
    /// Stop indication (0 < factor < 1).
    pub decrease_factor: f64,
    /// Additive fraction of line rate restored per Go indication.
    pub increase_step: f64,
    /// Minimum rate fraction (prevents total starvation, which would also
    /// starve the error-recovery retransmissions).
    pub min_rate: f64,
    /// A Stop must persist this long before a further decrease is applied
    /// ("if the sender keeps detecting Stop-Go-bit set to 1 during a
    /// predefined time, the sender repeatedly decreases the sending
    /// rate").
    pub sustain: Duration,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            decrease_factor: 0.5,
            increase_step: 0.1,
            min_rate: 0.05,
            sustain: Duration::from_millis(5),
        }
    }
}

impl LamsConfig {
    /// A configuration representative of the paper's target link: 4,000 km
    /// (R ≈ 26.7 ms), 300 Mbps, 1 kB I-frames, checkpoint every 5 ms,
    /// cumulation depth 3.
    pub fn paper_default() -> Self {
        LamsConfig {
            w_cp: Duration::from_millis(5),
            c_depth: 3,
            t_proc: Duration::from_micros(10),
            expected_rtt: Duration::from_micros(26_700),
            t_c: Duration::from_micros(10),
            t_f: Duration::from_micros(27), // 1 kB at 300 Mbps
            flow: FlowConfig::default(),
            deadline_slack: Duration::from_millis(1),
        }
    }

    /// The paper's **resolving period** bound (§3.3):
    /// `R + W_cp/2 + C_depth · W_cp` — the maximum time from a frame's
    /// first transmission until the sender knows its fate (plus the
    /// configured slack).
    pub fn resolving_period(&self) -> Duration {
        self.expected_rtt
            + self.w_cp / 2
            + self.w_cp * self.c_depth as u64
            + self.t_c
            + self.t_proc
            + self.deadline_slack
    }

    /// Checkpoint-timer timeout (§3.2): the sender suspects link failure
    /// after `C_depth · W_cp` without any checkpoint.
    pub fn checkpoint_timeout(&self) -> Duration {
        self.w_cp * self.c_depth as u64 + self.deadline_slack
    }

    /// Failure-timer duration (§3.2): the normally expected response time
    /// to a Request-NAK plus `C_depth · W_cp`.
    pub fn failure_timeout(&self) -> Duration {
        self.expected_rtt
            + self.t_c
            + self.t_proc
            + self.w_cp * self.c_depth as u64
            + self.deadline_slack
    }

    /// The bounded numbering size (§3.3): resolving period divided by the
    /// mean frame time — the number of distinct sequence numbers needed to
    /// keep every unresolved frame uniquely identified. We double it for
    /// unambiguous wire-number expansion (same ½-window rule as SR ARQ).
    pub fn numbering_size(&self) -> u64 {
        let frames = (self.resolving_period().as_nanos() / self.t_f.as_nanos().max(1)).max(1);
        2 * (frames + 1)
    }

    /// Wire sequence-number modulus: the smallest power of two that
    /// accommodates [`Self::numbering_size`] (power of two so the field
    /// packs into whole bits on the wire).
    pub fn seq_modulus(&self) -> u64 {
        self.numbering_size().next_power_of_two()
    }

    /// Validate invariants; called by the endpoints at construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.c_depth == 0 {
            return Err("c_depth must be at least 1".into());
        }
        if self.w_cp.is_zero() {
            return Err("w_cp must be positive".into());
        }
        if self.t_f.is_zero() {
            return Err("t_f must be positive".into());
        }
        let f = &self.flow;
        if !(0.0..1.0).contains(&f.decrease_factor) || f.decrease_factor == 0.0 {
            return Err(format!(
                "decrease_factor out of (0,1): {}",
                f.decrease_factor
            ));
        }
        if f.increase_step <= 0.0 || f.increase_step > 1.0 {
            return Err(format!("increase_step out of (0,1]: {}", f.increase_step));
        }
        if !(0.0..=1.0).contains(&f.min_rate) {
            return Err(format!("min_rate out of [0,1]: {}", f.min_rate));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        LamsConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn resolving_period_formula() {
        let c = LamsConfig::paper_default();
        let expect = c.expected_rtt + c.w_cp / 2 + c.w_cp * 3 + c.t_c + c.t_proc + c.deadline_slack;
        assert_eq!(c.resolving_period(), expect);
    }

    #[test]
    fn checkpoint_timeout_is_cdepth_wcp() {
        let c = LamsConfig::paper_default();
        assert_eq!(c.checkpoint_timeout(), c.w_cp * 3 + c.deadline_slack);
    }

    #[test]
    fn numbering_size_bounded_and_sufficient() {
        let c = LamsConfig::paper_default();
        let n = c.numbering_size();
        // Must cover twice the maximum number of in-flight-unresolved
        // frames: resolving_period / t_f.
        let in_flight = c.resolving_period().as_nanos() / c.t_f.as_nanos();
        assert!(n >= 2 * in_flight, "n={n} in_flight={in_flight}");
        // And stay bounded (the paper's point): far below a 32-bit space.
        assert!(n < 1 << 20, "n={n}");
        assert!(c.seq_modulus().is_power_of_two());
        assert!(c.seq_modulus() >= n);
    }

    #[test]
    fn numbering_shrinks_with_shorter_checkpoint_interval() {
        // §3.4 buffer control: decreasing W_cp decreases the holding time
        // and hence the numbering requirement.
        let mut small = LamsConfig::paper_default();
        small.w_cp = Duration::from_millis(1);
        let large = LamsConfig::paper_default();
        assert!(small.numbering_size() < large.numbering_size());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = LamsConfig::paper_default();
        c.c_depth = 0;
        assert!(c.validate().is_err());

        let mut c = LamsConfig::paper_default();
        c.w_cp = Duration::ZERO;
        assert!(c.validate().is_err());

        let mut c = LamsConfig::paper_default();
        c.flow.decrease_factor = 1.5;
        assert!(c.validate().is_err());

        let mut c = LamsConfig::paper_default();
        c.flow.increase_step = 0.0;
        assert!(c.validate().is_err());
    }
}
