//! E18 — conservative parallel execution (ours; infrastructure): a
//! many-hop LAMS-DLC relay chain sharded across cores with link-delay
//! lookahead (`repro --shards N`). The table is the end-to-end result
//! at the *configured* shard count — byte-identical at every count by
//! construction — so this experiment doubles as the repro harness's
//! cross-shard determinism witness: `--shards 1` and `--shards N`
//! reports must agree on everything but the perf block.

use crate::chain::run_chain_lams;
use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::relay::RelayConfig;
use crate::report::Table;
use crate::scenario::ScenarioConfig;
use sim_core::Duration;

/// Chain lengths swept (long chains: the cut count grows with hops, so
/// deeper chains expose more parallelism).
pub const HOPS: &[usize] = &[2, 4, 8, 12];

/// Run E18. Each run is itself shard-parallel, so the sweep stays
/// inline rather than nesting inside [`parallel::map`].
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 1_200 } else { 5_000 };
    let hops: &[usize] = if quick { &[2, 6] } else { HOPS };
    let shards = parallel::shards();
    let mut table = Table::new(
        "end-to-end delay and goodput over a sharded relay chain (residual BER 1e-5)",
        &[
            "hops",
            "e2e_mean_ms",
            "e2e_p99_ms",
            "efficiency",
            "retransmissions",
            "lost",
        ],
    );
    for &h in hops {
        let mut base = ScenarioConfig::paper_default();
        base.n_packets = n;
        base.data_residual_ber = 1e-5;
        base.ctrl_residual_ber = 1e-6;
        base.deadline = Duration::from_secs(600);
        let cfg = RelayConfig { hops: h, base };
        let r = run_chain_lams(&cfg, shards);
        table.row(vec![
            (h as u64).into(),
            (r.e2e_delay.mean() * 1e3).into(),
            (r.e2e_delay_hist.quantile(0.99).unwrap_or(0.0) * 1e3).into(),
            r.efficiency().into(),
            r.retransmissions.into(),
            r.lost.into(),
        ]);
    }
    ExperimentOutput {
        id: "E18",
        title: "Sharded relay chain (conservative parallel execution)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: delay grows with hop count exactly as in E13's \
             LAMS column; every column except the perf block is independent \
             of --shards (the conservative coordinator commits the same \
             event set in the same canonical order at any cut)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_shards<T>(n: usize, body: impl FnOnce() -> T) -> T {
        let prev = parallel::shards();
        parallel::set_shards(n);
        let out = body();
        parallel::set_shards(prev);
        out
    }

    #[test]
    fn e18_rows_independent_of_shard_count() {
        let serial = with_shards(1, || run(true));
        let sharded = with_shards(3, || run(true));
        let (a, b) = (&serial.tables[0], &sharded.tables[0]);
        assert_eq!(a.len(), b.len());
        for row in 0..a.len() {
            assert_eq!(a.value(row, 5).unwrap(), 0.0, "row {row}: lost");
            for col in 0..6 {
                assert_eq!(
                    a.value(row, col),
                    b.value(row, col),
                    "row {row} col {col}: shards must not change results"
                );
            }
        }
    }
}
