//! A compact growable bit buffer.
//!
//! The FEC pipeline (convolutional encoder, interleaver, channel,
//! Viterbi) operates on bit streams, not bytes. [`BitBuf`] stores bits
//! MSB-first within each byte, matching serial line order.

/// A growable sequence of bits, MSB-first within each backing byte.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitBuf {
    bytes: Vec<u8>,
    len: usize,
}

impl BitBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        BitBuf::default()
    }

    /// Empty buffer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitBuf {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Build from a `bool` slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut b = BitBuf::with_capacity(bits.len());
        for &bit in bits {
            b.push(bit);
        }
        b
    }

    /// Build from bytes; every bit of every byte is included, MSB first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        BitBuf {
            bytes: bytes.to_vec(),
            len: bytes.len() * 8,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        let bit_idx = self.len % 8;
        if bit_idx == 0 {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 0x80 >> bit_idx;
        }
        self.len += 1;
    }

    /// Read bit `i`. Panics if out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "BitBuf::get: index {i} out of range (len {})",
            self.len
        );
        (self.bytes[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// Write bit `i`. Panics if out of range.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "BitBuf::set: index {i} out of range (len {})",
            self.len
        );
        let mask = 0x80 >> (i % 8);
        if bit {
            self.bytes[i / 8] |= mask;
        } else {
            self.bytes[i / 8] &= !mask;
        }
    }

    /// Flip bit `i`.
    pub fn toggle(&mut self, i: usize) {
        let mask = 0x80 >> (i % 8);
        assert!(i < self.len);
        self.bytes[i / 8] ^= mask;
    }

    /// Iterate bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Return the underlying bytes. The final byte is zero-padded if the
    /// length is not a multiple of 8.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Convert back to exactly `len/8` bytes; panics if `len` is not a
    /// multiple of 8 (use when the content is byte-aligned payload).
    pub fn to_bytes_exact(&self) -> Vec<u8> {
        assert!(
            self.len % 8 == 0,
            "to_bytes_exact: bit length {} is not byte aligned",
            self.len
        );
        self.bytes.clone()
    }

    /// Number of positions where `self` and `other` differ; both must have
    /// the same length.
    pub fn hamming_distance(&self, other: &BitBuf) -> usize {
        assert_eq!(self.len, other.len, "hamming_distance: length mismatch");
        let mut d = 0usize;
        for (i, (&a, &b)) in self.bytes.iter().zip(&other.bytes).enumerate() {
            let mut x = a ^ b;
            // Mask padding bits of the last byte.
            if i == self.bytes.len() - 1 && self.len % 8 != 0 {
                x &= !(0xFFu8 >> (self.len % 8));
            }
            d += x.count_ones() as usize;
        }
        d
    }
}

impl core::fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "BitBuf[{}; ", self.len)?;
        for (i, bit) in self.iter().enumerate() {
            if i >= 64 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{}", if bit { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitBuf {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = BitBuf::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let b = BitBuf::from_bits(&pattern);
        assert_eq!(b.len(), 9);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(b.get(i), bit, "bit {i}");
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut b = BitBuf::new();
        b.push(true); // bit 7 of byte 0
        for _ in 0..7 {
            b.push(false);
        }
        assert_eq!(b.as_bytes(), &[0x80]);
    }

    #[test]
    fn bytes_roundtrip() {
        let data = [0xDE, 0xAD, 0xBE, 0xEF];
        let b = BitBuf::from_bytes(&data);
        assert_eq!(b.len(), 32);
        assert_eq!(b.to_bytes_exact(), data);
    }

    #[test]
    fn set_and_toggle() {
        let mut b = BitBuf::from_bytes(&[0x00]);
        b.set(3, true);
        assert_eq!(b.as_bytes(), &[0x10]);
        b.toggle(3);
        assert_eq!(b.as_bytes(), &[0x00]);
        b.toggle(0);
        assert_eq!(b.as_bytes(), &[0x80]);
    }

    #[test]
    fn hamming() {
        let a = BitBuf::from_bytes(&[0b1010_1010]);
        let c = BitBuf::from_bytes(&[0b1010_1011]);
        assert_eq!(a.hamming_distance(&c), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn hamming_ignores_padding() {
        let mut a = BitBuf::from_bits(&[true, false, true]);
        let b = BitBuf::from_bits(&[true, false, true]);
        // Corrupt padding region of the backing byte directly: distance
        // must still be 0 because only 3 bits are live.
        a.bytes[0] |= 0x01;
        assert_eq!(a.hamming_distance(&b), 0);
    }

    #[test]
    fn from_iterator() {
        let b: BitBuf = (0..10).map(|i| i % 3 == 0).collect();
        assert_eq!(b.len(), 10);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(3));
    }

    #[test]
    #[should_panic]
    fn get_out_of_range() {
        let b = BitBuf::from_bits(&[true]);
        b.get(1);
    }

    #[test]
    #[should_panic]
    fn to_bytes_exact_unaligned() {
        let b = BitBuf::from_bits(&[true, false]);
        b.to_bytes_exact();
    }
}
