//! Hard-decision Viterbi decoder for the rate-1/2 convolutional codes in
//! [`crate::conv`].
//!
//! Standard add-compare-select over the full received block with traceback
//! at the end. The encoder zero-terminates, so decoding starts and ends in
//! state 0. Complexity is `O(n_states · n_bits)` time and memory — fine for
//! the frame sizes in this workspace (≤ a few kB).

use crate::bits::BitBuf;
use crate::conv::ConvCode;

/// Decoder for one [`ConvCode`].
pub struct Viterbi {
    code: ConvCode,
    /// For each state and input bit: (next_state, expected symbol).
    transitions: Vec<[(u32, u8); 2]>,
}

impl Viterbi {
    /// Build the trellis for `code`.
    pub fn new(code: ConvCode) -> Self {
        let n = code.num_states();
        let mut transitions = Vec::with_capacity(n);
        for state in 0..n as u32 {
            transitions.push([code.step(state, false), code.step(state, true)]);
        }
        Viterbi { code, transitions }
    }

    /// The code this decoder was built for.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }

    /// Decode `received` (a possibly corrupted output of
    /// [`ConvCode::encode`]) back to the original message bits, stripping
    /// the zero tail. Returns `None` if the received length is not an even
    /// number of symbols or is shorter than the tail.
    pub fn decode(&self, received: &BitBuf) -> Option<BitBuf> {
        if received.len() % 2 != 0 {
            return None;
        }
        let n_sym = received.len() / 2;
        let tail = (self.code.constraint - 1) as usize;
        if n_sym < tail {
            return None;
        }
        let n_states = self.code.num_states();
        const INF: u32 = u32::MAX / 2;

        let mut metric = vec![INF; n_states];
        metric[0] = 0; // encoder starts in state 0
        let mut next_metric = vec![INF; n_states];
        // survivors[t][s] = (previous state, input bit) best path into s at t+1.
        let mut survivors: Vec<Vec<(u32, bool)>> = vec![vec![(0, false); n_states]; n_sym];

        for (t, surv) in survivors.iter_mut().enumerate() {
            let r1 = received.get(2 * t) as u8;
            let r2 = received.get(2 * t + 1) as u8;
            let r_sym = (r1 << 1) | r2;
            next_metric.fill(INF);
            for (state, &m) in metric.iter().enumerate() {
                if m >= INF {
                    continue;
                }
                for (input, &(next, sym)) in self.transitions[state].iter().enumerate() {
                    let branch = (sym ^ r_sym).count_ones();
                    let cand = m + branch;
                    if cand < next_metric[next as usize] {
                        next_metric[next as usize] = cand;
                        surv[next as usize] = (state as u32, input == 1);
                    }
                }
            }
            core::mem::swap(&mut metric, &mut next_metric);
        }

        // Zero-terminated: trace back from state 0.
        let mut state = 0u32;
        let mut bits_rev = Vec::with_capacity(n_sym);
        for t in (0..n_sym).rev() {
            let (prev, input) = survivors[t][state as usize];
            bits_rev.push(input);
            state = prev;
        }
        bits_rev.reverse();
        bits_rev.truncate(n_sym - tail); // drop the tail bits
        Some(bits_rev.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::CCSDS_K7;
    use rand::{RngExt, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let v = Viterbi::new(CCSDS_K7);
        let input = BitBuf::from_bytes(data);
        let enc = CCSDS_K7.encode(&input);
        let dec = v.decode(&enc).expect("decode");
        assert_eq!(dec, input);
    }

    #[test]
    fn clean_channel_roundtrip() {
        roundtrip(&[0x00]);
        roundtrip(&[0xFF]);
        roundtrip(&[0xDE, 0xAD, 0xBE, 0xEF]);
        roundtrip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn corrects_scattered_errors() {
        // The K=7 code has free distance 10: it corrects any pattern of up
        // to 2 errors in a block and scattered denser patterns if spaced.
        let v = Viterbi::new(CCSDS_K7);
        let input = BitBuf::from_bytes(&[0x5A, 0xC3, 0x0F, 0x99]);
        let enc = CCSDS_K7.encode(&input);
        // Flip every 20th coded bit (well separated).
        let mut corrupted = enc.clone();
        let mut i = 3;
        while i < corrupted.len() {
            corrupted.toggle(i);
            i += 20;
        }
        let dec = v.decode(&corrupted).expect("decode");
        assert_eq!(dec, input, "scattered errors not corrected");
    }

    #[test]
    fn corrects_any_double_error() {
        let v = Viterbi::new(CCSDS_K7);
        let input = BitBuf::from_bytes(&[0xA7, 0x31]);
        let enc = CCSDS_K7.encode(&input);
        // Exhaustive over a subsample of pairs to keep runtime sane.
        let n = enc.len();
        for i in (0..n).step_by(3) {
            for j in ((i + 1)..n).step_by(5) {
                let mut corrupted = enc.clone();
                corrupted.toggle(i);
                corrupted.toggle(j);
                let dec = v.decode(&corrupted).expect("decode");
                assert_eq!(dec, input, "failed for flips at ({i},{j})");
            }
        }
    }

    #[test]
    fn dense_burst_defeats_code_without_interleaving() {
        // Motivates the interleaver: a long contiguous burst exceeds the
        // code's correction span and causes a decode error.
        let v = Viterbi::new(CCSDS_K7);
        let input = BitBuf::from_bytes(&[0x12, 0x34, 0x56, 0x78]);
        let enc = CCSDS_K7.encode(&input);
        let mut corrupted = enc.clone();
        for i in 10..40 {
            corrupted.toggle(i);
        }
        let dec = v.decode(&corrupted).expect("decode returns bits");
        assert_ne!(dec, input, "a 30-bit burst should not be correctable bare");
    }

    #[test]
    fn rejects_odd_length() {
        let v = Viterbi::new(CCSDS_K7);
        let odd = BitBuf::from_bits(&[true; 15]);
        assert!(v.decode(&odd).is_none());
    }

    #[test]
    fn rejects_too_short() {
        let v = Viterbi::new(CCSDS_K7);
        let short = BitBuf::from_bits(&[true; 4]);
        assert!(v.decode(&short).is_none());
    }

    #[test]
    fn random_blocks_with_light_noise() {
        let v = Viterbi::new(CCSDS_K7);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let data: Vec<u8> = (0..32).map(|_| rng.random()).collect();
            let input = BitBuf::from_bytes(&data);
            let enc = CCSDS_K7.encode(&input);
            let mut corrupted = enc.clone();
            // BER 0.5%: occasional isolated flips; should be corrected.
            for i in 0..corrupted.len() {
                if rng.random_range(0..1000) < 5 {
                    corrupted.toggle(i);
                }
            }
            let dec = v.decode(&corrupted).expect("decode");
            assert_eq!(dec, input);
        }
    }
}
