//! Anchor crate for the workspace-level integration tests in `/tests`
//! (each `[[test]]` target in this crate's manifest points there).
