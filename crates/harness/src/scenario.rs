//! Scenario construction: the point-to-point topology builder.
//!
//! A scenario wires one sending endpoint and one receiving endpoint over
//! a full-duplex [`Channel`] pair (two nodes, one link each way), feeds
//! SDUs from a [`TrafficGen`], and collects a [`RunReport`]. The event
//! loop itself lives in the `netsim` crate and is generic over the
//! endpoint traits, so LAMS-DLC, SR-HDLC and GBN-HDLC all run over
//! **identical** channel error realisations for a given seed (common
//! random numbers).

use crate::link::{Channel, DelayModel, ErrorModel, Outage};
use crate::metrics::RunReport;
use crate::node::{Driver, RxEndpoint, TxEndpoint};
use crate::traffic::{Pattern, TrafficGen};
use netsim::channel::GilbertElliott;
use netsim::Machine;
use netsim::{NodeRole, SimBuilder, SimEvent};
use orbit::propagation_delay_s;
use sim_core::{Duration, EventQueue, SeedSplitter};

/// Gilbert–Elliott burst-error configuration (residual BERs per state).
#[derive(Clone, Debug)]
pub struct BurstCfg {
    /// Mean sojourn in the good state.
    pub mean_good: Duration,
    /// Mean burst duration.
    pub mean_bad: Duration,
    /// Residual BER in the good state (data direction).
    pub ber_good: f64,
    /// Residual BER inside a burst (data direction).
    pub ber_bad: f64,
    /// Residual BER in the good state (control direction).
    pub ctrl_ber_good: f64,
    /// Residual BER inside a burst (control direction).
    pub ctrl_ber_bad: f64,
}

/// Everything defining one simulation run.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; all stochastic components derive from it.
    pub seed: u64,
    /// Line rate in channel bits per second.
    pub rate_bps: f64,
    /// SDU payload size in bytes.
    pub payload_bytes: usize,
    /// Number of SDUs to deliver.
    pub n_packets: u64,
    /// Arrival pattern.
    pub pattern: Pattern,
    /// Link distance (fixed-delay model), km.
    pub distance_km: f64,
    /// Orbital profile overriding `distance_km` when present, with a
    /// start offset (seconds into the profile window).
    pub profile: Option<(orbit::LinkProfile, f64)>,
    /// Residual BER on the data direction.
    pub data_residual_ber: f64,
    /// Residual BER on the control direction.
    pub ctrl_residual_ber: f64,
    /// Burst model overriding the uniform BERs when present.
    pub burst: Option<BurstCfg>,
    /// Scheduled outages (both directions).
    pub outages: Vec<Outage>,
    /// Give-up time.
    pub deadline: Duration,
    /// Occupancy sampling period.
    pub sample_every: Duration,
    /// LAMS checkpoint interval.
    pub w_cp: Duration,
    /// LAMS cumulation depth.
    pub c_depth: u32,
    /// HDLC window.
    pub window: usize,
    /// HDLC sequence bits (`M = 2^bits`).
    pub seq_bits: u32,
    /// HDLC timeout slack α.
    pub alpha: Duration,
    /// Processing time per frame.
    pub t_proc: Duration,
    /// Optional LAMS receive capacity `(capacity, stop_watermark)` for
    /// flow-control scenarios.
    pub rx_capacity: Option<(usize, usize)>,
}

impl ScenarioConfig {
    /// The paper's reference scenario: 4,000 km, 300 Mbps, 1 kB SDUs,
    /// residual BER 1e-6 / 1e-7, `W_cp` = 5 ms, `C_depth` = 3, window
    /// 1024 (≈ one bandwidth-delay product), α = 10 ms.
    pub fn paper_default() -> Self {
        ScenarioConfig {
            seed: 1,
            rate_bps: 300e6,
            payload_bytes: 1024,
            n_packets: 10_000,
            pattern: Pattern::Batch,
            distance_km: 4000.0,
            profile: None,
            data_residual_ber: 1e-6,
            ctrl_residual_ber: 1e-7,
            burst: None,
            outages: Vec::new(),
            deadline: Duration::from_secs(300),
            sample_every: Duration::from_millis(5),
            w_cp: Duration::from_millis(5),
            c_depth: 3,
            window: 1024,
            seq_bits: 11,
            alpha: Duration::from_millis(10),
            t_proc: Duration::from_micros(10),
            rx_capacity: None,
        }
    }

    /// One-way propagation delay of the fixed-delay model.
    pub fn one_way_delay(&self) -> Duration {
        match &self.profile {
            Some((p, off)) => Duration::from_secs_f64(p.one_way_delay_s(p.window.start_s + off)),
            None => Duration::from_secs_f64(propagation_delay_s(self.distance_km)),
        }
    }

    /// Expected round-trip time.
    pub fn rtt(&self) -> Duration {
        self.one_way_delay() * 2
    }

    fn delay_model(&self) -> DelayModel {
        match &self.profile {
            Some((p, off)) => DelayModel::Profile {
                profile: p.clone(),
                t0_offset_s: *off,
            },
            None => DelayModel::Fixed(self.one_way_delay()),
        }
    }

    /// Build the (forward, reverse) channel pair this scenario defines.
    pub fn build_channels(&self) -> (Channel, Channel) {
        self.channels()
    }

    fn channels(&self) -> (Channel, Channel) {
        let split = SeedSplitter::new(self.seed);
        let (fwd_err, rev_err) = match &self.burst {
            None => (
                ErrorModel::uniform(self.data_residual_ber, split.stream(0)),
                ErrorModel::uniform(self.ctrl_residual_ber, split.stream(1)),
            ),
            Some(b) => (
                ErrorModel::Burst(GilbertElliott::new(
                    b.mean_good,
                    b.mean_bad,
                    b.ber_good,
                    b.ber_bad,
                    split.stream(0),
                )),
                ErrorModel::Burst(GilbertElliott::new(
                    b.mean_good,
                    b.mean_bad,
                    b.ctrl_ber_good,
                    b.ctrl_ber_bad,
                    split.stream(1),
                )),
            ),
        };
        let mut fwd = Channel::new(self.rate_bps, self.delay_model(), fwd_err);
        let mut rev = Channel::new(self.rate_bps, self.delay_model(), rev_err);
        fwd.outages = self.outages.clone();
        rev.outages = self.outages.clone();
        (fwd, rev)
    }

    /// Serialization time of one I-frame (info wire bytes + FEC) — the
    /// simulated `t_f`.
    pub fn t_f(&self) -> Duration {
        let (fwd, _) = self.channels();
        // LAMS info header/trailer is 19 bytes; HDLC's is 20 — close
        // enough that one t_f serves both for reporting.
        fwd.tx_time(self.payload_bytes + 19, true)
    }

    /// The LAMS protocol configuration this scenario induces.
    pub fn lams_config(&self) -> lams_dlc::LamsConfig {
        let (fwd, rev) = self.channels();
        let t_f = fwd.tx_time(self.payload_bytes + 19, true);
        // A checkpoint with a typical NAK load is ~40 wire bytes.
        let t_c = rev.tx_time(40, false);
        lams_dlc::LamsConfig {
            w_cp: self.w_cp,
            c_depth: self.c_depth,
            t_proc: self.t_proc,
            expected_rtt: self.rtt(),
            t_c,
            t_f,
            flow: lams_dlc::FlowConfig::default(),
            deadline_slack: Duration::from_millis(1),
        }
    }

    /// The HDLC configuration this scenario induces.
    pub fn hdlc_config(&self) -> hdlc::HdlcConfig {
        let (fwd, rev) = self.channels();
        hdlc::HdlcConfig {
            window: self.window,
            seq_bits: self.seq_bits,
            t_out: self.rtt() + self.alpha,
            t_f: fwd.tx_time(self.payload_bytes + 20, true),
            t_c: rev.tx_time(8, false),
            t_proc: self.t_proc,
        }
    }

    /// Convert analysis-ready parameters from this scenario (for
    /// analysis-vs-simulation validation).
    pub fn link_params(&self) -> analysis::LinkParams {
        let bits_f = ((self.payload_bytes + 19) * 8) as u64;
        let bits_c = 40 * 8;
        analysis::LinkParams {
            r: self.rtt().as_secs_f64(),
            t_f: self.t_f().as_secs_f64(),
            t_c: self.lams_config().t_c.as_secs_f64(),
            t_proc: self.t_proc.as_secs_f64(),
            i_cp: self.w_cp.as_secs_f64(),
            c_depth: self.c_depth,
            alpha: self.alpha.as_secs_f64(),
            w: self.window as u64,
            p_f: analysis::frame_error_prob(self.data_residual_ber, bits_f),
            p_c: analysis::frame_error_prob(self.ctrl_residual_ber, bits_c),
        }
    }
}

/// Event queue driving a scenario run — exposed so callers iterating
/// many runs (multi-pass, sweeps) can reuse one queue's allocation via
/// [`run_in`] / [`run_lams_in`].
pub type ScenarioQueue<F> = EventQueue<SimEvent<F>>;

/// Drive one scenario with the given endpoints. `protocol` labels the
/// report.
pub fn run<T, R>(cfg: &ScenarioConfig, tx: T, rx: R, protocol: &str) -> RunReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
{
    run_in(cfg, tx, rx, protocol, &mut EventQueue::new())
}

/// [`run`], reusing `q`'s allocation (the queue is reset first).
pub fn run_in<T, R>(
    cfg: &ScenarioConfig,
    tx: T,
    rx: R,
    protocol: &str,
    q: &mut ScenarioQueue<T::Frame>,
) -> RunReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
{
    // Two nodes, one directed link each way: the source's sender owns
    // the forward link; the sink's receiver answers on the reverse.
    let (fwd, rev) = cfg.build_channels();
    let gen = TrafficGen::new(
        cfg.pattern.clone(),
        cfg.n_packets,
        SeedSplitter::new(cfg.seed).stream(2),
    );
    let t_f_channel = cfg.t_f();

    let mut b = SimBuilder::new(cfg.payload_bytes, cfg.deadline, cfg.sample_every);
    let a = b.node(NodeRole::Source);
    let z = b.node(NodeRole::Sink);
    let lf = b.link(a, z, fwd, "fwd");
    let lr = b.link(z, a, rev, "rev");
    let t = b.tx(a, lf, tx);
    let r = b.rx(z, lr, rx);
    b.listen(lf, r);
    b.listen(lr, t);
    let c = b.collector(crate::metrics::Collector::new());
    b.source(gen, t, c);
    b.deliver(r, c);
    b.sample(c, t, vec![r]);
    b.holding(c, t);

    let out = b.build().expect("point-to-point wiring is valid").run_in(q);
    let tx = &out.txs[0];
    let rx = &out.rxs[0];
    let col = out.collectors.into_iter().next().expect("one collector");
    let mut report = col.finish(
        protocol,
        out.issued[0],
        out.finished_at,
        out.deadline_hit,
        tx.is_failed(),
        tx.transmissions(),
        tx.retransmissions(),
        t_f_channel,
        tx.extra_stats(),
        rx.extra_stats(),
    );
    report.queue = out.queue;
    report.wall_secs = out.wall_secs;
    crate::metrics::perf_absorb(&report.queue, report.wall_secs);
    report
}

/// Run the scenario under LAMS-DLC.
pub fn run_lams(cfg: &ScenarioConfig) -> RunReport {
    run_lams_in(cfg, &mut EventQueue::new())
}

/// [`run_lams`], reusing `q`'s allocation across runs.
pub fn run_lams_in(cfg: &ScenarioConfig, q: &mut ScenarioQueue<lams_dlc::Frame>) -> RunReport {
    let lcfg = cfg.lams_config();
    let tx =
        Driver::new(lams_dlc::Sender::new(lcfg.clone()).with_trace(telemetry::global_handle("tx")));
    let rx = Driver::new(
        match cfg.rx_capacity {
            Some((cap, mark)) => lams_dlc::Receiver::with_capacity(lcfg, cap, mark),
            None => lams_dlc::Receiver::new(lcfg),
        }
        .with_trace(telemetry::global_handle("rx")),
    );
    run_in(cfg, tx, rx, "lams", q)
}

/// Run the scenario under SR-HDLC.
pub fn run_sr(cfg: &ScenarioConfig) -> RunReport {
    let hcfg = cfg.hdlc_config();
    let tx =
        Driver::new(hdlc::SrSender::new(hcfg.clone()).with_trace(telemetry::global_handle("tx")));
    let rx = Driver::new(hdlc::SrReceiver::new(hcfg).with_trace(telemetry::global_handle("rx")));
    run(cfg, tx, rx, "sr-hdlc")
}

/// Run the scenario under GBN-HDLC.
pub fn run_gbn(cfg: &ScenarioConfig) -> RunReport {
    let hcfg = cfg.hdlc_config();
    let tx =
        Driver::new(hdlc::GbnSender::new(hcfg.clone()).with_trace(telemetry::global_handle("tx")));
    let rx = Driver::new(hdlc::GbnReceiver::new(hcfg).with_trace(telemetry::global_handle("rx")));
    run(cfg, tx, rx, "gbn-hdlc")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Instant;

    fn small(n: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_default();
        c.n_packets = n;
        c.deadline = Duration::from_secs(60);
        c
    }

    #[test]
    fn lams_clean_channel_delivers_everything() {
        let mut cfg = small(500);
        cfg.data_residual_ber = 0.0;
        cfg.ctrl_residual_ber = 0.0;
        let r = run_lams(&cfg);
        assert_eq!(r.delivered_unique, 500);
        assert_eq!(r.lost, 0);
        assert_eq!(r.duplicates, 0);
        assert!(!r.deadline_hit);
        assert!(!r.link_failed);
    }

    #[test]
    fn sr_hdlc_clean_channel_delivers_everything() {
        let mut cfg = small(500);
        cfg.data_residual_ber = 0.0;
        cfg.ctrl_residual_ber = 0.0;
        let r = run_sr(&cfg);
        assert_eq!(r.delivered_unique, 500);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn gbn_clean_channel_delivers_everything() {
        let mut cfg = small(500);
        cfg.data_residual_ber = 0.0;
        cfg.ctrl_residual_ber = 0.0;
        let r = run_gbn(&cfg);
        assert_eq!(r.delivered_unique, 500);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn lams_lossy_channel_zero_loss() {
        let mut cfg = small(2000);
        cfg.data_residual_ber = 1e-5; // P_F ≈ 8%
        cfg.ctrl_residual_ber = 1e-6;
        let r = run_lams(&cfg);
        assert_eq!(r.lost, 0, "LAMS-DLC must provide zero packet loss");
        assert!(r.retransmissions > 0, "errors must have occurred");
        assert!(!r.deadline_hit);
    }

    #[test]
    fn sr_hdlc_lossy_channel_zero_loss() {
        let mut cfg = small(2000);
        cfg.data_residual_ber = 1e-5;
        cfg.ctrl_residual_ber = 1e-6;
        let r = run_sr(&cfg);
        assert_eq!(r.lost, 0);
        assert!(r.retransmissions > 0);
    }

    #[test]
    fn lams_faster_than_hdlc_at_saturation() {
        // The headline: at sustained load LAMS-DLC outperforms SR-HDLC.
        let mut cfg = small(20_000);
        cfg.data_residual_ber = 1e-6;
        cfg.ctrl_residual_ber = 1e-7;
        let lams = run_lams(&cfg);
        let sr = run_sr(&cfg);
        assert_eq!(lams.lost, 0);
        assert_eq!(sr.lost, 0);
        assert!(
            lams.efficiency() > sr.efficiency(),
            "lams={} sr={}",
            lams.efficiency(),
            sr.efficiency()
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let mut cfg = small(1000);
        cfg.data_residual_ber = 1e-5;
        let a = run_lams(&cfg);
        let b = run_lams(&cfg);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.retransmissions, b.retransmissions);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small(2000);
        cfg.data_residual_ber = 1e-5;
        let a = run_lams(&cfg);
        cfg.seed = 2;
        let b = run_lams(&cfg);
        assert_ne!(
            (a.retransmissions, a.finished_at),
            (b.retransmissions, b.finished_at)
        );
    }

    #[test]
    fn outage_recovers_without_loss() {
        // A short outage inside the run: enforced recovery brings the
        // link back; nothing may be lost.
        let mut cfg = small(3000);
        cfg.data_residual_ber = 0.0;
        cfg.ctrl_residual_ber = 0.0;
        cfg.outages.push(Outage {
            from: Instant::from_millis(30),
            until: Instant::from_millis(60),
        });
        let r = run_lams(&cfg);
        assert_eq!(r.lost, 0, "outage must not lose frames");
        assert!(!r.link_failed, "30 ms outage must be recoverable");
    }

    #[test]
    fn all_counters_follow_naming_convention() {
        // Workspace convention: every registered counter is
        // `crate.component.event` (see telemetry::is_canonical_name).
        let mut cfg = small(200);
        cfg.data_residual_ber = 1e-5;
        cfg.ctrl_residual_ber = 1e-6;
        for r in [run_lams(&cfg), run_sr(&cfg), run_gbn(&cfg)] {
            for reg in [&r.tx_extras, &r.rx_extras, &r.counters] {
                assert!(!reg.is_empty() || std::ptr::eq(reg, &r.counters));
                assert_eq!(
                    reg.non_canonical_names(),
                    Vec::<&str>::new(),
                    "protocol {}",
                    r.protocol
                );
            }
        }
    }

    #[test]
    fn analysis_params_derivation() {
        let cfg = ScenarioConfig::paper_default();
        let p = cfg.link_params();
        p.validate().unwrap();
        assert!((p.r - cfg.rtt().as_secs_f64()).abs() < 1e-12);
    }
}
