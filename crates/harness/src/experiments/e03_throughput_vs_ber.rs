//! E3 — throughput efficiency vs residual BER (the paper's stated
//! operating band 1e-7…1e-5, extended one decade each way).

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use analysis::throughput::{efficiency_hdlc, efficiency_lams};

/// BER sweep points.
pub const BERS: &[f64] = &[1e-8, 1e-7, 1e-6, 1e-5, 1e-4];

/// Run E3.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 3_000 } else { 20_000 };
    let mut table = Table::new(
        "throughput efficiency vs residual BER",
        &[
            "residual_ber",
            "eta_lams_analytic",
            "eta_hdlc_analytic",
            "eta_lams_sim",
            "eta_hdlc_sim",
        ],
    );
    let runs = parallel::map(BERS.to_vec(), |ber| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.data_residual_ber = ber;
        cfg.ctrl_residual_ber = ber / 10.0;
        (cfg.link_params(), run_lams(&cfg), run_sr(&cfg))
    });
    for (&ber, (p, lams, sr)) in BERS.iter().zip(runs) {
        table.row(vec![
            ber.into(),
            efficiency_lams(&p, n).into(),
            efficiency_hdlc(&p, n).into(),
            lams.efficiency().into(),
            sr.efficiency().into(),
        ]);
    }
    ExperimentOutput {
        id: "E3",
        title: "Throughput efficiency vs residual BER (paper §2.1 band)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: both decline with BER (∝ 1/s̄); LAMS stays above \
             HDLC everywhere; at 1e-4 the I-frame error probability nears \
             1 − (1−ber)^bits ≈ 0.57 and both degrade sharply"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_monotone_decline_and_dominance() {
        let out = run(true);
        let t = &out.tables[0];
        let mut last = f64::INFINITY;
        for row in 0..t.len() {
            let lams = t.value(row, 3).unwrap();
            let hdlc = t.value(row, 4).unwrap();
            assert!(lams > hdlc, "row {row}");
            assert!(lams <= last + 0.02, "efficiency must decline with BER");
            last = lams;
        }
    }
}
