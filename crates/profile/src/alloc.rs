//! A counting global allocator wrapper.
//!
//! [`CountingAlloc`] forwards to the system allocator and counts
//! allocation events and requested bytes in relaxed atomics — one
//! `fetch_add` pair per allocation, nothing on the free path. A binary
//! opts in by declaring it as its `#[global_allocator]` (the `bench`
//! crate does this behind its `alloc-profile` feature); everything else
//! pays nothing.
//!
//! [`snapshot`] reads the totals. It returns `None` until the first
//! counted allocation, which doubles as runtime detection: a binary
//! that never installed the wrapper reports "no allocation data" rather
//! than a misleading zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting totals at one instant; deltas between two snapshots bound
/// the allocation traffic of the code in between.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + realloc) since process start.
    pub allocs: u64,
    /// Bytes requested by those events.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counts accumulated since `earlier` (saturating).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Current totals, or `None` when no counting allocator is installed
/// in this binary (nothing was ever counted).
pub fn snapshot() -> Option<AllocSnapshot> {
    let allocs = ALLOCS.load(Relaxed);
    if allocs == 0 {
        return None;
    }
    Some(AllocSnapshot {
        allocs,
        bytes: BYTES.load(Relaxed),
    })
}

/// The wrapper allocator. Declare as the binary's global allocator:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: profile::alloc::CountingAlloc = profile::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: all methods delegate directly to `System`, which upholds the
// GlobalAlloc contract; the wrapper only adds relaxed atomic counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_saturates_and_counts() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 1000,
        };
        let b = AllocSnapshot {
            allocs: 14,
            bytes: 1500,
        };
        assert_eq!(
            b.since(&a),
            AllocSnapshot {
                allocs: 4,
                bytes: 500
            }
        );
        assert_eq!(a.since(&b), AllocSnapshot::default());
    }
}
