//! Enforced recovery and link-failure detection (§3.2).
//!
//! Injects outages of increasing length into a clean link and watches the
//! protocol respond: short outages are bridged by Request-NAK /
//! Enforced-NAK with zero loss; a permanent outage is declared a link
//! failure within the failure-timer bound and reported to the network
//! layer.
//!
//! Run with: `cargo run --release --example failure_recovery`

use harness::{run_lams, Outage, ScenarioConfig};
use sim_core::{Duration, Instant};

fn main() {
    let base = ScenarioConfig::paper_default();
    let lcfg = base.lams_config();
    println!("protocol timers at these settings:");
    println!(
        "  checkpoint timeout (C_depth*W_cp): {}",
        lcfg.checkpoint_timeout()
    );
    println!(
        "  failure timeout                  : {}",
        lcfg.failure_timeout()
    );
    println!(
        "  resolving period                 : {}",
        lcfg.resolving_period()
    );
    println!();
    println!(
        "{:>12} {:>11} {:>7} {:>11} {:>13} {:>8}",
        "outage", "delivered", "lost", "dup", "req-naks", "failed"
    );

    for outage_ms in [15u64, 40, 80, 1_000_000] {
        let recoverable = outage_ms <= 50;
        let mut cfg = base.clone();
        cfg.n_packets = 5_000;
        cfg.data_residual_ber = 1e-8;
        cfg.ctrl_residual_ber = 1e-9;
        cfg.outages.push(Outage {
            from: Instant::from_millis(25),
            until: Instant::from_millis(25 + outage_ms),
        });
        cfg.deadline = Duration::from_secs(60);
        let r = run_lams(&cfg);
        let label = if outage_ms >= 1_000_000 {
            "permanent".to_string()
        } else {
            format!("{outage_ms} ms")
        };
        println!(
            "{:>12} {:>11} {:>7} {:>11} {:>13} {:>8}",
            label,
            r.delivered_unique,
            r.lost,
            r.duplicates,
            r.extra("lams.sender.request_naks").unwrap_or(0.0) as u64,
            if r.link_failed { "yes" } else { "no" },
        );
        if recoverable {
            assert_eq!(r.lost, 0, "recoverable outage must not lose frames");
            assert!(
                !r.link_failed,
                "recoverable outage must not declare failure"
            );
        } else {
            assert!(r.link_failed, "unrecoverable outage must be detected");
        }
    }

    println!(
        "\noutages within the enforced-recovery window (~50 ms at these\n\
         timers) end with zero loss; longer ones are declared link failures\n\
         and surfaced to the network layer — never silent loss."
    );
}
