#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # fec
//!
//! Forward-error-correction and channel-error substrate for the LAMS-DLC
//! reproduction.
//!
//! §2.1 of the paper makes FEC "an integral component" of any DLC for the
//! laser inter-satellite link and builds on Paul et al.'s interleaved
//! convolutional codec; §2.2 assumption 4 requires *two* FEC grades (a
//! stronger one for control frames, since LAMS-DLC forbids piggybacking).
//! This crate implements the whole pipeline from scratch:
//!
//! * [`bits::BitBuf`] — a compact bit buffer, MSB-first;
//! * [`crc`] — CRC-16/X.25 (HDLC FCS) and CRC-32 frame checks (detectable
//!   errors, paper assumption 9);
//! * [`conv`] / [`viterbi`] — the K=7, rate-1/2 (171, 133) convolutional
//!   code with a hard-decision Viterbi decoder;
//! * [`interleave`] — block interleaver turning mispointing bursts into
//!   isolated errors;
//! * [`codec`] — the composed [`codec::LinkCodec`] pipeline and the
//!   analytic [`codec::FecGrade`] residual-BER model used by the fast
//!   simulation path and the closed-form analysis.
//!
//! The stochastic bit-error *processes* that drive these codecs in
//! simulation live in `netsim::channel`: they need the simulator's
//! clock and seeded RNG streams, while this crate stays host-agnostic
//! (the protocol crates use its CRCs on real I/O paths too).

pub mod bits;
pub mod codec;
pub mod conv;
pub mod crc;
pub mod interleave;
pub mod viterbi;

pub use bits::BitBuf;
pub use codec::{DecodeOutcome, FecGrade, LinkCodec};
pub use conv::{ConvCode, CCSDS_K7};
pub use crc::{Crc16Ccitt, Crc32};
pub use interleave::BlockInterleaver;
pub use viterbi::Viterbi;
