//! Run-level measurement collection.

use sim_core::stats::{Histogram, Series, Summary, TimeWeighted};
use sim_core::{Duration, Instant};
use std::collections::HashMap;

/// Everything measured over one scenario run.
pub struct RunReport {
    /// Protocol label ("lams", "sr-hdlc", "gbn-hdlc").
    pub protocol: String,
    /// SDUs offered by the traffic generator.
    pub offered: u64,
    /// Unique SDUs delivered (after deduplication).
    pub delivered_unique: u64,
    /// Duplicate deliveries observed (enforced-recovery or go-back
    /// replays that reached the top).
    pub duplicates: u64,
    /// SDUs never delivered by the end of the run.
    pub lost: u64,
    /// Instant the last unique SDU was delivered (or the run end).
    pub finished_at: Instant,
    /// True if the run hit the deadline before completing.
    pub deadline_hit: bool,
    /// True if the sender declared link failure.
    pub link_failed: bool,
    /// Link-level delivery delay: SDU push → receiver delivery
    /// (out-of-order allowed), seconds.
    pub delay: Summary,
    /// End-to-end in-order delay: SDU push → in-order release at the
    /// destination resequencer, seconds.
    pub e2e_delay: Summary,
    /// Distribution of the in-order delay (histogram over [0, 2 s),
    /// 400 bins of 5 ms — quantiles via [`Histogram::quantile`]).
    pub e2e_delay_hist: Histogram,
    /// Sender-side holding times of released frames, seconds.
    pub holding: Summary,
    /// Sender-buffer occupancy trace, frames.
    pub tx_buffer: Series,
    /// Mean/peak of the sender buffer (time-weighted).
    pub tx_buffer_tw: TimeWeighted,
    /// Receiver-side buffer occupancy trace, frames.
    pub rx_buffer: Series,
    /// Destination resequencer occupancy trace, frames.
    pub reseq_buffer: Series,
    /// Flow-controlled sending-rate trace.
    pub rate: Series,
    /// Total I-frame transmissions.
    pub transmissions: u64,
    /// Of which retransmissions.
    pub retransmissions: u64,
    /// Serialization time of one I-frame on this link (channel bits), s.
    pub t_f_channel: f64,
    /// Peak resequencer occupancy.
    pub reseq_peak: usize,
    /// Protocol-specific sender counters.
    pub tx_extras: Vec<(&'static str, f64)>,
    /// Protocol-specific receiver counters.
    pub rx_extras: Vec<(&'static str, f64)>,
}

impl RunReport {
    /// Look up a protocol-specific counter by name (sender first).
    pub fn extra(&self, name: &str) -> Option<f64> {
        self.tx_extras
            .iter()
            .chain(&self.rx_extras)
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

impl RunReport {
    /// Wall-clock of the run in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.finished_at.as_secs_f64()
    }

    /// Delivered throughput in frames per second.
    pub fn throughput_fps(&self) -> f64 {
        if self.elapsed_s() <= 0.0 {
            0.0
        } else {
            self.delivered_unique as f64 / self.elapsed_s()
        }
    }

    /// Normalised efficiency: fraction of the line occupied by *unique*
    /// user I-frames, `delivered · t_f / elapsed` (directly comparable to
    /// the analysis crate's `η·t_f`).
    pub fn efficiency(&self) -> f64 {
        self.throughput_fps() * self.t_f_channel
    }

    /// Retransmission overhead ratio: retransmissions per delivered frame.
    pub fn retransmission_ratio(&self) -> f64 {
        if self.delivered_unique == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.delivered_unique as f64
        }
    }
}

/// Accumulates measurements during a run.
pub struct Collector {
    push_times: HashMap<u64, Instant>,
    delivered: HashMap<u64, Instant>,
    resequencer: lams_dlc::Resequencer,
    /// Delay push → delivery.
    pub delay: Summary,
    /// Delay push → in-order release.
    pub e2e_delay: Summary,
    /// In-order delay distribution.
    pub e2e_delay_hist: Histogram,
    /// Holding-time samples.
    pub holding: Summary,
    /// Occupancy traces.
    pub tx_buffer: Series,
    /// Time-weighted sender-buffer stats.
    pub tx_buffer_tw: TimeWeighted,
    /// Receive-buffer trace.
    pub rx_buffer: Series,
    /// Resequencer trace.
    pub reseq_buffer: Series,
    /// Rate trace.
    pub rate: Series,
    duplicates: u64,
}

impl Collector {
    /// Fresh collector starting at t = 0.
    pub fn new() -> Self {
        Collector {
            push_times: HashMap::new(),
            delivered: HashMap::new(),
            resequencer: lams_dlc::Resequencer::new(0),
            delay: Summary::new(),
            e2e_delay: Summary::new(),
            e2e_delay_hist: Histogram::new(0.0, 2.0, 400),
            holding: Summary::new(),
            tx_buffer: Series::new("tx_buffer_frames"),
            tx_buffer_tw: TimeWeighted::new(Instant::ZERO, 0.0),
            rx_buffer: Series::new("rx_buffer_frames"),
            reseq_buffer: Series::new("resequencer_frames"),
            rate: Series::new("send_rate_fraction"),
            duplicates: 0,
        }
    }

    /// Record an SDU entering the sender.
    pub fn on_push(&mut self, now: Instant, id: u64) {
        self.push_times.insert(id, now);
    }

    /// Record a receiver delivery; runs the destination resequencer for
    /// dedup + in-order accounting.
    pub fn on_deliver(&mut self, now: Instant, id: u64) {
        let pushed = self.push_times.get(&id).copied();
        if self.delivered.contains_key(&id) {
            self.duplicates += 1;
            return;
        }
        self.delivered.insert(id, now);
        if let Some(p) = pushed {
            self.delay.record(now.duration_since(p).as_secs_f64());
        }
        let released =
            self.resequencer.offer(lams_dlc::PacketId(id), bytes::Bytes::new());
        for (rid, _) in released {
            if let Some(p) = self.push_times.get(&rid.0) {
                let d = now.duration_since(*p).as_secs_f64();
                self.e2e_delay.record(d);
                self.e2e_delay_hist.record(d);
            }
        }
    }

    /// Record a batch of holding-time samples (seconds).
    pub fn on_holding(&mut self, samples: &[f64]) {
        for &h in samples {
            self.holding.record(h);
        }
    }

    /// Sample the occupancy traces.
    pub fn sample(&mut self, now: Instant, tx_buf: usize, rx_buf: usize, rate: f64) {
        self.tx_buffer.push(now, tx_buf as f64);
        self.tx_buffer_tw.set(now, tx_buf as f64);
        self.rx_buffer.push(now, rx_buf as f64);
        self.reseq_buffer.push(now, self.resequencer.buffered() as f64);
        self.rate.push(now, rate);
    }

    /// Unique deliveries so far.
    pub fn delivered_unique(&self) -> u64 {
        self.delivered.len() as u64
    }

    /// Duplicate deliveries so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// In-order releases so far.
    pub fn released_in_order(&self) -> u64 {
        self.resequencer.stats().released
    }

    /// Finalize into a report.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        self,
        protocol: &str,
        offered: u64,
        finished_at: Instant,
        deadline_hit: bool,
        link_failed: bool,
        transmissions: u64,
        retransmissions: u64,
        t_f_channel: Duration,
        tx_extras: Vec<(&'static str, f64)>,
        rx_extras: Vec<(&'static str, f64)>,
    ) -> RunReport {
        let delivered_unique = self.delivered.len() as u64;
        let reseq_peak = self.resequencer.stats().peak_buffered;
        RunReport {
            protocol: protocol.to_string(),
            offered,
            delivered_unique,
            duplicates: self.duplicates(),
            lost: offered - delivered_unique,
            finished_at,
            deadline_hit,
            link_failed,
            delay: self.delay,
            e2e_delay: self.e2e_delay,
            e2e_delay_hist: self.e2e_delay_hist,
            holding: self.holding,
            tx_buffer: self.tx_buffer,
            tx_buffer_tw: self.tx_buffer_tw,
            rx_buffer: self.rx_buffer,
            reseq_buffer: self.reseq_buffer,
            rate: self.rate,
            transmissions,
            retransmissions,
            t_f_channel: t_f_channel.as_secs_f64(),
            reseq_peak,
            tx_extras,
            rx_extras,
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut c = Collector::new();
        c.on_push(Instant::ZERO, 0);
        c.on_push(Instant::ZERO, 1);
        c.on_deliver(Instant::from_millis(10), 1); // out of order
        c.on_deliver(Instant::from_millis(12), 0);
        c.on_deliver(Instant::from_millis(13), 0); // duplicate
        assert_eq!(c.delivered_unique(), 2);
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.released_in_order(), 2);
        assert_eq!(c.delay.count(), 2);
        // e2e delays recorded at release time: both released at 12 ms.
        assert_eq!(c.e2e_delay.count(), 2);
        assert!(c.e2e_delay.min().unwrap() >= 0.012 - 1e-12);
    }

    #[test]
    fn report_ratios() {
        let mut c = Collector::new();
        c.on_push(Instant::ZERO, 0);
        c.on_deliver(Instant::from_millis(1), 0);
        let r = c.finish(
            "lams",
            1,
            Instant::from_millis(1),
            false,
            false,
            3,
            2,
            Duration::from_micros(50),
            vec![("request_naks", 1.0)],
            vec![],
        );
        assert_eq!(r.delivered_unique, 1);
        assert_eq!(r.lost, 0);
        assert!((r.throughput_fps() - 1000.0).abs() < 1e-6);
        assert!((r.efficiency() - 0.05).abs() < 1e-9);
        assert_eq!(r.retransmission_ratio(), 2.0);
        assert_eq!(r.extra("request_naks"), Some(1.0));
    }

    #[test]
    fn zero_elapsed_guard() {
        let c = Collector::new();
        let r = c.finish(
            "x",
            0,
            Instant::ZERO,
            false,
            false,
            0,
            0,
            Duration::ZERO,
            vec![],
            vec![],
        );
        assert_eq!(r.throughput_fps(), 0.0);
        assert_eq!(r.retransmission_ratio(), 0.0);
        assert_eq!(r.extra("anything"), None);
    }
}
