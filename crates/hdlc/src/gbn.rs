//! Go-Back-N HDLC (the REJ-based variant referenced in §1/§2).
//!
//! The receiver accepts only the in-sequence frame and discards everything
//! after a loss; a single REJ rewinds the sender to the missing number.
//! Included as the second baseline: the paper notes GBN is "often
//! preferred despite its inferior performance" under strict reliability,
//! and on long fat links it discards a full link-frame-length of good
//! frames per error (§2.3).

use crate::config::HdlcConfig;
use crate::frame::{HdlcFrame, RxStatus};
use bytes::Bytes;
use proto_core::Instant;
use proto_core::{Trace, TraceEvent};
use std::collections::{BTreeMap, VecDeque};

/// Counters for the GBN sender.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GbnSenderStats {
    /// First transmissions.
    pub new_transmissions: u64,
    /// Retransmissions (REJ- or timeout-triggered).
    pub retransmissions: u64,
    /// Timeout expirations.
    pub timeouts: u64,
    /// Frames released by RR.
    pub released: u64,
    /// REJ frames processed.
    pub rejs: u64,
    /// Corrupted supervisory frames dropped.
    pub rx_corrupted: u64,
}

/// The GBN sending endpoint.
pub struct GbnSender {
    cfg: HdlcConfig,
    base: u64,
    next: u64,
    /// Next number to (re)send; rewound by REJ/timeout. Invariant:
    /// `base ≤ cursor ≤ next`.
    cursor: u64,
    outstanding: BTreeMap<u64, (u64, Bytes, Instant)>,
    queue: VecDeque<(u64, Bytes)>,
    timer: Option<Instant>,
    next_tx_allowed: Instant,
    stats: GbnSenderStats,
    trace: Trace,
}

impl GbnSender {
    /// Create a sender; call [`GbnSender::start`] when the link is up.
    pub fn new(cfg: HdlcConfig) -> Self {
        cfg.validate().expect("invalid HdlcConfig");
        GbnSender {
            cfg,
            base: 0,
            next: 0,
            cursor: 0,
            outstanding: BTreeMap::new(),
            queue: VecDeque::new(),
            timer: None,
            next_tx_allowed: Instant::ZERO,
            stats: GbnSenderStats::default(),
            trace: Trace::disabled(),
        }
    }

    /// Mark the link active.
    pub fn start(&mut self, now: Instant) {
        self.next_tx_allowed = now;
    }

    /// Accept an SDU.
    pub fn push(&mut self, packet_id: u64, payload: Bytes) {
        self.queue.push_back((packet_id, payload));
    }

    /// Counters.
    pub fn stats(&self) -> GbnSenderStats {
        self.stats
    }

    /// Total sending-buffer occupancy.
    pub fn buffered(&self) -> usize {
        self.queue.len() + self.outstanding.len()
    }

    fn window_open(&self) -> bool {
        self.next < self.base + self.cfg.window as u64
    }

    fn has_transmittable(&self) -> bool {
        self.cursor < self.next || (!self.queue.is_empty() && self.window_open())
    }

    /// Earliest instant of pending work.
    pub fn poll_timeout(&self) -> Option<Instant> {
        let mut t = self.timer;
        if self.has_transmittable() {
            t = Some(t.map_or(self.next_tx_allowed, |x| x.min(self.next_tx_allowed)));
        }
        t
    }

    /// Timeout: go back to `base` and resend the whole window.
    pub fn on_timeout(&mut self, now: Instant) {
        if let Some(t) = self.timer {
            if now >= t {
                self.stats.timeouts += 1;
                self.trace.emit(now, || TraceEvent::Control {
                    kind: "timeout",
                    seq: self.base,
                });
                self.cursor = self.base;
                self.timer = Some(now + self.cfg.t_out);
            }
        }
    }

    /// Produce the next outbound frame.
    pub fn poll_transmit(&mut self, now: Instant) -> Option<HdlcFrame> {
        if now < self.next_tx_allowed {
            return None;
        }
        // Resend pass (cursor behind next).
        if self.cursor < self.next {
            let ns = self.cursor;
            self.cursor += 1;
            let (packet_id, payload, _) = self.outstanding.get(&ns)?.clone();
            self.stats.retransmissions += 1;
            self.trace.emit(now, || TraceEvent::IFrameTx {
                seq: ns,
                retx: true,
                len: payload.len() as u64,
            });
            self.next_tx_allowed = now + self.cfg.t_f;
            self.timer = Some(now + self.cfg.t_out);
            let poll = !self.has_transmittable();
            return Some(HdlcFrame::Info {
                ns,
                packet_id,
                poll,
                payload,
            });
        }
        if self.window_open() {
            if let Some((packet_id, payload)) = self.queue.pop_front() {
                let ns = self.next;
                self.next += 1;
                self.cursor = self.next;
                self.outstanding
                    .insert(ns, (packet_id, payload.clone(), now));
                self.stats.new_transmissions += 1;
                self.trace.emit(now, || TraceEvent::IFrameTx {
                    seq: ns,
                    retx: false,
                    len: payload.len() as u64,
                });
                self.next_tx_allowed = now + self.cfg.t_f;
                // Timeout clock runs from the most recent transmission.
                self.timer = Some(now + self.cfg.t_out);
                let poll = !self.has_transmittable();
                return Some(HdlcFrame::Info {
                    ns,
                    packet_id,
                    poll,
                    payload,
                });
            }
        }
        None
    }

    /// Inject a received supervisory frame.
    pub fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        if status != RxStatus::Ok {
            self.stats.rx_corrupted += 1;
            return;
        }
        match frame {
            HdlcFrame::Rr { nr, .. } => {
                let acked: Vec<u64> = self.outstanding.range(..nr).map(|(&s, _)| s).collect();
                for ns in acked {
                    self.outstanding.remove(&ns);
                    self.stats.released += 1;
                }
                self.base = self.base.max(nr);
                self.cursor = self.cursor.max(self.base);
                self.timer = if self.outstanding.is_empty() {
                    None
                } else {
                    Some(now + self.cfg.t_out)
                };
            }
            HdlcFrame::Rej { nr } => {
                self.stats.rejs += 1;
                self.trace.emit(now, || TraceEvent::Control {
                    kind: "rej",
                    seq: nr,
                });
                // Cumulative ack below nr, then go back.
                let acked: Vec<u64> = self.outstanding.range(..nr).map(|(&s, _)| s).collect();
                for ns in acked {
                    self.outstanding.remove(&ns);
                    self.stats.released += 1;
                }
                self.base = self.base.max(nr);
                if nr < self.next {
                    self.cursor = nr;
                }
            }
            HdlcFrame::Srej { .. } | HdlcFrame::Info { .. } => {}
        }
    }
}

/// Counters for the GBN receiver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GbnReceiverStats {
    /// In-sequence frames delivered.
    pub delivered: u64,
    /// Out-of-sequence or corrupted frames discarded — the §2.3 "waste":
    /// uncorrupted frames thrown away because an earlier one was lost.
    pub discarded: u64,
    /// REJ frames emitted.
    pub rejs_sent: u64,
    /// RRs emitted.
    pub rrs_sent: u64,
}

/// The GBN receiving endpoint: in-sequence only, no resequencing buffer.
pub struct GbnReceiver {
    cfg: HdlcConfig,
    expected: u64,
    /// One REJ per go-back episode.
    rej_outstanding: bool,
    pending_tx: VecDeque<HdlcFrame>,
    processing: VecDeque<crate::sr_receiver::SrDelivery>,
    server_free_at: Instant,
    stats: GbnReceiverStats,
    trace: Trace,
}

impl GbnReceiver {
    /// Create a receiver.
    pub fn new(cfg: HdlcConfig) -> Self {
        cfg.validate().expect("invalid HdlcConfig");
        GbnReceiver {
            cfg,
            expected: 0,
            rej_outstanding: false,
            pending_tx: VecDeque::new(),
            processing: VecDeque::new(),
            server_free_at: Instant::ZERO,
            stats: GbnReceiverStats::default(),
            trace: Trace::disabled(),
        }
    }

    /// Mark the link active.
    pub fn start(&mut self, now: Instant) {
        self.server_free_at = now;
    }

    /// Counters.
    pub fn stats(&self) -> GbnReceiverStats {
        self.stats
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Earliest processing completion.
    pub fn poll_timeout(&self) -> Option<Instant> {
        self.processing.front().map(|d| d.ready_at)
    }

    /// No timers; driver symmetry.
    pub fn on_timeout(&mut self, _now: Instant) {}

    /// Drain outbound supervisory frames.
    pub fn poll_transmit(&mut self, _now: Instant) -> Option<HdlcFrame> {
        self.pending_tx.pop_front()
    }

    /// Pop the next completed delivery.
    pub fn poll_deliver(&mut self, now: Instant) -> Option<crate::sr_receiver::SrDelivery> {
        if self.processing.front().is_some_and(|d| d.ready_at <= now) {
            self.processing.pop_front()
        } else {
            None
        }
    }

    /// Inject a frame.
    pub fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        let HdlcFrame::Info {
            ns,
            packet_id,
            poll,
            payload,
        } = frame
        else {
            return;
        };
        self.trace.emit(now, || TraceEvent::IFrameRx {
            seq: ns,
            clean: status == RxStatus::Ok,
            len: payload.len() as u64,
        });
        let accept = status == RxStatus::Ok && ns == self.expected;
        if accept {
            let start = self.server_free_at.max(now);
            let ready_at = start + self.cfg.t_proc;
            self.server_free_at = ready_at;
            self.processing.push_back(crate::sr_receiver::SrDelivery {
                packet_id,
                ns,
                payload,
                ready_at,
            });
            self.stats.delivered += 1;
            self.expected += 1;
            self.rej_outstanding = false;
        } else {
            self.stats.discarded += 1;
            // One REJ per episode, only for frames beyond the expected one
            // (a stale duplicate needs no REJ).
            if ns >= self.expected && !self.rej_outstanding {
                self.rej_outstanding = true;
                self.stats.rejs_sent += 1;
                self.trace.emit(now, || TraceEvent::Control {
                    kind: "rej",
                    seq: self.expected,
                });
                self.pending_tx
                    .push_back(HdlcFrame::Rej { nr: self.expected });
            }
        }
        if poll {
            self.stats.rrs_sent += 1;
            self.trace.emit(now, || TraceEvent::Control {
                kind: "rr",
                seq: self.expected,
            });
            self.pending_tx.push_back(HdlcFrame::Rr {
                nr: self.expected,
                fin: true,
            });
        }
    }
}

impl proto_core::Machine for GbnSender {
    type Frame = HdlcFrame;
    type Event = ();

    fn start(&mut self, now: Instant) {
        GbnSender::start(self, now);
    }

    fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        GbnSender::handle_frame(self, now, frame, status);
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<HdlcFrame> {
        GbnSender::poll_transmit(self, now)
    }

    fn poll_timeout(&self) -> Option<Instant> {
        GbnSender::poll_timeout(self)
    }

    fn on_timeout(&mut self, now: Instant) {
        GbnSender::on_timeout(self, now);
    }

    fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }
}

impl proto_core::SenderMachine for GbnSender {
    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        GbnSender::push(self, id, payload);
        true
    }

    fn buffered(&self) -> usize {
        GbnSender::buffered(self)
    }

    fn transmissions(&self) -> u64 {
        let s = self.stats();
        s.new_transmissions + s.retransmissions
    }

    fn retransmissions(&self) -> u64 {
        self.stats().retransmissions
    }

    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        let s = self.stats();
        vec![
            ("hdlc.gbn_sender.timeouts", s.timeouts as f64),
            ("hdlc.gbn_sender.rejs_processed", s.rejs as f64),
        ]
    }
}

impl proto_core::Machine for GbnReceiver {
    type Frame = HdlcFrame;
    type Event = ();

    fn start(&mut self, now: Instant) {
        GbnReceiver::start(self, now);
    }

    fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        GbnReceiver::handle_frame(self, now, frame, status);
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<HdlcFrame> {
        GbnReceiver::poll_transmit(self, now)
    }

    fn poll_timeout(&self) -> Option<Instant> {
        GbnReceiver::poll_timeout(self)
    }

    fn on_timeout(&mut self, now: Instant) {
        GbnReceiver::on_timeout(self, now);
    }

    fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }
}

impl proto_core::ReceiverMachine for GbnReceiver {
    fn poll_deliver(&mut self, now: Instant) -> Option<proto_core::Delivered> {
        GbnReceiver::poll_deliver(self, now).map(|d| proto_core::Delivered {
            id: d.packet_id,
            payload: d.payload,
        })
    }

    fn occupancy(&self) -> usize {
        0 // GBN holds nothing out of order
    }

    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        let s = self.stats();
        vec![
            ("hdlc.gbn_receiver.discarded", s.discarded as f64),
            ("hdlc.gbn_receiver.rejs_sent", s.rejs_sent as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proto_core::Duration;

    fn cfg() -> HdlcConfig {
        let mut c = HdlcConfig::paper_default();
        c.window = 4;
        c.seq_bits = 3;
        c
    }

    fn info(ns: u64, poll: bool) -> HdlcFrame {
        HdlcFrame::Info {
            ns,
            packet_id: ns,
            poll,
            payload: Bytes::from_static(b"p"),
        }
    }

    fn drain_tx(s: &mut GbnSender, now: &mut Instant) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            match s.poll_transmit(*now) {
                Some(HdlcFrame::Info { ns, .. }) => out.push(ns),
                Some(_) => {}
                None => match s.poll_timeout() {
                    Some(t) if t > *now && s.has_transmittable() => *now = t,
                    _ => break,
                },
            }
        }
        out
    }

    #[test]
    fn sender_fills_window() {
        let mut s = GbnSender::new(cfg());
        s.start(Instant::ZERO);
        for i in 0..6 {
            s.push(i, Bytes::new());
        }
        let mut now = Instant::ZERO;
        assert_eq!(drain_tx(&mut s, &mut now), vec![0, 1, 2, 3]);
        assert_eq!(s.buffered(), 6);
    }

    #[test]
    fn rej_goes_back() {
        let mut s = GbnSender::new(cfg());
        s.start(Instant::ZERO);
        for i in 0..3 {
            s.push(i, Bytes::new());
        }
        let mut now = Instant::ZERO;
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, HdlcFrame::Rej { nr: 1 }, RxStatus::Ok);
        assert_eq!(s.stats().released, 1, "REJ acks below nr");
        let resent = drain_tx(&mut s, &mut now);
        assert_eq!(resent, vec![1, 2], "goes back to nr and resends all");
        assert_eq!(s.stats().retransmissions, 2);
    }

    #[test]
    fn timeout_resends_window() {
        let mut s = GbnSender::new(cfg());
        s.start(Instant::ZERO);
        s.push(0, Bytes::new());
        s.push(1, Bytes::new());
        let mut now = Instant::ZERO;
        drain_tx(&mut s, &mut now);
        let t = s.poll_timeout().unwrap();
        s.on_timeout(t);
        let mut t2 = t;
        assert_eq!(drain_tx(&mut s, &mut t2), vec![0, 1]);
        assert_eq!(s.stats().timeouts, 1);
    }

    #[test]
    fn receiver_accepts_in_order_only() {
        let mut r = GbnReceiver::new(cfg());
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(2, false), RxStatus::Ok); // 1 lost → discard 2
        r.handle_frame(now, info(3, false), RxStatus::Ok); // discard 3 too
        assert_eq!(r.stats().delivered, 1);
        assert_eq!(r.stats().discarded, 2, "good frames wasted — §2.3");
        // Single REJ for the episode.
        let tx: Vec<HdlcFrame> = std::iter::from_fn(|| r.poll_transmit(now)).collect();
        assert_eq!(tx, vec![HdlcFrame::Rej { nr: 1 }]);
    }

    #[test]
    fn rej_episode_resets_after_recovery() {
        let mut r = GbnReceiver::new(cfg());
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(1, false), RxStatus::Ok); // REJ 0
        r.handle_frame(now, info(0, false), RxStatus::Ok); // recovers
        r.handle_frame(now, info(1, false), RxStatus::Ok); // go-back replay
        r.handle_frame(now, info(2, false), RxStatus::Ok);
        r.handle_frame(now, info(4, false), RxStatus::Ok); // new episode → REJ 3
        let rejs: Vec<HdlcFrame> = std::iter::from_fn(|| r.poll_transmit(now))
            .filter(|f| matches!(f, HdlcFrame::Rej { .. }))
            .collect();
        assert_eq!(
            rejs,
            vec![HdlcFrame::Rej { nr: 0 }, HdlcFrame::Rej { nr: 3 }]
        );
    }

    #[test]
    fn corrupted_in_order_frame_discarded_and_rejd() {
        let mut r = GbnReceiver::new(cfg());
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(0, false), RxStatus::PayloadCorrupted);
        assert_eq!(r.stats().delivered, 0);
        let tx: Vec<HdlcFrame> = std::iter::from_fn(|| r.poll_transmit(now)).collect();
        assert_eq!(tx, vec![HdlcFrame::Rej { nr: 0 }]);
    }

    #[test]
    fn poll_answered_with_rr() {
        let mut r = GbnReceiver::new(cfg());
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(0, true), RxStatus::Ok);
        let tx: Vec<HdlcFrame> = std::iter::from_fn(|| r.poll_transmit(now)).collect();
        assert_eq!(tx, vec![HdlcFrame::Rr { nr: 1, fin: true }]);
    }

    #[test]
    fn end_to_end_gbn_recovery() {
        // Lose frame 1 once; verify everything is eventually delivered in
        // order through REJ recovery.
        let mut s = GbnSender::new(cfg());
        let mut r = GbnReceiver::new(cfg());
        let mut now = Instant::ZERO;
        s.start(now);
        r.start(now);
        for i in 0..4 {
            s.push(i, Bytes::new());
        }
        let mut lost_once = false;
        let mut delivered = Vec::new();
        for _ in 0..200 {
            if let Some(f) = s.poll_transmit(now) {
                let drop = matches!(f, HdlcFrame::Info { ns: 1, .. }) && !lost_once;
                if drop {
                    lost_once = true;
                } else {
                    r.handle_frame(now, f, RxStatus::Ok);
                }
            }
            while let Some(f) = r.poll_transmit(now) {
                s.handle_frame(now, f, RxStatus::Ok);
            }
            while let Some(d) = r.poll_deliver(now) {
                delivered.push(d.ns);
            }
            s.on_timeout(now);
            now += Duration::from_micros(50);
        }
        assert_eq!(delivered, vec![0, 1, 2, 3]);
    }
}

// ------------------------------------------------------------ sans-IO host contract
