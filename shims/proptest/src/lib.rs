//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the `proptest!` macro running
//! each property over a deterministic stream of random cases, numeric
//! range strategies, `num::*::ANY` / `bool::ANY`, `collection::vec`,
//! tuple strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message (the case seed is deterministic, so reruns reproduce it);
//! * cases are seeded from the property's name, so runs are stable
//!   across processes without a persistence file.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a over a test name, for a stable per-property seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Strategy yielding any value of a primitive type.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty => $body:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $body;
                f(rng)
            }
        }
    )*};
}
impl_any!(
    u8 => |r| (r.next_u64() >> 56) as u8,
    u16 => |r| (r.next_u64() >> 48) as u16,
    u32 => |r| (r.next_u64() >> 32) as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    bool => |r| r.next_u64() & 1 == 1
);

/// `proptest::bool::ANY`.
pub mod bool {
    /// Any boolean.
    pub const ANY: super::Any<bool> = super::Any(std::marker::PhantomData);
}

/// `proptest::num::<ty>::ANY`.
pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// Strategies for one primitive type.
            pub mod $m {
                /// Any value of the type.
                pub const ANY: crate::Any<$t> = crate::Any(std::marker::PhantomData);
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` of `element` values with length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Assert inside a property; formats like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property; formats like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property; formats like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define properties, each run over `cases` random inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn prop_roundtrip(x in 0u64..100, ys in proptest::collection::vec(0u8..255, 0..64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let run = || {
                    $body
                };
                run();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(
            a in 3u64..17,
            b in -5i64..=5,
            x in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            xs in crate::collection::vec(crate::num::u8::ANY, 2..9),
        ) {
            prop_assert!((2..9).contains(&xs.len()));
        }

        #[test]
        fn tuples_generate(pair in (0u64..4, 10u64..14)) {
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_of("x"), crate::seed_of("x"));
        assert_ne!(crate::seed_of("x"), crate::seed_of("y"));
    }

    #[test]
    fn cases_vary() {
        let base = crate::seed_of("vary");
        let mut seen = std::collections::HashSet::new();
        for case in 0..32u64 {
            let mut rng = crate::TestRng::new(base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
            seen.insert(rng.next_u64());
        }
        assert_eq!(seen.len(), 32);
    }
}
