//! Physical constants used by the orbital geometry model.

/// Mean Earth radius, km.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Earth's gravitational parameter μ = GM, km³/s².
#[allow(clippy::inconsistent_digit_grouping)]
pub const MU_EARTH: f64 = 398_600.4418;

/// Speed of light in vacuum, km/s (laser links travel through free space,
/// so no refractive correction applies — paper §1).
pub const C_KM_S: f64 = 299_792.458;

/// Minimum grazing altitude for an inter-satellite line of sight, km.
/// Links whose chord dips below this above the Earth's surface are
/// considered blocked (atmospheric attenuation ruins a laser link well
/// above 0 km altitude).
pub const GRAZING_ALTITUDE_KM: f64 = 80.0;

/// One-way propagation delay in seconds for a range in km.
pub fn propagation_delay_s(range_km: f64) -> f64 {
    range_km / C_KM_S
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_delay_matches_paper_ranges() {
        // Paper §2.1: 2,000–10,000 km links ⇒ ~6.7–33.4 ms one way.
        let d1 = propagation_delay_s(2000.0);
        let d2 = propagation_delay_s(10_000.0);
        assert!((d1 - 6.67e-3).abs() < 1e-4, "d1={d1}");
        assert!((d2 - 33.4e-3).abs() < 2e-4, "d2={d2}");
    }
}
