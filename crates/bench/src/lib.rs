//! Benchmark-only crate; see the `benches/` directory. Empty on purpose.
