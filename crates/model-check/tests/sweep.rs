//! The acceptance sweep: 1000 derived adversarial schedules, zero
//! invariant violations, and a sanity floor on how many complete.

use model_check::run_sweep;

#[test]
fn thousand_schedules_zero_violations() {
    let report = run_sweep(1000);
    assert!(
        report.violations.is_empty(),
        "invariant violations: {:#?}",
        report.violations
    );
    assert_eq!(report.complete + report.link_failures, 1000);
    // Link failure is only legitimate under a severing adversary, and
    // even then most schedules should push everything through.
    assert!(
        report.complete >= 900,
        "too few schedules completed: {} (link failures {})",
        report.complete,
        report.link_failures
    );
    assert!(
        report.retransmissions > 0,
        "the sweep must exercise the recovery path"
    );
}
