#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # lams-dlc-io
//!
//! A real-socket host for the sans-IO LAMS-DLC state machines: proof
//! that `lams_dlc::{Sender, Receiver}` run unchanged outside the
//! discrete-event simulator. The [`run_loopback`] transfer drives one
//! sender/receiver pair over a pair of connected loopback UDP sockets,
//! using the byte-level [`lams_dlc::wire`] codec for framing and the
//! wall clock (mapped onto [`proto_core::Instant`]) for time.
//!
//! The host is deliberately dumb: it moves datagrams, fires the
//! machines' timers when their `poll_timeout` deadlines pass, and
//! injects a deterministic loss pattern (every `drop_every`-th
//! information frame is discarded before the socket send) so the ARQ
//! recovery path is exercised on real I/O, not just under simulation.
//!
//! The machines hold `Rc`-based trace handles and are therefore not
//! `Send`; both endpoints run on one thread, which a single-link UDP
//! demo never notices.

use bytes::Bytes;
use lams_dlc::{
    wire, Frame, LamsConfig, PacketId, Receiver, Resequencer, RxStatus, Sender, SenderState,
};
use proto_core::Instant;
use std::io::ErrorKind;
use std::net::UdpSocket;
use std::time::{Duration as WallDuration, Instant as WallInstant};

/// Parameters of one loopback transfer.
#[derive(Clone, Debug)]
pub struct IoConfig {
    /// Number of SDUs to transfer (packet ids `0..sdus`).
    pub sdus: u64,
    /// Payload length of each SDU in bytes.
    pub payload_len: usize,
    /// Drop every `drop_every`-th information frame before it reaches
    /// the socket (counting both first transmissions and
    /// retransmissions). `0` disables loss injection.
    pub drop_every: u64,
    /// Wall-clock budget for the whole transfer; exceeding it is an
    /// error (the machines should finish a loopback run in well under a
    /// second).
    pub timeout: WallDuration,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            sdus: 200,
            payload_len: 64,
            drop_every: 7,
            timeout: WallDuration::from_secs(30),
        }
    }
}

/// Outcome of a completed loopback transfer.
#[derive(Clone, Debug)]
pub struct IoSummary {
    /// SDUs delivered in order at the receiving application (always
    /// equals [`IoConfig::sdus`] on success).
    pub delivered: u64,
    /// Information frames discarded by the loss injector.
    pub drops_injected: u64,
    /// Datagrams actually written to the data-direction socket.
    pub datagrams_sent: u64,
    /// Feedback datagrams written by the receiver side.
    pub feedback_sent: u64,
    /// Sender retransmissions (should be ≥ `drops_injected` when loss
    /// injection is on — every dropped frame needs at least one).
    pub retransmissions: u64,
    /// Wall-clock duration of the transfer.
    pub wall: WallDuration,
}

/// A [`LamsConfig`] suited to a loopback link: the paper's checkpoint
/// cadence and cumulation depth, with the expected round-trip shrunk
/// from the 4,000 km orbital value to a couple of milliseconds so the
/// recovery deadlines match the actual medium.
pub fn loopback_config() -> LamsConfig {
    let cfg = LamsConfig {
        expected_rtt: proto_core::Duration::from_millis(2),
        deadline_slack: proto_core::Duration::from_millis(2),
        ..LamsConfig::paper_default()
    };
    cfg.validate().expect("loopback config must validate");
    cfg
}

fn io_err(what: &str, e: std::io::Error) -> String {
    format!("{what}: {e}")
}

/// Run one sender→receiver transfer over real loopback UDP.
///
/// Returns an error if the transfer does not complete within
/// [`IoConfig::timeout`], if delivery order is ever violated, or if the
/// sender declares link failure.
pub fn run_loopback(cfg: &IoConfig) -> Result<IoSummary, String> {
    // Two connected UDP sockets on ephemeral loopback ports: `a` is the
    // sender's network interface, `b` the receiver's.
    let a = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| io_err("bind a", e))?;
    let b = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| io_err("bind b", e))?;
    a.connect(b.local_addr().map_err(|e| io_err("addr b", e))?)
        .map_err(|e| io_err("connect a", e))?;
    b.connect(a.local_addr().map_err(|e| io_err("addr a", e))?)
        .map_err(|e| io_err("connect b", e))?;
    a.set_nonblocking(true)
        .map_err(|e| io_err("nonblock a", e))?;
    b.set_nonblocking(true)
        .map_err(|e| io_err("nonblock b", e))?;

    let lcfg = loopback_config();
    let modulus = lcfg.seq_modulus();
    let mut sender = Sender::new(lcfg.clone());
    let mut receiver = Receiver::new(lcfg);

    let epoch = WallInstant::now();
    let now = || Instant::from_nanos(epoch.elapsed().as_nanos() as u64);

    sender.start(now());
    receiver.start(now());

    let mut next_id: u64 = 0; // next SDU to offer the sender
    let mut expected: u64 = 0; // next id the application must see
    let mut reseq = Resequencer::new(0);
    // The sender exposes no wire-sequence accessor (it doesn't need
    // one), so the host tracks the highest sequence it has put on the
    // wire as the expansion reference for inbound feedback.
    let mut tx_reference: u64 = 0;
    let mut drops_injected: u64 = 0;
    let mut info_seen: u64 = 0;
    let mut datagrams_sent: u64 = 0;
    let mut feedback_sent: u64 = 0;
    let mut buf = [0u8; 2048];

    loop {
        let t = now();

        // Offer fresh SDUs until the sender's queue refuses more.
        while next_id < cfg.sdus {
            let payload = Bytes::from(vec![(next_id & 0xff) as u8; cfg.payload_len]);
            match sender.push(PacketId(next_id), payload) {
                Ok(()) => next_id += 1,
                Err(_) => break,
            }
        }

        // Fire due timers.
        if sender.poll_timeout().is_some_and(|d| d <= t) {
            sender.on_timeout(t);
        }
        if receiver.poll_timeout().is_some_and(|d| d <= t) {
            receiver.on_timeout(t);
        }

        // Data direction: sender → socket a, with loss injection.
        while let Some(frame) = sender.poll_transmit(now()) {
            if let Frame::Info(ref info) = frame {
                tx_reference = tx_reference.max(info.seq);
                info_seen += 1;
                if cfg.drop_every != 0 && info_seen % cfg.drop_every == 0 {
                    drops_injected += 1;
                    continue;
                }
            }
            let datagram = wire::encode(&frame, modulus);
            a.send(&datagram).map_err(|e| io_err("send data", e))?;
            datagrams_sent += 1;
        }

        // Feedback direction: receiver → socket b. Control frames ride
        // the same lossy medium in principle, but the demo keeps the
        // feedback channel clean (the simulator covers lossy feedback).
        while let Some(frame) = receiver.poll_transmit(now()) {
            let datagram = wire::encode(&frame, modulus);
            b.send(&datagram).map_err(|e| io_err("send feedback", e))?;
            feedback_sent += 1;
        }

        // Inbound data at the receiver.
        loop {
            match b.recv(&mut buf) {
                // An undecodable datagram is indistinguishable from
                // silence on the wire — drop it and let the gap report.
                Ok(n) => {
                    if let Ok(frame) = wire::decode(&buf[..n], receiver.highest_seen(), modulus) {
                        receiver.handle_frame(now(), frame, RxStatus::Ok);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(io_err("recv data", e)),
            }
        }

        // Inbound feedback at the sender.
        loop {
            match a.recv(&mut buf) {
                Ok(n) => {
                    if let Ok(frame) = wire::decode(&buf[..n], tx_reference, modulus) {
                        sender.handle_frame(now(), frame, RxStatus::Ok);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(io_err("recv feedback", e)),
            }
        }

        // Application delivery, resequenced and order-checked.
        let mut delivered_now = false;
        while let Some(d) = receiver.poll_deliver(now()) {
            delivered_now = true;
            for (pid, _payload) in reseq.offer(d.packet_id, d.payload) {
                if pid.0 != expected {
                    return Err(format!(
                        "out-of-order delivery: got {} want {expected}",
                        pid.0
                    ));
                }
                expected += 1;
            }
        }

        // Keep the event queues drained (the demo has no consumer for
        // holding-time events).
        while sender.poll_event().is_some() {}
        while receiver.poll_event().is_some() {}

        if expected == cfg.sdus && sender.buffered() == 0 {
            let stats = sender.stats();
            return Ok(IoSummary {
                delivered: expected,
                drops_injected,
                datagrams_sent,
                feedback_sent,
                retransmissions: stats.retransmissions,
                wall: epoch.elapsed(),
            });
        }
        if sender.state() == SenderState::Failed {
            return Err(format!(
                "sender declared link failure after {} of {} SDUs",
                expected, cfg.sdus
            ));
        }
        if epoch.elapsed() > cfg.timeout {
            return Err(format!(
                "timeout: delivered {} of {} SDUs in {:?}",
                expected, cfg.sdus, cfg.timeout
            ));
        }
        if !delivered_now {
            // Nothing happened this spin: yield briefly rather than
            // burning a core. 200 µs keeps timer error far below the
            // millisecond-scale protocol deadlines.
            std::thread::sleep(WallDuration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_config_validates_and_bounds_numbering() {
        let cfg = loopback_config();
        assert!(cfg.seq_modulus().is_power_of_two());
        assert!(cfg.seq_modulus() < 1 << 20);
    }

    #[test]
    fn lossless_transfer_completes() {
        let summary = run_loopback(&IoConfig {
            sdus: 50,
            payload_len: 32,
            drop_every: 0,
            timeout: WallDuration::from_secs(20),
        })
        .expect("lossless loopback transfer");
        assert_eq!(summary.delivered, 50);
        assert_eq!(summary.drops_injected, 0);
    }
}
