//! Offline stand-in for the `rand` crate (0.10-era API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small surface it uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng`/`RngExt` methods
//! `random::<T>()`, `random_range(..)` and `next_u64()`. The generator is
//! xoshiro256++ seeded via SplitMix64 — the same construction the real
//! `SmallRng` documents on 64-bit targets — so quality is adequate for
//! simulation (not cryptography).

/// Core RNG trait: a source of 64 random bits.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Convenience sampling methods layered over [`Rng`].
pub trait RngExt: Rng + Sized {
    /// Sample a value of `T` from its standard distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range. Half-open (`lo..hi`) and inclusive
    /// (`lo..=hi`) ranges are both accepted; panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: Rng + Sized> RngExt for T {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniform-sampleable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64 — irrelevant at simulation scale.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "random_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_inclusive_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: u64 = r.random_range(5u64..10);
            assert!((5..10).contains(&v));
            let w: i32 = r.random_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }
}
