//! Convolutional encoder.
//!
//! The paper builds on Paul et al.'s laser-link codec, a convolutional code
//! with interleaving that converts mispointing burst errors into random
//! errors and achieves a residual BER around 1e-7. We implement the
//! standard rate-1/2, constraint-length-7 code (generators 171/133 octal —
//! the CCSDS/"Voyager" code of that era) with zero-tail termination, and a
//! hard-decision Viterbi decoder in [`crate::viterbi`].

use crate::bits::BitBuf;

/// Rate-1/2 convolutional code parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvCode {
    /// Constraint length K (number of taps including the current bit).
    pub constraint: u32,
    /// First generator polynomial (bit i = tap on delay i), e.g. 0o171.
    pub g1: u32,
    /// Second generator polynomial, e.g. 0o133.
    pub g2: u32,
}

/// The standard K=7 (171, 133) code used throughout this workspace.
pub const CCSDS_K7: ConvCode = ConvCode {
    constraint: 7,
    g1: 0o171,
    g2: 0o133,
};

impl ConvCode {
    /// Number of trellis states, `2^(K-1)`.
    pub fn num_states(&self) -> usize {
        1 << (self.constraint - 1)
    }

    /// Encode `input`, appending `K-1` zero tail bits to return the encoder
    /// to the all-zero state. Output length is `2 * (input.len() + K - 1)`.
    pub fn encode(&self, input: &BitBuf) -> BitBuf {
        let tail = (self.constraint - 1) as usize;
        let mut out = BitBuf::with_capacity(2 * (input.len() + tail));
        let mut shift: u32 = 0; // bit 0 = most recent input bit
        let mask = (1u32 << self.constraint) - 1;
        let push_bit = |shift: u32, out: &mut BitBuf| {
            out.push(((shift & self.g1).count_ones() & 1) == 1);
            out.push(((shift & self.g2).count_ones() & 1) == 1);
        };
        for bit in input.iter().chain(core::iter::repeat_n(false, tail)) {
            shift = ((shift << 1) | bit as u32) & mask;
            push_bit(shift, &mut out);
        }
        out
    }

    /// For trellis construction: given the current state (the last `K-1`
    /// input bits, most recent in the low bit) and a new input bit, return
    /// `(next_state, symbol)` where `symbol` packs the two output bits as
    /// `g1_out << 1 | g2_out`.
    pub fn step(&self, state: u32, input: bool) -> (u32, u8) {
        let mask_state = (1u32 << (self.constraint - 1)) - 1;
        let shift = (state << 1) | input as u32;
        let full = shift & ((1u32 << self.constraint) - 1);
        let o1 = ((full & self.g1).count_ones() & 1) as u8;
        let o2 = ((full & self.g2).count_ones() & 1) as u8;
        (shift & mask_state, (o1 << 1) | o2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_length() {
        let input = BitBuf::from_bytes(&[0xAB, 0xCD]);
        let out = CCSDS_K7.encode(&input);
        assert_eq!(out.len(), 2 * (16 + 6));
    }

    #[test]
    fn all_zero_input_encodes_to_all_zero() {
        let input = BitBuf::from_bits(&[false; 20]);
        let out = CCSDS_K7.encode(&input);
        assert!(out.iter().all(|b| !b));
    }

    #[test]
    fn encoder_is_linear() {
        // Convolutional codes are linear: enc(a) XOR enc(b) == enc(a XOR b).
        let a = BitBuf::from_bytes(&[0x3C, 0x71]);
        let b = BitBuf::from_bytes(&[0x9E, 0x04]);
        let xor: BitBuf = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        let ea = CCSDS_K7.encode(&a);
        let eb = CCSDS_K7.encode(&b);
        let exor = CCSDS_K7.encode(&xor);
        let combined: BitBuf = ea.iter().zip(eb.iter()).map(|(x, y)| x ^ y).collect();
        assert_eq!(combined, exor);
    }

    #[test]
    fn step_matches_encode() {
        let input = BitBuf::from_bits(&[true, false, true, true, false]);
        let enc = CCSDS_K7.encode(&input);
        let mut state = 0u32;
        let mut via_step = BitBuf::new();
        let tail = (CCSDS_K7.constraint - 1) as usize;
        for bit in input.iter().chain(core::iter::repeat_n(false, tail)) {
            let (next, sym) = CCSDS_K7.step(state, bit);
            via_step.push(sym & 0b10 != 0);
            via_step.push(sym & 0b01 != 0);
            state = next;
        }
        assert_eq!(via_step, enc);
        assert_eq!(state, 0, "zero tail must terminate in state 0");
    }

    #[test]
    fn known_impulse_response() {
        // A single 1 followed by zeros produces the generator sequences.
        let input = BitBuf::from_bits(&[true]);
        let out = CCSDS_K7.encode(&input);
        // First symbol pair: input bit just entered; shift register = 0000001.
        // g1 = 0o171 = 1111001b → tap on bit0 = 1; g2 = 0o133 = 1011011b → bit0 = 1.
        assert!(out.get(0));
        assert!(out.get(1));
        assert_eq!(out.len(), 2 * 7);
    }

    #[test]
    fn num_states() {
        assert_eq!(CCSDS_K7.num_states(), 64);
    }
}
