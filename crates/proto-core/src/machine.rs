//! The sans-IO state-machine contract.
//!
//! Every ARQ engine in this workspace — `lams_dlc::{Sender, Receiver}`,
//! `hdlc::{SrSender, SrReceiver, GbnSender, GbnReceiver}` — is a pure
//! state machine: no sockets, no clocks, no threads. A *host* (the
//! netsim driver, a real UDP event loop, the model checker) owns I/O and
//! time and pumps the machine through this trait family:
//!
//! * [`Machine`] — the shared lifecycle: frame ingress/egress, timer
//!   scheduling, event draining, trace attachment;
//! * [`SenderMachine`] / [`ReceiverMachine`] — the role-specific halves
//!   (SDU admission and statistics vs. in-order delivery);
//! * [`WireFrame`] — what a host needs to account for a frame on the
//!   wire without understanding it (encoded length, data-vs-control).
//!
//! The contract is deliberately poll-shaped: hosts call
//! [`Machine::poll_transmit`] until `None` after *every* entry point,
//! honour [`Machine::poll_timeout`] by calling [`Machine::on_timeout`]
//! at (or after) the requested instant, and drain
//! [`Machine::poll_event`] at their leisure. Nothing happens between
//! calls, which is what makes the machines model-checkable.

use crate::time::Instant;
use crate::trace::Trace;
use bytes::Bytes;

/// Physical-layer verdict on an arriving frame.
///
/// The header always survives (the paper's model: address/control fields
/// are FEC-protected separately), so a frame is either fully intact or
/// carries a corrupted payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxStatus {
    /// Frame arrived intact.
    Ok,
    /// Header intact, payload corrupted (detected via CRC).
    PayloadCorrupted,
}

/// One SDU released in order by a receiver, host-facing view.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivered {
    /// End-to-end SDU id assigned by the pushing host.
    pub id: u64,
    /// The SDU payload.
    pub payload: Bytes,
}

/// Host-side frame accounting: what the wire sees.
pub trait WireFrame {
    /// Encoded size of this frame in bytes (header + payload + FCS).
    fn wire_len(&self) -> usize;
    /// True for data (I-) frames, false for control frames.
    fn is_info(&self) -> bool;
}

/// The lifecycle shared by every protocol state machine.
pub trait Machine {
    /// Frame type exchanged with the peer machine.
    type Frame;
    /// Host-visible notification type drained via [`Machine::poll_event`].
    type Event;

    /// Begin operating at `now`: arm timers, emit configuration traces.
    fn start(&mut self, now: Instant);

    /// Process one frame that arrived at `now` with the given
    /// physical-layer verdict.
    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, status: RxStatus);

    /// Next frame ready to leave at `now`, if any. Hosts call this in a
    /// loop until `None` after every other entry point.
    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame>;

    /// The next instant at which [`Machine::on_timeout`] must run, if a
    /// timer is armed.
    fn poll_timeout(&self) -> Option<Instant>;

    /// Fire due timers. Hosts call this once `now` reaches the instant
    /// returned by [`Machine::poll_timeout`].
    fn on_timeout(&mut self, now: Instant);

    /// Drain one pending host notification, oldest first.
    ///
    /// Machines without a notification stream (`Event = ()`) inherit
    /// this default and report none.
    fn poll_event(&mut self) -> Option<Self::Event> {
        None
    }

    /// Attach an event-sink handle. The default handle is
    /// [`Trace::disabled`]; this single setter replaces the per-struct
    /// `with_trace` plumbing the machines used to duplicate.
    fn set_trace(&mut self, trace: Trace);

    /// Builder-style [`Machine::set_trace`].
    fn with_trace(mut self, trace: Trace) -> Self
    where
        Self: Sized,
    {
        self.set_trace(trace);
        self
    }
}

/// The sending half: SDU admission, link health, wire statistics.
pub trait SenderMachine: Machine {
    /// Offer one SDU for transmission. Returns false when the machine's
    /// admission queue is full and the SDU was not accepted.
    fn push(&mut self, id: u64, payload: Bytes) -> bool;

    /// SDUs currently queued or awaiting acknowledgement.
    fn buffered(&self) -> usize;

    /// True once the machine has declared the link dead (failure timer).
    fn is_failed(&self) -> bool {
        false
    }

    /// Current flow-control rate multiplier in `[0, 1]`.
    fn rate(&self) -> f64 {
        1.0
    }

    /// Info frames sent so far (first transmissions + retransmissions).
    fn transmissions(&self) -> u64;

    /// Retransmitted info frames so far.
    fn retransmissions(&self) -> u64;

    /// If `event` reports an SDU released from the retransmission
    /// buffer, the nanoseconds it was held; `None` otherwise. Hosts use
    /// this to aggregate holding-time distributions without knowing the
    /// machine's event type.
    fn released_holding_ns(event: &Self::Event) -> Option<u64> {
        let _ = event;
        None
    }

    /// Protocol-specific counters as `(canonical name, value)` pairs.
    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// The receiving half: in-order delivery and occupancy reporting.
pub trait ReceiverMachine: Machine {
    /// Next SDU whose processing completed by `now`, in delivery order.
    fn poll_deliver(&mut self, now: Instant) -> Option<Delivered>;

    /// Frames currently held (processing queue or resequencing buffer).
    fn occupancy(&self) -> usize;

    /// Protocol-specific counters as `(canonical name, value)` pairs.
    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}
