//! High-traffic totals and throughput efficiency (§4).
//!
//! In high traffic LAMS-DLC overlaps retransmissions with new
//! transmissions: the paper divides the transmission into sub-periods of
//! `h = H_frame/t_f` frames and computes `N_total(N)`, the total frame
//! transmissions (new + repeats) needed to deliver `N` new frames:
//!
//! ```text
//! N_1 = h;   N_i = h − Σ_{j<i} N_j·P_R^{i−j}   (each sub-period's new
//! frames share capacity with the repeats surfacing from earlier ones)
//! ```
//!
//! SR-HDLC instead serialises: each window of `W` must fully resolve
//! before the next opens, so `D_high^HDLC(N) = m·D_low(N_win) +
//! D_low(r_w)` with `m = ⌊N/W⌋`, `r_w = N mod W`.

use crate::delivery::{d_low_hdlc, d_low_lams};
use crate::params::LinkParams;
use crate::periods::{p_r_hdlc, p_r_lams};

/// The paper's sub-period recursion: expected total transmissions
/// (first + repeats) to deliver `n` new frames when each sub-period holds
/// `h` frame slots and each transmission repeats with probability `p_r`.
///
/// The recursion is evaluated literally, then the residual repeat tail of
/// frames still unresolved at the end is added (geometric continuation).
/// As `n → ∞` this converges to `n·s̄` — each frame independently needs a
/// geometric number of transmissions — which the tests verify.
pub fn n_total(n: u64, h: f64, p_r: f64) -> f64 {
    assert!(h > 0.0, "sub-period length must be positive");
    assert!((0.0..1.0).contains(&p_r), "p_r out of [0,1): {p_r}");
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    // news[i]: new frames first-transmitted in sub-period i.
    let mut news: Vec<f64> = Vec::new();
    let mut sent_new = 0.0;
    let mut total = 0.0;
    while sent_new < n {
        // Repeats surfacing this sub-period from every earlier one.
        let i = news.len();
        let repeats: f64 = news
            .iter()
            .enumerate()
            .map(|(j, nj)| nj * p_r.powi((i - j) as i32))
            .sum();
        let capacity_for_new = (h - repeats).max(0.0);
        let fresh = capacity_for_new.min(n - sent_new);
        news.push(fresh);
        sent_new += fresh;
        total += fresh + repeats;
        if fresh == 0.0 && repeats == 0.0 {
            break; // numerical dead end (p_r ~ 0 pathology)
        }
    }
    // Tail: every transmitted frame still repeats geometrically after the
    // last counted sub-period.
    let tail: f64 = news
        .iter()
        .enumerate()
        .map(|(j, nj)| {
            let k = news.len() - j;
            // Σ_{m ≥ k+? } handled: repeats for offsets ≥ (len - j).
            nj * p_r.powi(k as i32) / (1.0 - p_r)
        })
        .sum();
    total + tail
}

/// LAMS-DLC sub-period length in frames: `h = H_frame / t_f`.
pub fn h_lams(p: &LinkParams) -> f64 {
    crate::holding::h_frame_lams(p) / p.t_f
}

/// `N_total` for LAMS-DLC delivering `n` frames.
pub fn n_total_lams(p: &LinkParams, n: u64) -> f64 {
    n_total(n, h_lams(p), p_r_lams(p))
}

/// `N_total` for one SR-HDLC window.
pub fn n_total_hdlc_window(p: &LinkParams) -> f64 {
    n_total(p.w, p.w as f64, p_r_hdlc(p))
}

/// LAMS-DLC high-traffic total time for `n` frames (§4):
/// `D_high = D_low(N_total(n))` — retransmissions ride along with new
/// traffic, so the clock is the serialised total transmissions plus one
/// resolving tail (which `D_low` contributes).
pub fn d_high_lams(p: &LinkParams, n: u64) -> f64 {
    let total = n_total_lams(p, n).round() as u64;
    d_low_lams(p, total)
}

/// SR-HDLC high-traffic total time for `n` frames (§4):
/// `m·D_low(W) + D_low(r_w)`.
pub fn d_high_hdlc(p: &LinkParams, n: u64) -> f64 {
    let m = n / p.w;
    let r_w = n % p.w;
    let mut t = m as f64 * d_low_hdlc(p, p.w);
    if r_w > 0 {
        t += d_low_hdlc(p, r_w);
    }
    t
}

/// LAMS-DLC throughput in frames per second at high traffic:
/// `η = N / D_high(N)` (§4).
pub fn eta_lams_fps(p: &LinkParams, n: u64) -> f64 {
    n as f64 / d_high_lams(p, n)
}

/// SR-HDLC throughput in frames per second at high traffic.
pub fn eta_hdlc_fps(p: &LinkParams, n: u64) -> f64 {
    n as f64 / d_high_hdlc(p, n)
}

/// Normalised efficiency in `[0, 1]`: fraction of the line rate carrying
/// *new* user frames, `η·t_f`.
pub fn efficiency_lams(p: &LinkParams, n: u64) -> f64 {
    eta_lams_fps(p, n) * p.t_f
}

/// Normalised efficiency for SR-HDLC.
pub fn efficiency_hdlc(p: &LinkParams, n: u64) -> f64 {
    eta_hdlc_fps(p, n) * p.t_f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkParams;
    use crate::periods::{s_bar_hdlc, s_bar_lams};

    fn params() -> LinkParams {
        LinkParams::paper_default()
    }

    #[test]
    fn n_total_error_free_is_n() {
        assert!((n_total(1000, 50.0, 0.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn n_total_converges_to_n_times_s_bar() {
        // Each frame needs a geometric number of transmissions; the
        // sub-period accounting must agree asymptotically.
        for p_r in [0.01, 0.05, 0.2] {
            let n = 100_000u64;
            let total = n_total(n, 500.0, p_r);
            let expect = n as f64 / (1.0 - p_r);
            let rel = (total - expect).abs() / expect;
            assert!(rel < 0.01, "p_r={p_r}: total={total} expect={expect}");
        }
    }

    #[test]
    fn n_total_zero_frames() {
        assert_eq!(n_total(0, 10.0, 0.1), 0.0);
    }

    #[test]
    fn n_total_monotone_in_error() {
        let a = n_total(10_000, 100.0, 0.01);
        let b = n_total(10_000, 100.0, 0.1);
        assert!(b > a);
    }

    #[test]
    fn lams_efficiency_increases_with_traffic() {
        // §4's conclusion: η_LAMS grows with N because the fixed s̄·R tail
        // amortises; HDLC pays the tail per window.
        let p = params();
        let e_small = efficiency_lams(&p, 2_000);
        let e_large = efficiency_lams(&p, 200_000);
        assert!(e_large > e_small, "small={e_small} large={e_large}");
        assert!(e_large > 0.9, "LAMS should approach line rate: {e_large}");
    }

    #[test]
    fn hdlc_efficiency_plateaus_below_lams() {
        let p = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        let n = 200_000;
        let lams = efficiency_lams(&p, n);
        let hdlc = efficiency_hdlc(&p, n);
        assert!(
            lams > hdlc,
            "LAMS must win at high traffic: lams={lams} hdlc={hdlc}"
        );
        // HDLC is capped by the per-window stall: W·t_f / D_low(W).
        let cap = p.w as f64 * p.t_f / crate::delivery::d_low_hdlc(&p, p.w);
        assert!((hdlc - cap).abs() / cap < 0.05, "hdlc={hdlc} cap={cap}");
    }

    #[test]
    fn efficiencies_bounded() {
        let p = params();
        for n in [100u64, 10_000, 1_000_000] {
            for e in [efficiency_lams(&p, n), efficiency_hdlc(&p, n)] {
                assert!(e > 0.0 && e <= 1.0 + 1e-9, "e={e} n={n}");
            }
        }
    }

    #[test]
    fn lams_wins_across_the_paper_ber_band() {
        // Who-wins shape: at high traffic LAMS leads at every residual
        // BER in the paper's 1e-7..1e-5 band, by roughly the window-stall
        // factor (~2× at W ≈ one bandwidth-delay product).
        let n = 100_000;
        for res in [1e-7, 1e-6, 1e-5] {
            let p = params().with_residual_ber(res, res / 10.0, 8192, 512);
            let ratio = efficiency_lams(&p, n) / efficiency_hdlc(&p, n);
            assert!(ratio > 1.5, "res={res}: ratio={ratio}");
            assert!(ratio < 4.0, "res={res}: implausible ratio={ratio}");
        }
    }

    #[test]
    fn hdlc_degrades_as_window_shrinks_relative_to_bdp() {
        // The window stall dominates when W·t_f ≪ R: shrinking the window
        // collapses HDLC's ceiling while LAMS is unaffected.
        let n = 100_000;
        let big = params();
        let mut small = params();
        small.w = 256;
        assert!(efficiency_hdlc(&small, n) < efficiency_hdlc(&big, n) * 0.6);
        assert!((efficiency_lams(&small, n) - efficiency_lams(&big, n)).abs() < 1e-9);
    }

    #[test]
    fn s_bar_consistency_between_modules() {
        let p = params();
        assert!(s_bar_hdlc(&p) > s_bar_lams(&p));
    }
}
