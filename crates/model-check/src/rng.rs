//! Self-contained xorshift64* generator: the adversary's decisions must
//! be reproducible from a schedule's seed alone, independent of any
//! external RNG crate or platform entropy.

/// Deterministic xorshift64* stream.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeded stream (a zero seed is mapped to a fixed non-zero state —
    /// xorshift has an absorbing zero).
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x853C_49E6_748F_EA9B
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u8) -> bool {
        pct > 0 && self.next_u64() % 100 < pct as u64
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_non_trivial() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(1);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(100)));
    }
}
