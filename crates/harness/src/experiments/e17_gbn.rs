//! E17 — the Go-Back-N baseline (§1/§2: "often preferred despite its
//! inferior performance"): classic closed-form `η_GBN = (1−P)/(1+2a·P)`
//! validated against the GBN implementation, alongside both other
//! protocols. Quantifies §2.3's discard waste.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_gbn, run_lams, run_sr, ScenarioConfig};
use analysis::gbn::efficiency_gbn;
use analysis::throughput::{efficiency_hdlc, efficiency_lams};
use sim_core::Duration;

/// Residual BERs swept.
pub const BERS: &[f64] = &[1e-8, 1e-7, 1e-6, 1e-5];

/// Run E17.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 3_000 } else { 15_000 };
    let mut table = Table::new(
        "three-protocol comparison vs residual BER (analytic + simulated)",
        &[
            "residual_ber",
            "gbn_analytic",
            "gbn_sim",
            "sr_sim",
            "lams_sim",
            "gbn_discards",
        ],
    );
    let runs = parallel::map(BERS.to_vec(), |ber| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.data_residual_ber = ber;
        cfg.ctrl_residual_ber = ber / 10.0;
        cfg.deadline = Duration::from_secs(600);
        (
            cfg.link_params(),
            run_gbn(&cfg),
            run_sr(&cfg),
            run_lams(&cfg),
        )
    });
    for (&ber, (p, gbn, sr, lams)) in BERS.iter().zip(runs) {
        table.row(vec![
            ber.into(),
            efficiency_gbn(&p).into(),
            gbn.efficiency().into(),
            sr.efficiency().into(),
            lams.efficiency().into(),
            gbn.extra("hdlc.gbn_receiver.discarded")
                .unwrap_or(0.0)
                .into(),
        ]);
    }
    let mut analytic = Table::new(
        "analytic three-way ranking at N = 50k",
        &["residual_ber", "eta_gbn", "eta_sr_hdlc", "eta_lams"],
    );
    for &ber in BERS {
        let p = ScenarioConfig::paper_default()
            .link_params()
            .with_residual_ber(ber, ber / 10.0, 8344, 320);
        analytic.row(vec![
            ber.into(),
            efficiency_gbn(&p).into(),
            efficiency_hdlc(&p, 50_000).into(),
            efficiency_lams(&p, 50_000).into(),
        ]);
    }
    ExperimentOutput {
        id: "E17",
        title: "Go-Back-N baseline: collapse on long fat links (paper §1/§2.3)".into(),
        tables: vec![table, analytic],
        traces: vec![],
        notes: vec![
            "expected shape: error-free, GBN pipelines fine; with errors \
             on a ~490-frame pipeline each error discards a pipeline of \
             good frames, so η_GBN craters below both SR-HDLC and LAMS as \
             BER rises — the §2.3 'wasted uncorrupted frames' argument"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_ranking_and_collapse() {
        let out = run(true);
        let t = &out.tables[0];
        // At the highest BER, GBN is clearly worst and LAMS clearly best.
        let last = t.len() - 1;
        let gbn = t.value(last, 2).unwrap();
        let sr = t.value(last, 3).unwrap();
        let lams = t.value(last, 4).unwrap();
        assert!(gbn < sr, "gbn {gbn} !< sr {sr}");
        assert!(sr < lams, "sr {sr} !< lams {lams}");
        // Discards grow with BER.
        assert!(t.value(last, 5).unwrap() > t.value(0, 5).unwrap());
        // Analytic GBN tracks simulated GBN within a factor ~2 at high
        // BER (the formula assumes saturation; finite batches differ).
        let a = t.value(last, 1).unwrap();
        assert!(
            gbn / a < 3.0 && a / gbn < 3.0,
            "analytic {a} vs sim {gbn} diverged"
        );
    }
}
