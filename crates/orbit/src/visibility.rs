//! Visibility windows: when can two satellites hold a laser link?
//!
//! A link is *feasible* at time `t` when the pair has line of sight above
//! the grazing altitude and the range is within the terminal's maximum
//! (laser SWAP constraints bound transmit power and hence range — paper
//! §2.1 property 3: 2,000–10,000 km). The contiguous feasible intervals are
//! the paper's "link lifetimes", on the order of minutes for
//! cross-plane LEO pairs.

use crate::geometry::has_line_of_sight;
use crate::orbit::Satellite;

/// A contiguous interval during which a link is feasible, seconds after
/// epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Window {
    /// Start of feasibility.
    pub start_s: f64,
    /// End of feasibility (exclusive).
    pub end_s: f64,
}

impl Window {
    /// Window length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Link feasibility constraints.
#[derive(Clone, Copy, Debug)]
pub struct LinkConstraints {
    /// Maximum terminal range, km.
    pub max_range_km: f64,
}

impl Default for LinkConstraints {
    fn default() -> Self {
        // Paper §2.1: links up to 10,000 km.
        LinkConstraints {
            max_range_km: 10_000.0,
        }
    }
}

/// True if a link between `a` and `b` is feasible at `t_s`.
pub fn feasible(a: &Satellite, b: &Satellite, t_s: f64, c: &LinkConstraints) -> bool {
    let pa = a.position_at(t_s);
    let pb = b.position_at(t_s);
    pa.distance(pb) <= c.max_range_km && has_line_of_sight(pa, pb)
}

/// Scan `[0, horizon_s]` with the given step and return the feasible
/// windows. Boundaries are refined by bisection to ~1 ms accuracy.
pub fn visibility_windows(
    a: &Satellite,
    b: &Satellite,
    horizon_s: f64,
    step_s: f64,
    c: &LinkConstraints,
) -> Vec<Window> {
    assert!(step_s > 0.0 && horizon_s > 0.0);
    let mut windows = Vec::new();
    let mut t = 0.0;
    let mut was = feasible(a, b, 0.0, c);
    let mut start = if was { Some(0.0) } else { None };
    while t < horizon_s {
        let next = (t + step_s).min(horizon_s);
        let is = feasible(a, b, next, c);
        if is != was {
            let boundary = bisect(a, b, t, next, was, c);
            if is {
                start = Some(boundary);
            } else if let Some(s) = start.take() {
                windows.push(Window {
                    start_s: s,
                    end_s: boundary,
                });
            }
            was = is;
        }
        t = next;
    }
    if let Some(s) = start {
        windows.push(Window {
            start_s: s,
            end_s: horizon_s,
        });
    }
    windows
}

/// Refine the feasibility transition within `(lo, hi)`; `lo_state` is the
/// feasibility at `lo`.
fn bisect(
    a: &Satellite,
    b: &Satellite,
    mut lo: f64,
    mut hi: f64,
    lo_state: bool,
    c: &LinkConstraints,
) -> f64 {
    for _ in 0..40 {
        if hi - lo < 1e-3 {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if feasible(a, b, mid, c) == lo_state {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn same_plane_pair(sep_deg: f64) -> (Satellite, Satellite) {
        (
            Satellite::new(1000.0, 53.0, 0.0, 0.0),
            Satellite::new(1000.0, 53.0, 0.0, sep_deg),
        )
    }

    #[test]
    fn close_same_plane_pair_always_visible() {
        let (a, b) = same_plane_pair(20.0);
        let windows = visibility_windows(&a, &b, 7000.0, 10.0, &LinkConstraints::default());
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].start_s, 0.0);
        assert_eq!(windows[0].end_s, 7000.0);
    }

    #[test]
    fn antipodal_same_plane_pair_never_visible() {
        let (a, b) = same_plane_pair(180.0);
        let windows = visibility_windows(&a, &b, 7000.0, 10.0, &LinkConstraints::default());
        assert!(windows.is_empty());
    }

    #[test]
    fn cross_plane_pair_has_finite_windows() {
        // Different RAAN, phased so the pair crosses in and out of view:
        // link lifetime is finite — the paper's defining LAMS property.
        let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
        let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
        let horizon = 2.0 * a.period_s();
        let windows = visibility_windows(&a, &b, horizon, 5.0, &LinkConstraints::default());
        assert!(!windows.is_empty(), "expected at least one window");
        // At least one window must be a proper sub-interval.
        assert!(
            windows.iter().any(|w| w.start_s > 0.0 || w.end_s < horizon),
            "windows: {windows:?}"
        );
        for w in &windows {
            assert!(w.duration_s() > 0.0);
        }
    }

    #[test]
    fn range_constraint_restricts_windows() {
        let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
        let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
        let horizon = 2.0 * a.period_s();
        let loose = LinkConstraints {
            max_range_km: 12_000.0,
        };
        let tight = LinkConstraints {
            max_range_km: 4_000.0,
        };
        let total = |ws: &[Window]| ws.iter().map(Window::duration_s).sum::<f64>();
        let w_loose = visibility_windows(&a, &b, horizon, 5.0, &loose);
        let w_tight = visibility_windows(&a, &b, horizon, 5.0, &tight);
        assert!(
            total(&w_tight) < total(&w_loose),
            "tight {:.0}s !< loose {:.0}s",
            total(&w_tight),
            total(&w_loose)
        );
    }

    #[test]
    fn window_boundaries_are_transitions() {
        let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
        let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
        let c = LinkConstraints::default();
        let windows = visibility_windows(&a, &b, 2.0 * a.period_s(), 5.0, &c);
        for w in &windows {
            if w.start_s > 0.0 {
                assert!(feasible(&a, &b, w.start_s + 0.5, &c));
                assert!(!feasible(&a, &b, w.start_s - 0.5, &c));
            }
        }
    }
}
