//! Run-level measurement collection.

use sim_core::stats::{Histogram, Series, Summary, TimeWeighted};
use sim_core::{Duration, Instant, QueueProfile};
use telemetry::{Json, Registry, Trace, TraceEvent};

/// Everything measured over one scenario run.
pub struct RunReport {
    /// Protocol label ("lams", "sr-hdlc", "gbn-hdlc").
    pub protocol: String,
    /// SDUs offered by the traffic generator.
    pub offered: u64,
    /// Unique SDUs delivered (after deduplication).
    pub delivered_unique: u64,
    /// Duplicate deliveries observed (enforced-recovery or go-back
    /// replays that reached the top).
    pub duplicates: u64,
    /// SDUs never delivered by the end of the run.
    pub lost: u64,
    /// Instant the last unique SDU was delivered (or the run end).
    pub finished_at: Instant,
    /// True if the run hit the deadline before completing.
    pub deadline_hit: bool,
    /// True if the sender declared link failure.
    pub link_failed: bool,
    /// Link-level delivery delay: SDU push → receiver delivery
    /// (out-of-order allowed), seconds.
    pub delay: Summary,
    /// End-to-end in-order delay: SDU push → in-order release at the
    /// destination resequencer, seconds.
    pub e2e_delay: Summary,
    /// Distribution of the in-order delay (histogram over [0, 2 s),
    /// 400 bins of 5 ms — quantiles via [`Histogram::quantile`]).
    pub e2e_delay_hist: Histogram,
    /// Sender-side holding times of released frames, seconds.
    pub holding: Summary,
    /// Sender-buffer occupancy trace, frames.
    pub tx_buffer: Series,
    /// Mean/peak of the sender buffer (time-weighted).
    pub tx_buffer_tw: TimeWeighted,
    /// Receiver-side buffer occupancy trace, frames.
    pub rx_buffer: Series,
    /// Destination resequencer occupancy trace, frames.
    pub reseq_buffer: Series,
    /// Flow-controlled sending-rate trace.
    pub rate: Series,
    /// Total I-frame transmissions.
    pub transmissions: u64,
    /// Of which retransmissions.
    pub retransmissions: u64,
    /// Serialization time of one I-frame on this link (channel bits), s.
    pub t_f_channel: f64,
    /// Peak resequencer occupancy.
    pub reseq_peak: usize,
    /// Protocol-specific sender counters.
    pub tx_extras: Registry,
    /// Protocol-specific receiver counters.
    pub rx_extras: Registry,
    /// Run-level accounting counters maintained by the [`Collector`]
    /// (e.g. `harness.collector.unmatched`: deliveries whose push instant was
    /// never recorded, so no delay sample could be taken).
    pub counters: Registry,
    /// Event-queue profiling snapshot of the run's scheduler.
    pub queue: QueueProfile,
    /// Wall-clock seconds the run took (for simulated-events/sec).
    pub wall_secs: f64,
}

impl RunReport {
    /// Look up a protocol-specific counter by name (sender first, then
    /// receiver, then the collector's run counters).
    pub fn extra(&self, name: &str) -> Option<f64> {
        self.tx_extras
            .get(name)
            .or_else(|| self.rx_extras.get(name))
            .or_else(|| self.counters.get(name))
    }
}

impl RunReport {
    /// Wall-clock of the run in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.finished_at.as_secs_f64()
    }

    /// Delivered throughput in frames per second.
    pub fn throughput_fps(&self) -> f64 {
        if self.elapsed_s() <= 0.0 {
            0.0
        } else {
            self.delivered_unique as f64 / self.elapsed_s()
        }
    }

    /// Normalised efficiency: fraction of the line occupied by *unique*
    /// user I-frames, `delivered · t_f / elapsed` (directly comparable to
    /// the analysis crate's `η·t_f`).
    pub fn efficiency(&self) -> f64 {
        self.throughput_fps() * self.t_f_channel
    }

    /// Retransmission overhead ratio: retransmissions per delivered frame.
    pub fn retransmission_ratio(&self) -> f64 {
        if self.delivered_unique == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.delivered_unique as f64
        }
    }

    /// Machine-readable form of the whole report. Schema (all times in
    /// seconds, all counters numbers):
    ///
    /// ```text
    /// {
    ///   "protocol": str,
    ///   "offered" | "delivered_unique" | "duplicates" | "lost": n,
    ///   "deadline_hit" | "link_failed": bool,
    ///   "elapsed_s" | "throughput_fps" | "efficiency"
    ///     | "retransmission_ratio" | "t_f_channel_s": n,
    ///   "transmissions" | "retransmissions": n,
    ///   "delay" | "e2e_delay" | "holding":
    ///     {"count", "mean", "std_dev", "min", "max"},
    ///   "e2e_delay_quantiles": {"p50", "p90", "p99"},   // null if empty
    ///   "tx_buffer": {"mean_tw", "peak"},
    ///   "reseq_peak": n,
    ///   "tx_extras" | "rx_extras" | "counters": {name: n, ...},
    ///   "perf": {"scheduled", "popped", "cancelled", "peak_depth",
    ///            "horizon_s", "wall_secs", "events_per_sec"}
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let q = |p: f64| Json::from(self.e2e_delay_hist.quantile(p));
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("offered", self.offered.into()),
            ("delivered_unique", self.delivered_unique.into()),
            ("duplicates", self.duplicates.into()),
            ("lost", self.lost.into()),
            ("deadline_hit", self.deadline_hit.into()),
            ("link_failed", self.link_failed.into()),
            ("elapsed_s", self.elapsed_s().into()),
            ("throughput_fps", self.throughput_fps().into()),
            ("efficiency", self.efficiency().into()),
            ("retransmission_ratio", self.retransmission_ratio().into()),
            ("t_f_channel_s", self.t_f_channel.into()),
            ("transmissions", self.transmissions.into()),
            ("retransmissions", self.retransmissions.into()),
            ("delay", summary_json(&self.delay)),
            ("e2e_delay", summary_json(&self.e2e_delay)),
            (
                "e2e_delay_quantiles",
                Json::obj([("p50", q(0.5)), ("p90", q(0.9)), ("p99", q(0.99))]),
            ),
            ("holding", summary_json(&self.holding)),
            (
                "tx_buffer",
                Json::obj([
                    (
                        "mean_tw",
                        self.tx_buffer_tw.mean_at(self.finished_at).into(),
                    ),
                    ("peak", self.tx_buffer_tw.peak().into()),
                ]),
            ),
            ("reseq_peak", (self.reseq_peak as u64).into()),
            ("tx_extras", self.tx_extras.to_json()),
            ("rx_extras", self.rx_extras.to_json()),
            ("counters", self.counters.to_json()),
            ("perf", perf_json(&self.queue, self.wall_secs)),
        ])
    }
}

/// JSON view of a [`Summary`] (`count`/`mean`/`std_dev`/`min`/`max`).
pub fn summary_json(s: &Summary) -> Json {
    Json::obj([
        ("count", s.count().into()),
        ("mean", s.mean().into()),
        ("std_dev", s.std_dev().into()),
        ("min", s.min().into()),
        ("max", s.max().into()),
    ])
}

/// JSON view of a queue profile plus the wall clock that drove it.
pub fn perf_json(q: &QueueProfile, wall_secs: f64) -> Json {
    Json::obj([
        ("scheduled", q.scheduled.into()),
        ("popped", q.popped.into()),
        ("cancelled", q.cancelled.into()),
        ("peak_depth", (q.peak_depth as u64).into()),
        ("compactions", q.compactions.into()),
        ("horizon_s", q.horizon.as_secs_f64().into()),
        ("wall_secs", wall_secs.into()),
        ("events_per_sec", q.events_per_sec(wall_secs).into()),
    ])
}

thread_local! {
    /// Per-thread perf accumulator: (merged queue profile, wall seconds,
    /// number of runs folded in). Run loops feed it; `perf_take` drains
    /// it — the repro binary uses this for per-experiment perf blocks.
    static PERF_ACC: std::cell::RefCell<Option<(QueueProfile, f64, u64)>> =
        const { std::cell::RefCell::new(None) };
}

/// Fold one run's scheduler profile and wall clock into the thread's perf
/// accumulator.
pub fn perf_absorb(queue: &QueueProfile, wall_secs: f64) {
    perf_merge(queue, wall_secs, 1);
}

/// Fold an already-merged profile covering `runs` runs into the thread's
/// perf accumulator — used when replaying a worker thread's drained
/// accumulator into the orchestrating thread's.
pub fn perf_merge(queue: &QueueProfile, wall_secs: f64, runs: u64) {
    PERF_ACC.with(|acc| {
        let mut acc = acc.borrow_mut();
        let (p, w, n) = acc.get_or_insert((QueueProfile::default(), 0.0, 0));
        p.absorb(queue);
        *w += wall_secs;
        *n += runs;
    });
}

/// Drain the thread's perf accumulator: `(merged profile, total wall
/// seconds, runs)` since the last call, or `None` if nothing ran.
pub fn perf_take() -> Option<(QueueProfile, f64, u64)> {
    PERF_ACC.with(|acc| acc.borrow_mut().take())
}

/// JSON view of a [`netsim::ShardProfile`] — the report's
/// `shard_profile` block. `busy_ns`/`blocked_ns`/`wall_secs` and the
/// wall-derived `efficiency`/`imbalance` are determinism-exempt (like
/// `perf`); every other member is byte-identical across repeated runs,
/// and `events` is invariant across shard counts too.
pub fn shard_json(p: &netsim::ShardProfile) -> Json {
    Json::obj([
        ("shards", Json::from(p.shards)),
        ("supersteps", p.supersteps.into()),
        ("windows", p.windows.into()),
        ("null_windows", p.null_windows.into()),
        ("events", p.events.into()),
        ("inbound", p.inbound.into()),
        ("outbound", p.outbound.into()),
        ("granted_ns", p.granted_ns.into()),
        ("available_ns", p.available_ns.into()),
        ("lookahead_utilization", p.lookahead_utilization().into()),
        (
            "critical_cuts",
            Json::obj(
                p.critical_cuts
                    .iter()
                    .map(|(link, count)| (format!("link{link}"), Json::from(*count))),
            ),
        ),
        ("efficiency", p.efficiency().into()),
        ("imbalance", p.imbalance().into()),
        (
            "busy_ns",
            Json::Arr(p.busy_ns.iter().map(|&b| b.into()).collect()),
        ),
        (
            "blocked_ns",
            Json::Arr(p.blocked_ns.iter().map(|&b| b.into()).collect()),
        ),
        ("wall_secs", p.wall_secs.into()),
    ])
}

/// Drained superstep accounting for a batch of sharded runs: the
/// absorbed profile plus each run's raw spans, in run order.
#[derive(Default)]
pub struct ShardAcc {
    /// Superstep accounting absorbed over every run in the batch.
    pub profile: netsim::ShardProfile,
    /// One span list per sharded run, in completion order on this
    /// thread (run loops are serial per thread, so this is run order).
    pub runs: Vec<Vec<telemetry::SuperstepSpan>>,
}

thread_local! {
    /// Per-thread shard accumulator, the sharded-runtime sibling of
    /// [`PERF_ACC`]: run loops feed it via [`shard_absorb`];
    /// [`shard_take`] drains it for per-experiment `shard_profile`
    /// blocks and the timeline export.
    static SHARD_ACC: std::cell::RefCell<Option<ShardAcc>> =
        const { std::cell::RefCell::new(None) };
}

/// Fold one sharded run's accounting and spans into the thread's shard
/// accumulator.
pub fn shard_absorb(profile: &netsim::ShardProfile, spans: Vec<telemetry::SuperstepSpan>) {
    SHARD_ACC.with(|acc| {
        let mut acc = acc.borrow_mut();
        let a = acc.get_or_insert_with(ShardAcc::default);
        a.profile.absorb(profile);
        a.runs.push(spans);
    });
}

/// Fold an already-drained accumulator into the thread's — used when
/// replaying a worker thread's batch into the orchestrating thread's.
pub fn shard_merge(other: ShardAcc) {
    SHARD_ACC.with(|acc| {
        let mut acc = acc.borrow_mut();
        let a = acc.get_or_insert_with(ShardAcc::default);
        a.profile.absorb(&other.profile);
        a.runs.extend(other.runs);
    });
}

/// Drain the thread's shard accumulator, or `None` if no sharded run
/// fed it since the last call.
pub fn shard_take() -> Option<ShardAcc> {
    SHARD_ACC.with(|acc| acc.borrow_mut().take())
}

/// Accumulates measurements during a run.
///
/// SDU ids are issued sequentially by the traffic generator, so the
/// per-id bookkeeping is id-indexed (a `Vec` of push instants and a
/// delivered bitset) rather than hashed — no hashing or probing on the
/// per-delivery path.
pub struct Collector {
    push_times: Vec<Option<Instant>>,
    /// One bit per id: set once delivered (duplicates detected here).
    delivered: Vec<u64>,
    delivered_count: u64,
    resequencer: lams_dlc::Resequencer,
    /// Scratch for the resequencer's in-order releases, reused across
    /// deliveries.
    reseq_out: Vec<(lams_dlc::PacketId, bytes::Bytes)>,
    /// When each SDU entered the resequencer (id-indexed, cleared on
    /// release); only maintained while tracing, to stamp `ReseqHold`
    /// records for the latency-attribution layer.
    reseq_arrival: Vec<Option<Instant>>,
    /// Delay push → delivery.
    pub delay: Summary,
    /// Delay push → in-order release.
    pub e2e_delay: Summary,
    /// In-order delay distribution.
    pub e2e_delay_hist: Histogram,
    /// Holding-time samples.
    pub holding: Summary,
    /// Occupancy traces.
    pub tx_buffer: Series,
    /// Time-weighted sender-buffer stats.
    pub tx_buffer_tw: TimeWeighted,
    /// Receive-buffer trace.
    pub rx_buffer: Series,
    /// Resequencer trace.
    pub reseq_buffer: Series,
    /// Rate trace.
    pub rate: Series,
    duplicates: u64,
    counters: Registry,
    /// Pre-resolved `harness.collector.unmatched` slot (per-delivery path).
    unmatched: telemetry::CounterHandle,
    trace: Trace,
    /// Self-profiling handle, resolved once at construction (disabled
    /// costs one branch per delivery).
    prof: profile::Prof,
    /// Next power-of-two sender-buffer level that will emit a rising
    /// watermark trace record.
    tx_watermark: usize,
}

/// Lowest sender-buffer watermark level traced (powers of two upward).
const TX_WATERMARK_BASE: usize = 64;

impl Collector {
    /// Fresh collector starting at t = 0.
    pub fn new() -> Self {
        // Resolve the per-delivery counter once; updates skip the name
        // scan. The entry exists (at 0) from the start, making the
        // "accounting went wrong" signal visible in every report.
        let mut counters = Registry::new();
        let unmatched = counters.handle("harness.collector.unmatched");
        Collector {
            push_times: Vec::new(),
            delivered: Vec::new(),
            delivered_count: 0,
            resequencer: lams_dlc::Resequencer::new(0),
            reseq_out: Vec::new(),
            reseq_arrival: Vec::new(),
            delay: Summary::new(),
            e2e_delay: Summary::new(),
            e2e_delay_hist: Histogram::new(0.0, 2.0, 400),
            holding: Summary::new(),
            tx_buffer: Series::new("tx_buffer_frames"),
            tx_buffer_tw: TimeWeighted::new(Instant::ZERO, 0.0),
            rx_buffer: Series::new("rx_buffer_frames"),
            reseq_buffer: Series::new("resequencer_frames"),
            rate: Series::new("send_rate_fraction"),
            duplicates: 0,
            counters,
            unmatched,
            trace: telemetry::global_handle("collector"),
            prof: profile::current(),
            tx_watermark: TX_WATERMARK_BASE,
        }
    }

    /// Record an SDU entering the sender.
    pub fn on_push(&mut self, now: Instant, id: u64) {
        let idx = id as usize;
        if idx >= self.push_times.len() {
            self.push_times.resize(idx + 1, None);
        }
        self.push_times[idx] = Some(now);
    }

    #[inline]
    fn push_time(&self, id: u64) -> Option<Instant> {
        self.push_times.get(id as usize).copied().flatten()
    }

    /// Record a receiver delivery; runs the destination resequencer for
    /// dedup + in-order accounting.
    pub fn on_deliver(&mut self, now: Instant, id: u64) {
        let _span = self.prof.span("collector.deliver");
        let word = (id >> 6) as usize;
        if word >= self.delivered.len() {
            self.delivered.resize(word + 1, 0);
        }
        let bit = 1u64 << (id & 63);
        if self.delivered[word] & bit != 0 {
            self.duplicates += 1;
            return;
        }
        self.delivered[word] |= bit;
        self.delivered_count += 1;
        match self.push_time(id) {
            Some(p) => self.delay.record(now.duration_since(p).as_secs_f64()),
            // A delivery with no matching push: the delay sample is
            // unrecordable. Count it so runs where accounting went wrong
            // are visible instead of silently under-sampled.
            None => self.counters.inc_handle(self.unmatched),
        }
        if self.trace.enabled() {
            let idx = id as usize;
            if idx >= self.reseq_arrival.len() {
                self.reseq_arrival.resize(idx + 1, None);
            }
            self.reseq_arrival[idx] = Some(now);
        }
        let reseq_span = self.prof.span("collector.reseq");
        let mut released = std::mem::take(&mut self.reseq_out);
        released.clear();
        self.resequencer
            .offer_into(lams_dlc::PacketId(id), bytes::Bytes::new(), &mut released);
        for (rid, _) in &released {
            match self.push_time(rid.0) {
                Some(p) => {
                    let d = now.duration_since(p).as_secs_f64();
                    self.e2e_delay.record(d);
                    self.e2e_delay_hist.record(d);
                }
                None => self.counters.inc_handle(self.unmatched),
            }
            if self.trace.enabled() {
                if let Some(slot) = self.reseq_arrival.get_mut(rid.0 as usize) {
                    if let Some(arrived) = slot.take() {
                        let held_ns = now.duration_since(arrived).as_nanos();
                        if held_ns > 0 {
                            let sdu = rid.0;
                            self.trace
                                .emit(now, || TraceEvent::ReseqHold { id: sdu, held_ns });
                        }
                    }
                }
            }
        }
        self.reseq_out = released;
        drop(reseq_span);
    }

    /// Record a batch of holding-time samples (seconds).
    pub fn on_holding(&mut self, samples: &[f64]) {
        for &h in samples {
            self.holding.record(h);
        }
    }

    /// Sample the occupancy traces.
    pub fn sample(&mut self, now: Instant, tx_buf: usize, rx_buf: usize, rate: f64) {
        self.tx_buffer.push(now, tx_buf as f64);
        self.tx_buffer_tw.set(now, tx_buf as f64);
        self.rx_buffer.push(now, rx_buf as f64);
        self.reseq_buffer
            .push(now, self.resequencer.buffered() as f64);
        self.rate.push(now, rate);
        // Trace power-of-two watermark crossings of the sender buffer:
        // one rising record per level filled, one falling once it drains
        // below a quarter of that level (hysteresis against flapping).
        if self.trace.enabled() {
            while tx_buf >= self.tx_watermark {
                let level = self.tx_watermark as u64;
                self.trace.emit(now, || TraceEvent::BufferWatermark {
                    buffer: "tx",
                    level,
                    rising: true,
                });
                self.tx_watermark *= 2;
            }
            while self.tx_watermark > TX_WATERMARK_BASE && tx_buf < self.tx_watermark / 4 {
                self.tx_watermark /= 2;
                let level = self.tx_watermark as u64;
                self.trace.emit(now, || TraceEvent::BufferWatermark {
                    buffer: "tx",
                    level,
                    rising: false,
                });
            }
        }
    }

    /// Unique deliveries so far.
    pub fn delivered_unique(&self) -> u64 {
        self.delivered_count
    }

    /// Duplicate deliveries so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// In-order releases so far.
    pub fn released_in_order(&self) -> u64 {
        self.resequencer.stats().released
    }

    /// Deliveries dropped from delay accounting (no matching push).
    pub fn unmatched(&self) -> u64 {
        self.counters
            .get("harness.collector.unmatched")
            .unwrap_or(0.0) as u64
    }

    /// Finalize into a report. The queue/wall perf fields start zeroed;
    /// the run loop stamps them afterwards (it owns the event queue).
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        self,
        protocol: &str,
        offered: u64,
        finished_at: Instant,
        deadline_hit: bool,
        link_failed: bool,
        transmissions: u64,
        retransmissions: u64,
        t_f_channel: Duration,
        tx_extras: Registry,
        rx_extras: Registry,
    ) -> RunReport {
        let delivered_unique = self.delivered_count;
        let reseq_peak = self.resequencer.stats().peak_buffered;
        RunReport {
            protocol: protocol.to_string(),
            offered,
            delivered_unique,
            duplicates: self.duplicates,
            lost: offered - delivered_unique,
            finished_at,
            deadline_hit,
            link_failed,
            delay: self.delay,
            e2e_delay: self.e2e_delay,
            e2e_delay_hist: self.e2e_delay_hist,
            holding: self.holding,
            tx_buffer: self.tx_buffer,
            tx_buffer_tw: self.tx_buffer_tw,
            rx_buffer: self.rx_buffer,
            reseq_buffer: self.reseq_buffer,
            rate: self.rate,
            transmissions,
            retransmissions,
            t_f_channel: t_f_channel.as_secs_f64(),
            reseq_peak,
            tx_extras,
            rx_extras,
            counters: self.counters,
            queue: QueueProfile::default(),
            wall_secs: 0.0,
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

// The netsim engine drives collectors through this trait; delegate to
// the inherent methods so direct (non-engine) users keep working.
impl netsim::Collect for Collector {
    fn on_push(&mut self, now: Instant, id: u64) {
        Collector::on_push(self, now, id);
    }

    fn on_deliver(&mut self, now: Instant, id: u64) {
        Collector::on_deliver(self, now, id);
    }

    fn on_holding(&mut self, samples: &[f64]) {
        Collector::on_holding(self, samples);
    }

    fn sample(&mut self, now: Instant, tx_buffered: usize, rx_occupancy: usize, rate: f64) {
        Collector::sample(self, now, tx_buffered, rx_occupancy, rate);
    }

    fn delivered_unique(&self) -> u64 {
        Collector::delivered_unique(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut c = Collector::new();
        c.on_push(Instant::ZERO, 0);
        c.on_push(Instant::ZERO, 1);
        c.on_deliver(Instant::from_millis(10), 1); // out of order
        c.on_deliver(Instant::from_millis(12), 0);
        c.on_deliver(Instant::from_millis(13), 0); // duplicate
        assert_eq!(c.delivered_unique(), 2);
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.released_in_order(), 2);
        assert_eq!(c.delay.count(), 2);
        assert_eq!(c.unmatched(), 0);
        // e2e delays recorded at release time: both released at 12 ms.
        assert_eq!(c.e2e_delay.count(), 2);
        assert!(c.e2e_delay.min().unwrap() >= 0.012 - 1e-12);
    }

    #[test]
    fn unmatched_delivery_counted_not_sampled() {
        let mut c = Collector::new();
        // id 0 was never pushed: the delivery must not panic, must not
        // produce a delay sample, and must be counted.
        c.on_deliver(Instant::from_millis(5), 0);
        assert_eq!(c.delivered_unique(), 1);
        assert_eq!(c.delay.count(), 0);
        // Counted twice: once at delivery, once at in-order release.
        assert_eq!(c.unmatched(), 2);
        let r = c.finish(
            "x",
            1,
            Instant::from_millis(5),
            false,
            false,
            1,
            0,
            Duration::ZERO,
            Registry::new(),
            Registry::new(),
        );
        assert_eq!(r.extra("harness.collector.unmatched"), Some(2.0));
    }

    #[test]
    fn report_ratios() {
        let mut c = Collector::new();
        c.on_push(Instant::ZERO, 0);
        c.on_deliver(Instant::from_millis(1), 0);
        let r = c.finish(
            "lams",
            1,
            Instant::from_millis(1),
            false,
            false,
            3,
            2,
            Duration::from_micros(50),
            Registry::from_iter([("lams.sender.request_naks", 1.0)]),
            Registry::new(),
        );
        assert_eq!(r.delivered_unique, 1);
        assert_eq!(r.lost, 0);
        assert!((r.throughput_fps() - 1000.0).abs() < 1e-6);
        assert!((r.efficiency() - 0.05).abs() < 1e-9);
        assert_eq!(r.retransmission_ratio(), 2.0);
        assert_eq!(r.extra("lams.sender.request_naks"), Some(1.0));
    }

    #[test]
    fn zero_elapsed_guard() {
        let c = Collector::new();
        let r = c.finish(
            "x",
            0,
            Instant::ZERO,
            false,
            false,
            0,
            0,
            Duration::ZERO,
            Registry::new(),
            Registry::new(),
        );
        assert_eq!(r.throughput_fps(), 0.0);
        assert_eq!(r.retransmission_ratio(), 0.0);
        assert_eq!(r.extra("anything"), None);
    }

    #[test]
    fn report_json_round_trips() {
        let mut c = Collector::new();
        c.on_push(Instant::ZERO, 0);
        c.on_push(Instant::ZERO, 1);
        c.on_deliver(Instant::from_millis(2), 0);
        c.on_deliver(Instant::from_millis(3), 1);
        let mut r = c.finish(
            "lams",
            2,
            Instant::from_millis(3),
            false,
            false,
            2,
            0,
            Duration::from_micros(50),
            Registry::from_iter([("lams.sender.request_naks", 4.0)]),
            Registry::from_iter([("lams.receiver.checkpoints_sent", 9.0)]),
        );
        r.wall_secs = 0.5;
        let rendered = r.to_json().render();
        let back = Json::parse(&rendered).expect("report JSON must parse");
        assert_eq!(back.get("protocol").and_then(Json::as_str), Some("lams"));
        assert_eq!(
            back.get("delivered_unique").and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(back.get("lost").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            back.get("tx_extras")
                .and_then(|e| e.get("lams.sender.request_naks"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            back.get("delay")
                .and_then(|d| d.get("count"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        let perf = back.get("perf").expect("perf block");
        assert_eq!(perf.get("wall_secs").and_then(Json::as_f64), Some(0.5));
        // Round-trip is idempotent.
        assert_eq!(Json::parse(&back.render()).unwrap(), back);
    }
}
