//! Dependency-direction assertion: the host-agnostic layer — this
//! crate, the protocol machines, and the codec substrate they use —
//! must never (re)grow an edge to the simulator or the telemetry
//! pipeline. CI enforces the same property on the resolved graph via
//! `cargo tree -i`; this test catches it at the manifest level so a
//! plain `cargo test` fails fast too.

use std::path::Path;

/// Crates that must stay below the host layer.
const PURE: &[&str] = &["proto-core", "lams-dlc", "hdlc", "fec"];

/// Crates that belong to hosts (simulator, telemetry pipeline) and must
/// not appear anywhere in a pure crate's manifest.
const HOST_ONLY: &[&str] = &["sim-core", "telemetry", "netsim", "harness", "monitor"];

#[test]
fn pure_crates_have_no_host_dependencies() {
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/ directory")
        .to_path_buf();
    for name in PURE {
        let manifest = crates_dir.join(name).join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        // Strip the [package] header (its `description` may mention
        // other crates in prose); everything after covers the
        // dependency sections.
        let deps = text
            .split_once("[dependencies]")
            .map(|(_, rest)| rest)
            .unwrap_or("");
        for host in HOST_ONLY {
            assert!(
                !deps
                    .lines()
                    .any(|l| l.trim_start().starts_with(&format!("{host}.workspace"))
                        || l.trim_start().starts_with(&format!("{host} ="))),
                "{name}/Cargo.toml declares a dependency on {host}: \
                 the protocol layer must stay host-agnostic"
            );
        }
    }
}

#[test]
fn proto_core_depends_on_bytes_alone() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = std::fs::read_to_string(manifest).expect("own manifest");
    let deps = text
        .split_once("[dependencies]")
        .map(|(_, rest)| rest)
        .expect("[dependencies] section");
    let declared: Vec<&str> = deps
        .lines()
        .take_while(|l| !l.trim_start().starts_with('['))
        .filter_map(|l| l.split(['.', ' ', '=']).next())
        .filter(|s| !s.is_empty() && !s.starts_with('#'))
        .collect();
    assert_eq!(
        declared,
        vec!["bytes"],
        "proto-core is the substrate everything else stands on; \
         it must not accrete dependencies"
    );
}
