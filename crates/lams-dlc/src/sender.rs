//! The LAMS-DLC sender state machine (§3.2).
//!
//! Sans-IO: the owner injects received control frames via
//! [`Sender::handle_frame`], drains outbound frames via
//! [`Sender::poll_transmit`], fires timers via [`Sender::on_timeout`] at
//! the instant returned by [`Sender::poll_timeout`], and drains
//! notifications via [`Sender::poll_event`].
//!
//! ## Operation
//!
//! * New SDUs queue in the sending buffer and are transmitted at the line
//!   rate scaled by the Stop-Go [`RateController`]. Each transmission —
//!   first or repeat — consumes a **fresh sequence number** (§3.2), so
//!   wire numbers are strictly monotone and the receiver detects losses by
//!   gaps.
//! * A received **Check-Point-NAK** (a) retransmits every NAK'd frame
//!   still held (already-renumbered seqs are ignored, as the paper
//!   specifies), (b) releases every outstanding frame at or below the
//!   checkpoint's `covered` horizon that was not NAK'd — the implicit
//!   positive acknowledgement — and (c) resets the checkpoint timer.
//! * If the checkpoint timer (`C_depth · W_cp`) expires, the sender enters
//!   **enforced recovery**: it emits a Request-NAK, stops sending *new*
//!   I-frames (checkpoint-recovery retransmissions remain allowed), and
//!   starts the failure timer. An Enforced-NAK resolves the episode; a
//!   failure-timer expiry declares the link failed (§3.2).
//!
//! ## Zero-loss hardening
//!
//! The paper argues frame loss requires `C_depth` *consecutive* checkpoint
//! losses (probability `P_C^{C_depth} < ε`) and accepts that risk. We close
//! it exactly: checkpoints carry a monotone index, and when the sender
//! observes an index jump larger than `C_depth` it treats the implicit
//! acknowledgement of that checkpoint as unsafe — every frame it would
//! have released is renumbered and retransmitted instead (possible
//! duplication, which the destination resequencer absorbs; never loss).
//! This matches the paper's priority of "zero packet loss capability" and
//! its note that a newer protocol revision also removes duplication.

use crate::config::LamsConfig;
use crate::events::SenderEvent;
use crate::flow::RateController;
use crate::frame::{CheckPoint, ControlFrame, Frame, InfoFrame, PacketId, RxStatus};
use bytes::Bytes;
use proto_core::{Duration, Instant};
use proto_core::{Trace, TraceEvent};
use std::collections::{BTreeMap, VecDeque};

/// Why a queued SDU is awaiting (re)transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxReason {
    New,
    /// NAK'd by a checkpoint; carries the superseded sequence number and
    /// the index of the checkpoint that triggered the retransmission.
    Nak {
        old: u64,
        cp: u64,
    },
    /// Resolving deadline passed with no checkpoint accounting for it.
    ResolveExpired(u64),
    /// Released unsafely by a checkpoint after an index gap; retransmitted
    /// defensively (see module docs). Carries the superseded sequence
    /// number and the gapped checkpoint's index.
    Suspect {
        old: u64,
        cp: u64,
    },
}

#[derive(Clone, Debug)]
struct QueuedSdu {
    packet_id: PacketId,
    payload: Bytes,
    reason: TxReason,
}

#[derive(Clone, Debug)]
struct Outstanding {
    packet_id: PacketId,
    payload: Bytes,
    sent_at: Instant,
    resolve_deadline: Instant,
}

/// Sender lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderState {
    /// Normal operation.
    Running,
    /// Enforced recovery in progress: Request-NAK outstanding, new
    /// I-frames halted.
    Enforced,
    /// Link declared failed; only the network layer can act now.
    Failed,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// I-frames transmitted for the first time.
    pub new_transmissions: u64,
    /// I-frame retransmissions (NAK, resolve-expiry, or suspect).
    pub retransmissions: u64,
    /// Frames released by checkpoint coverage.
    pub released: u64,
    /// Checkpoints processed.
    pub checkpoints: u64,
    /// Corrupted frames discarded on arrival.
    pub rx_corrupted: u64,
    /// Request-NAK probes sent.
    pub request_naks: u64,
    /// Checkpoint index gaps exceeding `C_depth` (unsafe-release episodes).
    pub unsafe_gaps: u64,
    /// Frames defensively retransmitted after an unsafe gap.
    pub suspect_retransmissions: u64,
    /// Frames retransmitted because their resolving deadline passed.
    pub resolve_expiries: u64,
}

/// The LAMS-DLC sending endpoint.
pub struct Sender {
    cfg: LamsConfig,
    state: SenderState,
    next_seq: u64,
    queue: VecDeque<QueuedSdu>,
    outstanding: BTreeMap<u64, Outstanding>,
    /// Deadline for the checkpoint timer; `None` until [`Sender::start`].
    cp_deadline: Option<Instant>,
    /// Failure deadline while in enforced recovery.
    failure_deadline: Option<Instant>,
    last_cp_index: u64,
    probe_counter: u64,
    pending_request_nak: Option<u64>,
    /// When the most recent Request-NAK was handed to the link (rate-limits
    /// re-probing to one per expected response time).
    last_probe_at: Option<Instant>,
    rate: RateController,
    next_tx_allowed: Instant,
    events: VecDeque<SenderEvent>,
    stats: SenderStats,
    queue_capacity: Option<usize>,
    trace: Trace,
}

/// Error returned by [`Sender::push`] when the sending buffer is capped
/// and full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

impl Sender {
    /// Create a sender. Call [`Sender::start`] when the link goes active.
    pub fn new(cfg: LamsConfig) -> Self {
        cfg.validate().expect("invalid LamsConfig");
        let flow = cfg.flow.clone();
        Sender {
            cfg,
            state: SenderState::Running,
            next_seq: 1,
            queue: VecDeque::new(),
            outstanding: BTreeMap::new(),
            cp_deadline: None,
            failure_deadline: None,
            last_cp_index: 0,
            probe_counter: 0,
            pending_request_nak: None,
            last_probe_at: None,
            rate: RateController::new(flow),
            next_tx_allowed: Instant::ZERO,
            events: VecDeque::new(),
            stats: SenderStats::default(),
            queue_capacity: None,
            trace: Trace::disabled(),
        }
    }

    /// Cap the sending queue (SDUs awaiting first transmission); `push`
    /// then fails with [`QueueFull`] when the cap is reached.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Mark the link active at `now`. Arms the checkpoint timer with an
    /// initial grace of one RTT plus the normal timeout (the first
    /// checkpoint cannot arrive before the link round-trips).
    pub fn start(&mut self, now: Instant) {
        self.cp_deadline = Some(now + self.cfg.expected_rtt + self.cfg.checkpoint_timeout());
        self.next_tx_allowed = now;
        // Announce the timing configuration on the trace stream: this
        // marks the node as a LAMS sender and gives online auditors the
        // bounds they check (checkpoint cadence, resolving period).
        self.trace.emit(now, || TraceEvent::SenderConfig {
            w_cp_ns: self.cfg.w_cp.as_nanos(),
            c_depth: self.cfg.c_depth as u64,
            rtt_ns: self.cfg.expected_rtt.as_nanos(),
            cp_timeout_ns: self.cfg.checkpoint_timeout().as_nanos(),
            resolving_ns: self.cfg.resolving_period().as_nanos(),
            failure_ns: self.cfg.failure_timeout().as_nanos(),
        });
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SenderState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Protocol configuration.
    pub fn config(&self) -> &LamsConfig {
        &self.cfg
    }

    /// Current sending-rate fraction set by flow control.
    pub fn rate(&self) -> f64 {
        self.rate.rate()
    }

    /// SDUs queued and awaiting (re)transmission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Frames transmitted and not yet resolved (the paper's sending-buffer
    /// occupancy: what `B_LAMS` bounds).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Total sending-buffer occupancy: queued plus outstanding.
    pub fn buffered(&self) -> usize {
        self.queue.len() + self.outstanding.len()
    }

    /// Accept an SDU from the network layer.
    pub fn push(&mut self, packet_id: PacketId, payload: Bytes) -> Result<(), QueueFull> {
        if let Some(cap) = self.queue_capacity {
            if self.queue.len() >= cap {
                return Err(QueueFull);
            }
        }
        self.queue.push_back(QueuedSdu {
            packet_id,
            payload,
            reason: TxReason::New,
        });
        Ok(())
    }

    /// Drain the next protocol notification.
    pub fn poll_event(&mut self) -> Option<SenderEvent> {
        self.events.pop_front()
    }

    /// Earliest instant at which [`Sender::on_timeout`] or
    /// [`Sender::poll_transmit`] has work to do, if any.
    pub fn poll_timeout(&self) -> Option<Instant> {
        if self.state == SenderState::Failed {
            return None;
        }
        let mut t: Option<Instant> = None;
        let mut consider = |c: Option<Instant>| {
            t = match (t, c) {
                (None, c) => c,
                (Some(a), None) => Some(a),
                (Some(a), Some(b)) => Some(a.min(b)),
            };
        };
        consider(self.cp_deadline);
        consider(self.failure_deadline);
        consider(self.outstanding.values().next().map(|o| o.resolve_deadline));
        if self.pending_request_nak.is_some() || self.has_transmittable() {
            consider(Some(self.next_tx_allowed));
        }
        t
    }

    fn has_transmittable(&self) -> bool {
        self.queue
            .iter()
            .any(|q| q.reason != TxReason::New || self.state == SenderState::Running)
    }

    /// Fire any timers due at `now`.
    pub fn on_timeout(&mut self, now: Instant) {
        if self.state == SenderState::Failed {
            return;
        }
        // Resolving-deadline sweep: frames unaccounted past their deadline
        // are renumbered and retransmitted (safety net for tail losses).
        while let Some((&seq, o)) = self.outstanding.iter().next() {
            if o.resolve_deadline > now {
                break;
            }
            let o = self.outstanding.remove(&seq).expect("present");
            self.stats.resolve_expiries += 1;
            self.queue.push_front(QueuedSdu {
                packet_id: o.packet_id,
                payload: o.payload,
                reason: TxReason::ResolveExpired(seq),
            });
        }
        // Checkpoint timer → enforced recovery.
        if self.state == SenderState::Running {
            if let Some(d) = self.cp_deadline {
                if now >= d {
                    self.enter_enforced(now);
                }
            }
        }
        // Failure timer → link declared failed.
        if self.state == SenderState::Enforced {
            if let Some(d) = self.failure_deadline {
                if now >= d {
                    self.state = SenderState::Failed;
                    self.failure_deadline = None;
                    self.cp_deadline = None;
                    self.pending_request_nak = None;
                    self.events.push_back(SenderEvent::LinkFailed { at: now });
                    self.trace.emit(now, || TraceEvent::LinkFailed);
                }
            }
        }
    }

    fn enter_enforced(&mut self, now: Instant) {
        self.probe_counter += 1;
        let probe = self.probe_counter;
        self.state = SenderState::Enforced;
        self.pending_request_nak = Some(probe);
        self.cp_deadline = None;
        self.failure_deadline = Some(now + self.cfg.failure_timeout());
        // Nothing can resolve while the link is suspect: extend every
        // outstanding frame's resolving deadline past the recovery window
        // so the expiry safety-net doesn't duplicate frames the enforced
        // recovery is about to account for.
        let extended = now + self.cfg.failure_timeout() + self.cfg.resolving_period();
        for o in self.outstanding.values_mut() {
            o.resolve_deadline = o.resolve_deadline.max(extended);
        }
        self.events
            .push_back(SenderEvent::EnforcedRecoveryStarted { probe, at: now });
        self.trace
            .emit(now, || TraceEvent::EnforcedRecoveryStarted {
                outstanding: self.outstanding.len() as u64,
            });
    }

    /// Produce the next outbound frame, if transmission is currently
    /// allowed. Control frames (Request-NAK) take priority and are not
    /// rate-limited; retransmissions precede new I-frames; new I-frames
    /// require [`SenderState::Running`] and are paced by flow control.
    pub fn poll_transmit(&mut self, now: Instant) -> Option<Frame> {
        if self.state == SenderState::Failed {
            return None;
        }
        if let Some(probe) = self.pending_request_nak.take() {
            self.stats.request_naks += 1;
            self.last_probe_at = Some(now);
            return Some(Frame::Control(ControlFrame::RequestNak { probe }));
        }
        if now < self.next_tx_allowed {
            return None;
        }
        // Retransmissions are queued at the front (push_front in the NAK
        // and expiry paths), so a FIFO pop naturally prioritises them.
        let idx = self
            .queue
            .iter()
            .position(|q| q.reason != TxReason::New || self.state == SenderState::Running)?;
        let sdu = self.queue.remove(idx).expect("indexed");
        let seq = self.next_seq;
        self.next_seq += 1;
        match sdu.reason {
            TxReason::New => self.stats.new_transmissions += 1,
            TxReason::Nak { old, cp } => {
                self.stats.retransmissions += 1;
                self.events.push_back(SenderEvent::Renumbered {
                    packet_id: sdu.packet_id,
                    old_seq: old,
                    new_seq: seq,
                });
                self.trace.emit(now, || TraceEvent::Renumbered {
                    old_seq: old,
                    new_seq: seq,
                });
                self.trace.emit(now, || TraceEvent::RetxCause {
                    seq,
                    cause: "nak",
                    cp_index: cp,
                });
            }
            TxReason::ResolveExpired(old) => {
                self.stats.retransmissions += 1;
                self.events.push_back(SenderEvent::ResolvingExpired {
                    packet_id: sdu.packet_id,
                    old_seq: old,
                    new_seq: seq,
                });
                self.trace.emit(now, || TraceEvent::Renumbered {
                    old_seq: old,
                    new_seq: seq,
                });
                self.trace.emit(now, || TraceEvent::RetxCause {
                    seq,
                    cause: "resolve",
                    cp_index: 0,
                });
            }
            TxReason::Suspect { old, cp } => {
                self.stats.retransmissions += 1;
                self.stats.suspect_retransmissions += 1;
                self.trace.emit(now, || TraceEvent::Renumbered {
                    old_seq: old,
                    new_seq: seq,
                });
                self.trace.emit(now, || TraceEvent::RetxCause {
                    seq,
                    cause: "suspect",
                    cp_index: cp,
                });
            }
        }
        self.trace.emit(now, || TraceEvent::IFrameTx {
            seq,
            retx: sdu.reason != TxReason::New,
            len: sdu.payload.len() as u64,
        });
        self.outstanding.insert(
            seq,
            Outstanding {
                packet_id: sdu.packet_id,
                payload: sdu.payload.clone(),
                sent_at: now,
                resolve_deadline: now + self.cfg.resolving_period(),
            },
        );
        // Pace the next I-frame by the flow-controlled spacing.
        let spacing = self.cfg.t_f.mul_f64(self.rate.spacing_multiplier());
        self.next_tx_allowed = now + spacing;
        Some(Frame::Info(InfoFrame {
            seq,
            packet_id: sdu.packet_id,
            payload: sdu.payload,
        }))
    }

    /// Inject a frame received from the peer. Only control frames are
    /// meaningful to the sender; corrupted frames are dropped (the control
    /// FEC grade makes this rare).
    pub fn handle_frame(&mut self, now: Instant, frame: Frame, status: RxStatus) {
        if self.state == SenderState::Failed {
            return;
        }
        if status != RxStatus::Ok {
            self.stats.rx_corrupted += 1;
            return;
        }
        match frame {
            Frame::Control(ControlFrame::CheckPoint(cp)) => self.handle_checkpoint(now, cp),
            // A Request-NAK addressed to a sender endpoint is a peer
            // protocol error in this unidirectional pairing; ignore.
            Frame::Control(ControlFrame::RequestNak { .. }) => {}
            Frame::Info(_) => {}
        }
    }

    fn handle_checkpoint(&mut self, now: Instant, cp: CheckPoint) {
        // The channel is FIFO, so a smaller index is a duplicate; drop it.
        if cp.index <= self.last_cp_index {
            return;
        }
        let gap = cp.index - self.last_cp_index;
        let first_contact = self.last_cp_index == 0;
        if self.trace.enabled() && !first_contact && gap > 1 {
            // Intermediate indices never arrived: surface each inferred
            // loss (capped so a pathological gap can't flood the trace).
            for lost in (self.last_cp_index + 1..cp.index).take(32) {
                self.trace
                    .emit(now, || TraceEvent::CheckpointLost { index: lost });
            }
        }
        self.last_cp_index = cp.index;
        self.stats.checkpoints += 1;
        self.trace.emit(now, || TraceEvent::CheckpointReceived {
            index: cp.index,
            covered: cp.covered,
            naks: cp.naks.len() as u64,
        });

        // Any checkpoint proves the link alive: re-arm the checkpoint
        // timer. Enforced state is left only by an enforced checkpoint.
        if self.state == SenderState::Running {
            self.cp_deadline = Some(now + self.cfg.checkpoint_timeout());
        } else if self.state == SenderState::Enforced && !cp.enforced {
            // An ordinary checkpoint while enforced means the link is
            // alive but the Request-NAK (or its Enforced-NAK) was lost:
            // re-probe — at most once per expected response time — and
            // restart the failure timer. Declaring failure while the
            // receiver demonstrably responds would be wrong — the paper's
            // failure timer covers total silence.
            let response_window = self.cfg.expected_rtt + self.cfg.deadline_slack;
            let probe_stale = self
                .last_probe_at
                .is_none_or(|t| now.duration_since(t) >= response_window);
            if self.pending_request_nak.is_none() && probe_stale {
                self.probe_counter += 1;
                self.pending_request_nak = Some(self.probe_counter);
            }
            self.failure_deadline = Some(now + self.cfg.failure_timeout());
        }
        if cp.enforced && self.state == SenderState::Enforced {
            self.state = SenderState::Running;
            self.failure_deadline = None;
            self.pending_request_nak = None;
            self.cp_deadline = Some(now + self.cfg.checkpoint_timeout());
            self.events
                .push_back(SenderEvent::EnforcedRecoveryResolved {
                    probe: cp.probe.unwrap_or(self.probe_counter),
                });
            self.trace
                .emit(now, || TraceEvent::EnforcedRecoveryResolved);
        }

        // Checkpoint recovery: retransmit NAK'd frames still held. A NAK
        // for a sequence number no longer outstanding means that frame was
        // already renumbered and retransmitted — ignored, per §3.2.
        for &nak in &cp.naks {
            if let Some(o) = self.outstanding.remove(&nak) {
                self.queue.push_front(QueuedSdu {
                    packet_id: o.packet_id,
                    payload: o.payload,
                    reason: TxReason::Nak {
                        old: nak,
                        cp: cp.index,
                    },
                });
            }
        }

        // Implicit positive acknowledgement: outstanding frames at or
        // below the covered horizon and not NAK'd have arrived clean.
        //
        // Exception (zero-loss hardening, see module docs): if more than
        // C_depth checkpoint indices were missed, NAK information may have
        // been lost with them; the frames this checkpoint would release
        // are retransmitted defensively instead. The first checkpoint of a
        // connection is always safe: the receiver's cumulative window
        // reaches back to link start until C_depth intervals have elapsed,
        // and indices count from 1.
        let unsafe_release = !first_contact && gap > self.cfg.c_depth as u64
            || first_contact && cp.index > self.cfg.c_depth as u64;
        if unsafe_release {
            self.stats.unsafe_gaps += 1;
        }
        let releasable: Vec<u64> = self
            .outstanding
            .range(..=cp.covered)
            .map(|(&s, _)| s)
            .collect();
        for seq in releasable {
            let o = self.outstanding.remove(&seq).expect("present");
            if unsafe_release {
                self.queue.push_front(QueuedSdu {
                    packet_id: o.packet_id,
                    payload: o.payload,
                    reason: TxReason::Suspect {
                        old: seq,
                        cp: cp.index,
                    },
                });
            } else {
                self.stats.released += 1;
                let held_ns = now.duration_since(o.sent_at).as_nanos();
                self.events.push_back(SenderEvent::Released {
                    packet_id: o.packet_id,
                    seq,
                    held_for_ns: held_ns,
                });
                self.trace.emit(now, || TraceEvent::BufferRelease {
                    seq,
                    held_ns,
                    cp_index: cp.index,
                });
            }
        }

        // Flow control.
        if self.rate.on_stop_go(now, cp.stop_go) {
            self.events.push_back(SenderEvent::RateChanged {
                rate: self.rate.rate(),
            });
            self.trace.emit(now, || TraceEvent::StopGo {
                stop: cp.stop_go == crate::frame::StopGo::Stop,
            });
        }
    }

    /// The resolving period currently configured (`R + W_cp/2 +
    /// C_depth·W_cp` plus slack) — exposed for tests and experiments.
    pub fn resolving_period(&self) -> Duration {
        self.cfg.resolving_period()
    }
}

impl proto_core::Machine for Sender {
    type Frame = Frame;
    type Event = SenderEvent;

    fn start(&mut self, now: Instant) {
        Sender::start(self, now);
    }

    fn handle_frame(&mut self, now: Instant, frame: Frame, status: RxStatus) {
        Sender::handle_frame(self, now, frame, status);
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Frame> {
        Sender::poll_transmit(self, now)
    }

    fn poll_timeout(&self) -> Option<Instant> {
        Sender::poll_timeout(self)
    }

    fn on_timeout(&mut self, now: Instant) {
        Sender::on_timeout(self, now);
    }

    fn poll_event(&mut self) -> Option<SenderEvent> {
        Sender::poll_event(self)
    }

    fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }
}

impl proto_core::SenderMachine for Sender {
    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        Sender::push(self, PacketId(id), payload).is_ok()
    }

    fn buffered(&self) -> usize {
        Sender::buffered(self)
    }

    fn is_failed(&self) -> bool {
        self.state() == SenderState::Failed
    }

    fn rate(&self) -> f64 {
        Sender::rate(self)
    }

    fn transmissions(&self) -> u64 {
        let s = self.stats();
        s.new_transmissions + s.retransmissions
    }

    fn retransmissions(&self) -> u64 {
        self.stats().retransmissions
    }

    fn released_holding_ns(event: &SenderEvent) -> Option<u64> {
        match event {
            SenderEvent::Released { held_for_ns, .. } => Some(*held_for_ns),
            _ => None,
        }
    }

    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        let s = self.stats();
        vec![
            ("lams.sender.request_naks", s.request_naks as f64),
            ("lams.sender.unsafe_gaps", s.unsafe_gaps as f64),
            ("lams.sender.resolve_expiries", s.resolve_expiries as f64),
            (
                "lams.sender.suspect_retransmissions",
                s.suspect_retransmissions as f64,
            ),
            ("lams.sender.checkpoints_received", s.checkpoints as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StopGo;

    fn cfg() -> LamsConfig {
        LamsConfig::paper_default()
    }

    fn mk_cp(index: u64, covered: u64, naks: Vec<u64>) -> Frame {
        Frame::Control(ControlFrame::CheckPoint(CheckPoint {
            index,
            covered,
            naks,
            enforced: false,
            probe: None,
            stop_go: StopGo::Go,
        }))
    }

    fn started_sender() -> (Sender, Instant) {
        let mut s = Sender::new(cfg());
        let now = Instant::ZERO;
        s.start(now);
        (s, now)
    }

    fn push_n(s: &mut Sender, n: u64) {
        for i in 0..n {
            s.push(PacketId(i), Bytes::from_static(b"payload")).unwrap();
        }
    }

    /// Transmit as many frames as the sender will emit at `now`.
    fn drain_tx(s: &mut Sender, now: &mut Instant) -> Vec<Frame> {
        let mut out = Vec::new();
        loop {
            match s.poll_transmit(*now) {
                Some(f) => out.push(f),
                None => {
                    // Advance past pacing if more work remains.
                    match s.poll_timeout() {
                        Some(t) if t > *now && s.queued() > 0 => *now = t,
                        _ => break,
                    }
                }
            }
        }
        out
    }

    #[test]
    fn transmits_with_monotone_fresh_seqs() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 5);
        let frames = drain_tx(&mut s, &mut now);
        let seqs: Vec<u64> = frames
            .iter()
            .map(|f| match f {
                Frame::Info(i) => i.seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.outstanding(), 5);
        assert_eq!(s.stats().new_transmissions, 5);
    }

    #[test]
    fn pacing_enforces_frame_spacing() {
        let (mut s, now) = started_sender();
        push_n(&mut s, 2);
        assert!(s.poll_transmit(now).is_some());
        // Immediately after, pacing blocks.
        assert!(s.poll_transmit(now).is_none());
        let next = s.poll_timeout().unwrap();
        assert_eq!(next, now + cfg().t_f);
        assert!(s.poll_transmit(next).is_some());
    }

    #[test]
    fn checkpoint_releases_covered_frames() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 3);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(1, 2, vec![]), RxStatus::Ok);
        // Frames 1 and 2 released; 3 still outstanding.
        assert_eq!(s.outstanding(), 1);
        assert_eq!(s.stats().released, 2);
        let mut released = Vec::new();
        while let Some(e) = s.poll_event() {
            if let SenderEvent::Released { seq, .. } = e {
                released.push(seq);
            }
        }
        assert_eq!(released, vec![1, 2]);
    }

    #[test]
    fn nak_renumbers_and_retransmits() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 3);
        drain_tx(&mut s, &mut now);
        // NAK frame 2; frames 1 and 3 covered.
        s.handle_frame(now, mk_cp(1, 3, vec![2]), RxStatus::Ok);
        assert_eq!(s.stats().released, 2);
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.queued(), 1);
        now += Duration::from_micros(100);
        let f = s.poll_transmit(now).expect("retransmission");
        match f {
            Frame::Info(i) => {
                assert_eq!(i.seq, 4, "retransmission gets a fresh number");
                assert_eq!(i.packet_id, PacketId(1));
            }
            other => panic!("{other:?}"),
        }
        let renumbered = std::iter::from_fn(|| s.poll_event())
            .find_map(|e| match e {
                SenderEvent::Renumbered {
                    old_seq, new_seq, ..
                } => Some((old_seq, new_seq)),
                _ => None,
            })
            .expect("renumber event");
        assert_eq!(renumbered, (2, 4));
        assert_eq!(s.stats().retransmissions, 1);
    }

    #[test]
    fn duplicate_nak_for_renumbered_frame_ignored() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 2);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(1, 2, vec![1]), RxStatus::Ok);
        let _ = drain_tx(&mut s, &mut now); // retransmit as seq 3
        let retx_before = s.stats().retransmissions;
        // Cumulative NAK repeats seq 1 in the next checkpoint: ignored.
        s.handle_frame(now, mk_cp(2, 2, vec![1]), RxStatus::Ok);
        assert_eq!(s.stats().retransmissions, retx_before);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn stale_checkpoint_dropped() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 1);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(5, 0, vec![]), RxStatus::Ok);
        let n = s.stats().checkpoints;
        s.handle_frame(now, mk_cp(5, 1, vec![]), RxStatus::Ok);
        s.handle_frame(now, mk_cp(4, 1, vec![]), RxStatus::Ok);
        assert_eq!(s.stats().checkpoints, n);
        assert_eq!(s.outstanding(), 1, "stale checkpoint must not release");
    }

    #[test]
    fn corrupted_control_frame_dropped() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 1);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(1, 1, vec![]), RxStatus::PayloadCorrupted);
        assert_eq!(s.outstanding(), 1);
        assert_eq!(s.stats().rx_corrupted, 1);
        assert_eq!(s.stats().checkpoints, 0);
    }

    #[test]
    fn checkpoint_timeout_enters_enforced_recovery() {
        let (mut s, now) = started_sender();
        // Receive one checkpoint to arm the normal timer.
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        let deadline = s.poll_timeout().unwrap();
        assert_eq!(deadline, now + cfg().checkpoint_timeout());
        s.on_timeout(deadline);
        assert_eq!(s.state(), SenderState::Enforced);
        // The Request-NAK goes out ahead of any data.
        match s.poll_transmit(deadline) {
            Some(Frame::Control(ControlFrame::RequestNak { probe })) => {
                assert_eq!(probe, 1)
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            s.poll_event(),
            Some(SenderEvent::EnforcedRecoveryStarted { probe: 1, .. })
        ));
    }

    #[test]
    fn enforced_state_blocks_new_but_allows_retransmissions() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 2);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        let deadline = now + cfg().checkpoint_timeout();
        s.on_timeout(deadline);
        assert_eq!(s.state(), SenderState::Enforced);
        let _ = s.poll_transmit(deadline); // Request-NAK
                                           // Queue a new SDU: must not transmit while enforced.
        s.push(PacketId(99), Bytes::from_static(b"new")).unwrap();
        now = deadline + Duration::from_millis(1);
        assert!(s.poll_transmit(now).is_none());
        // But a NAK-triggered retransmission flows (ordinary checkpoint in
        // enforced state performs checkpoint recovery without resuming).
        // The probe is NOT re-armed yet: the first Request-NAK's response
        // window has not elapsed.
        s.handle_frame(now, mk_cp(2, 2, vec![1]), RxStatus::Ok);
        assert_eq!(s.state(), SenderState::Enforced);
        now += Duration::from_micros(50);
        match s.poll_transmit(now) {
            Some(Frame::Info(i)) => assert_eq!(i.packet_id, PacketId(0)),
            other => panic!("{other:?}"),
        }
        // Once the response window has passed, a further ordinary
        // checkpoint re-arms the probe (the first one evidently got lost).
        now = now + cfg().expected_rtt + Duration::from_millis(2);
        s.handle_frame(now, mk_cp(3, 2, vec![]), RxStatus::Ok);
        match s.poll_transmit(now) {
            Some(Frame::Control(ControlFrame::RequestNak { probe })) => {
                assert_eq!(probe, 2, "lost probe must be retried")
            }
            other => panic!("{other:?}"),
        }
        // Still no new frames.
        now += Duration::from_millis(1);
        assert!(s.poll_transmit(now).is_none());
    }

    #[test]
    fn enforced_nak_resolves_recovery() {
        let (mut s, now) = started_sender();
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        let deadline = now + cfg().checkpoint_timeout();
        s.on_timeout(deadline);
        let _ = s.poll_transmit(deadline);
        let enak = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
            index: 2,
            covered: 0,
            naks: vec![],
            enforced: true,
            probe: Some(1),
            stop_go: StopGo::Go,
        }));
        let t = deadline + Duration::from_millis(10);
        s.handle_frame(t, enak, RxStatus::Ok);
        assert_eq!(s.state(), SenderState::Running);
        let resolved = std::iter::from_fn(|| s.poll_event())
            .any(|e| matches!(e, SenderEvent::EnforcedRecoveryResolved { probe: 1 }));
        assert!(resolved);
    }

    #[test]
    fn failure_timer_declares_link_failed() {
        let (mut s, now) = started_sender();
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        let d1 = now + cfg().checkpoint_timeout();
        s.on_timeout(d1);
        let _ = s.poll_transmit(d1);
        let d2 = s.poll_timeout().unwrap();
        assert_eq!(d2, d1 + cfg().failure_timeout());
        s.on_timeout(d2);
        assert_eq!(s.state(), SenderState::Failed);
        let failed = std::iter::from_fn(|| s.poll_event())
            .any(|e| matches!(e, SenderEvent::LinkFailed { .. }));
        assert!(failed);
        // A failed sender is inert.
        assert!(s.poll_transmit(d2).is_none());
        assert!(s.poll_timeout().is_none());
    }

    #[test]
    fn resolve_expiry_retransmits_tail_loss() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 1);
        drain_tx(&mut s, &mut now);
        // Keep checkpoints flowing (empty ones that never cover seq 1 —
        // the tail frame vanished entirely).
        let rp = s.resolving_period();
        let mut idx = 0;
        let mut t = now;
        while t < now + rp {
            idx += 1;
            s.handle_frame(t, mk_cp(idx, 0, vec![]), RxStatus::Ok);
            t += cfg().w_cp;
        }
        s.on_timeout(t);
        assert_eq!(s.stats().resolve_expiries, 1);
        let f = s.poll_transmit(t + Duration::from_millis(1)).expect("retx");
        match f {
            Frame::Info(i) => assert_eq!(i.packet_id, PacketId(0)),
            other => panic!("{other:?}"),
        }
        let seen = std::iter::from_fn(|| s.poll_event())
            .any(|e| matches!(e, SenderEvent::ResolvingExpired { old_seq: 1, .. }));
        assert!(seen);
    }

    #[test]
    fn unsafe_index_gap_retransmits_instead_of_releasing() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 2);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        // Jump from index 1 to index 1 + c_depth + 1: more than C_depth
        // checkpoints lost → coverage is unsafe.
        let jump = 1 + cfg().c_depth as u64 + 1;
        now += Duration::from_millis(1);
        s.handle_frame(now, mk_cp(jump, 2, vec![]), RxStatus::Ok);
        assert_eq!(s.stats().unsafe_gaps, 1);
        assert_eq!(s.stats().released, 0, "must not release across the gap");
        assert_eq!(s.queued(), 2, "both frames requeued defensively");
        let frames = drain_tx(&mut s, &mut now);
        assert_eq!(frames.len(), 2);
        assert_eq!(s.stats().suspect_retransmissions, 2);
    }

    #[test]
    fn small_index_gap_is_safe() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 1);
        drain_tx(&mut s, &mut now);
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        now += Duration::from_millis(1);
        // Gap of exactly c_depth (indices 2..c_depth missed) is still safe.
        s.handle_frame(
            now,
            mk_cp(1 + cfg().c_depth as u64, 1, vec![]),
            RxStatus::Ok,
        );
        assert_eq!(s.stats().released, 1);
        assert_eq!(s.stats().unsafe_gaps, 0);
    }

    #[test]
    fn stop_go_feedback_changes_rate() {
        let (mut s, now) = started_sender();
        let cp = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
            index: 1,
            covered: 0,
            naks: vec![],
            enforced: false,
            probe: None,
            stop_go: StopGo::Stop,
        }));
        s.handle_frame(now, cp, RxStatus::Ok);
        assert!((s.rate() - 0.5).abs() < 1e-12);
        let changed = std::iter::from_fn(|| s.poll_event())
            .any(|e| matches!(e, SenderEvent::RateChanged { .. }));
        assert!(changed);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut s = Sender::new(cfg()).with_queue_capacity(2);
        s.start(Instant::ZERO);
        assert!(s.push(PacketId(0), Bytes::new()).is_ok());
        assert!(s.push(PacketId(1), Bytes::new()).is_ok());
        assert_eq!(s.push(PacketId(2), Bytes::new()), Err(QueueFull));
    }

    #[test]
    fn flow_control_stretches_pacing() {
        // After a Stop, the inter-frame spacing doubles (rate 0.5).
        let (mut s, now) = started_sender();
        push_n(&mut s, 3);
        let f1 = s.poll_transmit(now).expect("first frame");
        assert!(f1.is_info());
        let stop = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
            index: 1,
            covered: 0,
            naks: vec![],
            enforced: false,
            probe: None,
            stop_go: StopGo::Stop,
        }));
        s.handle_frame(now, stop, RxStatus::Ok);
        assert!((s.rate() - 0.5).abs() < 1e-12);
        // The frame sent after the Stop is spaced 2·t_f from its own
        // transmission time.
        let t1 = now + cfg().t_f; // pre-Stop spacing still applies once
        let f2 = s.poll_transmit(t1).expect("second frame");
        assert!(f2.is_info());
        assert!(s.poll_transmit(t1 + cfg().t_f).is_none(), "half rate");
        assert!(s.poll_transmit(t1 + cfg().t_f * 2).is_some());
    }

    #[test]
    fn released_event_reports_holding_time() {
        let (mut s, mut now) = started_sender();
        push_n(&mut s, 1);
        drain_tx(&mut s, &mut now);
        let sent_at = now;
        let later = sent_at + Duration::from_millis(20);
        s.handle_frame(later, mk_cp(1, 1, vec![]), RxStatus::Ok);
        let held = std::iter::from_fn(|| s.poll_event())
            .find_map(|e| match e {
                SenderEvent::Released { held_for_ns, .. } => Some(held_for_ns),
                _ => None,
            })
            .expect("released");
        assert_eq!(held, 20_000_000);
    }

    #[test]
    fn failed_sender_rejects_everything_quietly() {
        let (mut s, now) = started_sender();
        s.handle_frame(now, mk_cp(1, 0, vec![]), RxStatus::Ok);
        let d1 = now + cfg().checkpoint_timeout();
        s.on_timeout(d1);
        let _ = s.poll_transmit(d1);
        s.on_timeout(d1 + cfg().failure_timeout());
        assert_eq!(s.state(), SenderState::Failed);
        // Late frames and checkpoints are ignored without panicking.
        s.handle_frame(
            d1 + Duration::from_secs(1),
            mk_cp(99, 50, vec![1]),
            RxStatus::Ok,
        );
        assert_eq!(s.state(), SenderState::Failed);
        assert!(s.poll_transmit(d1 + Duration::from_secs(1)).is_none());
    }

    #[test]
    fn initial_grace_exceeds_plain_timeout() {
        let (s, now) = started_sender();
        let d = s.poll_timeout().unwrap();
        assert_eq!(d, now + cfg().expected_rtt + cfg().checkpoint_timeout());
    }
}

// ------------------------------------------------------------ sans-IO host contract
