//! Insertion-ordered counter/gauge registry.
//!
//! Endpoints publish their protocol-specific metrics (`request_naks`,
//! `timeouts`, ...) into a [`Registry`] instead of hand-building
//! `Vec<(&'static str, f64)>` snapshots. Names are `&'static str` by
//! design: the set of metrics is fixed at compile time, and static
//! names keep the registry allocation-light and typo-resistant at the
//! call site (one shared constant per metric).
//!
//! A linear scan over a `Vec` beats a map here — registries hold a
//! handful of entries and are snapshotted once per run.

use crate::json::Json;

/// A named collection of `f64` counters and gauges.
///
/// Counters and gauges share one namespace; the distinction is purely
/// in how they're updated (`inc`/`add` versus `set`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    entries: Vec<(&'static str, f64)>,
}

/// A pre-resolved slot index into the [`Registry`] that issued it (see
/// [`Registry::handle`]). Only valid for that registry: indices are
/// registry-local.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHandle(usize);

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&mut self, name: &'static str) -> &mut f64 {
        if let Some(i) = self.entries.iter().position(|(n, _)| *n == name) {
            &mut self.entries[i].1
        } else {
            self.entries.push((name, 0.0));
            &mut self.entries.last_mut().expect("just pushed").1
        }
    }

    /// Increment a counter by 1.
    pub fn inc(&mut self, name: &'static str) {
        *self.slot(name) += 1.0;
    }

    /// Resolve `name` once into a [`CounterHandle`] for hot call sites:
    /// the handle updates its slot by index, skipping the name scan the
    /// string-keyed methods pay on every call. The entry is created
    /// (at 0.0) if absent, preserving insertion order.
    pub fn handle(&mut self, name: &'static str) -> CounterHandle {
        if let Some(i) = self.entries.iter().position(|(n, _)| *n == name) {
            CounterHandle(i)
        } else {
            self.entries.push((name, 0.0));
            CounterHandle(self.entries.len() - 1)
        }
    }

    /// Increment the counter behind a pre-resolved handle by 1.
    #[inline]
    pub fn inc_handle(&mut self, h: CounterHandle) {
        self.entries[h.0].1 += 1.0;
    }

    /// Add `delta` to the counter behind a pre-resolved handle.
    #[inline]
    pub fn add_handle(&mut self, h: CounterHandle, delta: f64) {
        self.entries[h.0].1 += delta;
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, name: &'static str, delta: f64) {
        *self.slot(name) += delta;
    }

    /// Set a gauge to `value` (creating it if absent).
    pub fn set(&mut self, name: &'static str, value: f64) {
        *self.slot(name) = value;
    }

    /// Set a gauge to the max of its current value and `value`.
    pub fn set_max(&mut self, name: &'static str, value: f64) {
        let slot = self.slot(name);
        if value > *slot {
            *slot = value;
        }
    }

    /// Current value, or `None` when the name was never touched.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(&'static str, f64)] {
        &self.entries
    }

    /// Fold another registry into this one (summing shared names).
    /// Gauges merged this way become sums; merge before setting gauges
    /// or keep gauge-bearing registries separate.
    pub fn absorb(&mut self, other: &Registry) {
        for (name, v) in &other.entries {
            *self.slot(name) += v;
        }
    }

    /// Names registered here that violate the workspace
    /// `crate.component.event` convention (see [`is_canonical_name`]).
    pub fn non_canonical_names(&self) -> Vec<&'static str> {
        self.entries
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| !is_canonical_name(n))
            .collect()
    }

    /// Render as a JSON object `{name: value, ...}` in insertion order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(n, v)| ((*n).to_string(), Json::Num(*v)))
                .collect(),
        )
    }
}

/// True when `name` follows the workspace metric naming convention:
/// `crate.component.event` — exactly three non-empty dot-separated
/// segments of lowercase ASCII letters, digits, and underscores
/// (e.g. `lams.sender.request_naks`, `harness.collector.unmatched`).
pub fn is_canonical_name(name: &str) -> bool {
    let mut segments = 0;
    for seg in name.split('.') {
        segments += 1;
        let ok = !seg.is_empty()
            && seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_');
        if !ok {
            return false;
        }
    }
    segments == 3
}

impl FromIterator<(&'static str, f64)> for Registry {
    fn from_iter<I: IntoIterator<Item = (&'static str, f64)>>(iter: I) -> Self {
        let mut reg = Registry::new();
        for (name, v) in iter {
            reg.add(name, v);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.inc("naks");
        r.inc("naks");
        r.add("naks", 3.0);
        assert_eq!(r.get("naks"), Some(5.0));
        assert_eq!(r.get("absent"), None);
    }

    #[test]
    fn handles_update_their_slot() {
        let mut r = Registry::new();
        r.inc("first");
        let h = r.handle("hot");
        assert_eq!(r.get("hot"), Some(0.0));
        r.inc_handle(h);
        r.add_handle(h, 2.5);
        assert_eq!(r.get("hot"), Some(3.5));
        // Resolving an existing name yields the same slot; insertion
        // order is untouched.
        assert_eq!(r.handle("hot"), h);
        r.inc("first");
        let names: Vec<&str> = r.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["first", "hot"]);
    }

    #[test]
    fn gauges_set_and_max() {
        let mut r = Registry::new();
        r.set("depth", 4.0);
        r.set_max("depth", 2.0);
        assert_eq!(r.get("depth"), Some(4.0));
        r.set_max("depth", 9.0);
        assert_eq!(r.get("depth"), Some(9.0));
    }

    #[test]
    fn insertion_order_preserved() {
        let mut r = Registry::new();
        r.inc("b");
        r.inc("a");
        r.inc("b");
        let names: Vec<&str> = r.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn absorb_sums() {
        let mut a = Registry::new();
        a.inc("x");
        let mut b = Registry::new();
        b.add("x", 2.0);
        b.inc("y");
        a.absorb(&b);
        assert_eq!(a.get("x"), Some(3.0));
        assert_eq!(a.get("y"), Some(1.0));
    }

    #[test]
    fn canonical_name_convention() {
        for good in [
            "lams.sender.request_naks",
            "harness.collector.unmatched",
            "hdlc.gbn_sender.timeouts",
            "a1.b2.c_3",
        ] {
            assert!(is_canonical_name(good), "{good}");
        }
        for bad in [
            "request_naks",
            "lams.sender",
            "lams.sender.request.naks",
            "Lams.sender.naks",
            "lams..naks",
            "lams.sender.naks ",
            "",
        ] {
            assert!(!is_canonical_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn non_canonical_names_reported() {
        let mut r = Registry::new();
        r.inc("lams.sender.request_naks");
        r.inc("straggler");
        assert_eq!(r.non_canonical_names(), vec!["straggler"]);
    }

    #[test]
    fn json_shape() {
        let mut r = Registry::new();
        r.add("k", 2.5);
        assert_eq!(r.to_json().render(), r#"{"k":2.5}"#);
    }
}
