//! Link-level duplicate suppression — the paper's "more recent version"
//! (§3.2: "a more recent version of LAMS-DLC guarantees zero duplication
//! as well as zero loss, however the analysis for this model has yet to
//! be completed").
//!
//! Duplicates arise only from *recovery* paths: enforced recovery after
//! an outage, the unsafe-gap hardening, or a resolving-deadline expiry —
//! all of which retransmit a frame that may in fact have arrived. The
//! key observation that makes suppression cheap: any duplicate reaches
//! the receiver within one **resolving period** of the original (after
//! that the sender either released the frame or declared the link
//! failed), so the receiver only needs to remember the packet ids it
//! accepted during the last resolving period — a bounded window, in
//! keeping with the protocol's bounded-state design.
//!
//! [`DedupWindow`] is that memory: a time-expiring set of
//! [`PacketId`]s with O(1) amortised insert/query.

use crate::frame::PacketId;
use proto_core::{Duration, Instant};
use std::collections::{HashSet, VecDeque};

/// A time-windowed set of recently accepted packet ids.
pub struct DedupWindow {
    /// How long an id is remembered. Must be at least the resolving
    /// period for the zero-duplication guarantee to hold.
    horizon: Duration,
    /// Insertion log, oldest first.
    log: VecDeque<(Instant, PacketId)>,
    seen: HashSet<PacketId>,
    /// Duplicates suppressed so far.
    suppressed: u64,
}

impl DedupWindow {
    /// Create a window remembering ids for `horizon` (pass the
    /// [`crate::config::LamsConfig::resolving_period`]).
    pub fn new(horizon: Duration) -> Self {
        assert!(!horizon.is_zero(), "dedup horizon must be positive");
        DedupWindow {
            horizon,
            log: VecDeque::new(),
            seen: HashSet::new(),
            suppressed: 0,
        }
    }

    /// Offer an id at time `now`. Returns `true` if it is fresh (accept
    /// and deliver) or `false` if it duplicates an id accepted within the
    /// horizon (suppress).
    pub fn accept(&mut self, now: Instant, id: PacketId) -> bool {
        self.expire(now);
        if self.seen.contains(&id) {
            self.suppressed += 1;
            return false;
        }
        self.seen.insert(id);
        self.log.push_back((now, id));
        true
    }

    /// Drop entries older than the horizon.
    fn expire(&mut self, now: Instant) {
        while let Some(&(t, id)) = self.log.front() {
            if now.duration_since(t.min(now)) > self.horizon {
                self.log.pop_front();
                self.seen.remove(&id);
            } else {
                break;
            }
        }
    }

    /// Ids currently remembered.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Duplicates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// The configured horizon.
    pub fn horizon(&self) -> Duration {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(ms: u64) -> DedupWindow {
        DedupWindow::new(Duration::from_millis(ms))
    }

    #[test]
    fn fresh_ids_accepted() {
        let mut d = w(10);
        assert!(d.accept(Instant::ZERO, PacketId(1)));
        assert!(d.accept(Instant::ZERO, PacketId(2)));
        assert_eq!(d.len(), 2);
        assert_eq!(d.suppressed(), 0);
    }

    #[test]
    fn duplicate_within_horizon_suppressed() {
        let mut d = w(10);
        assert!(d.accept(Instant::ZERO, PacketId(1)));
        assert!(!d.accept(Instant::from_millis(5), PacketId(1)));
        assert_eq!(d.suppressed(), 1);
    }

    #[test]
    fn id_forgotten_after_horizon() {
        let mut d = w(10);
        assert!(d.accept(Instant::ZERO, PacketId(1)));
        // 11 ms later the memory has expired; the id is "fresh" again
        // (correct per the bounded-window contract: a true duplicate can
        // no longer arrive this late).
        assert!(d.accept(Instant::from_millis(11), PacketId(1)));
        assert_eq!(d.len(), 1, "expired entry must be evicted");
    }

    #[test]
    fn memory_stays_bounded() {
        let mut d = w(1);
        for k in 0..10_000u64 {
            let t = Instant::from_micros(k * 100); // 10 ids per horizon
            d.accept(t, PacketId(k));
            assert!(d.len() <= 12, "window leaked: {} entries", d.len());
        }
    }

    #[test]
    fn boundary_exactly_at_horizon_still_remembered() {
        let mut d = w(10);
        d.accept(Instant::ZERO, PacketId(7));
        assert!(!d.accept(Instant::from_millis(10), PacketId(7)));
    }

    #[test]
    #[should_panic]
    fn zero_horizon_rejected() {
        let _ = DedupWindow::new(Duration::ZERO);
    }
}
