//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                      # run every experiment at full size
//! repro e1 e5                # run a subset
//! repro --quick all          # CI-sized workloads
//! repro --list               # show the experiment index
//! repro --json report.json   # also write machine-readable results
//! repro --trace run.jsonl    # also write a protocol event trace (JSONL)
//! repro --metrics m.jsonl    # also write windowed time-series metrics
//! repro --profile p.json     # self-profile (span trees + table)
//! repro --profile-folded p.folded  # collapsed stacks for flamegraphs
//! repro --workers 4          # fan experiments out across 4 threads
//! repro --shards 8 e18       # split sharded-family simulations over 8 cores
//! repro --shards 3 --timeline t.json e18   # Perfetto superstep timeline
//! ```
//!
//! `--json` writes one JSON document:
//!
//! ```text
//! {
//!   "schema": "lams-dlc.repro/1",
//!   "quick": bool,
//!   "experiments": [
//!     { "id", "title", "tables", "traces", "notes",   // ExperimentOutput
//!       "perf": {"scheduled", "popped", "cancelled", "peak_depth",
//!                "horizon_s", "wall_secs", "events_per_sec",
//!                "runs"} | null,                       // merged over runs
//!       "metrics": {"runs", "frames", "delivered", "naks",
//!                   "retransmissions", "max_tx_outstanding",
//!                   "audit_findings",
//!                   "delivery_latency": {"count", "p50_s", "p99_s"}}
//!                | null,                               // live monitor
//!       "attribution": {"sdus", "clean", "errored", "incomplete",
//!                       "audit_failures", "latency_total_ns",
//!                       "max_nak_repeats",
//!                       "phases": {<phase>: {"count", "total_ns",
//!                                            "max_ns"}, ...},
//!                       "reseq_hold": {"count", "total_ns", "max_ns"},
//!                       "resolution": {"cycles", "max_ns", "bound_ns",
//!                                      "violations"}}
//!                | null }           // causal latency attribution
//!   ]
//! }
//! ```
//!
//! `--trace` installs a global JSONL sink for the duration: every
//! simulation run appends [`telemetry::TraceRecord`]s (one JSON object
//! per line: `{"t", "node", "event", ...}`) to the given path. With
//! `--workers > 1` the records are buffered per experiment and written
//! in experiment order, so the trace file is identical to a serial run.
//!
//! `--metrics` writes the live monitor's fixed-interval windowed series
//! (one JSON object per window per link per run: throughput, NAK rate,
//! retransmissions, occupancy high-water marks) in experiment order.
//!
//! Every experiment additionally runs under a live protocol auditor
//! ([`monitor::Monitor`]) checking the LAMS-DLC invariants as events
//! arrive; any violation is printed to stderr and fails the process
//! with exit code 1.
//!
//! `--profile` turns on the wall-clock span profiler for each
//! experiment and writes one `lams-dlc.profile/1` document: per
//! experiment, the call-path span tree (integer-nanosecond totals and
//! self times), the table-capacity counters, queue-depth samples, and
//! the allocation delta (null unless the binary installs the counting
//! allocator — `bench` does, `repro` does not). A human-readable
//! breakdown is printed after each experiment's tables.
//! `--profile-folded` writes the same trees as collapsed stacks
//! (`e1;experiment;sim.run;queue.pop 12345` — self time in ns), ready
//! for `flamegraph.pl` or any collapsed-stack renderer. Profiling only
//! reads the wall clock: simulated results are byte-identical with it
//! on or off.
//!
//! Results, the JSON document, the trace stream, and the metric series
//! are merged in experiment order regardless of `--workers`, so output
//! at any worker count is byte-identical apart from measured wall-clock
//! seconds.

use harness::runner::{self, CliArgs};
use harness::{experiments, parallel, profile_report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli: CliArgs = match runner::parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", runner::USAGE);
            std::process::exit(2);
        }
    };

    if cli.list {
        println!("experiment index (paper artifact → id):");
        for (id, title) in runner::INDEX {
            println!("  {id:>4}  {title}");
        }
        return;
    }

    if let Err(msg) = runner::validate_paths(&cli) {
        eprintln!("error: {msg}\n\n{}", runner::USAGE);
        std::process::exit(2);
    }

    parallel::set_workers(cli.workers);
    parallel::set_shards(cli.shards);

    if let Some(path) = &cli.trace {
        match telemetry::JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => {
                telemetry::install_global(std::rc::Rc::new(std::cell::RefCell::new(sink)));
            }
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let ids: Vec<String> = if cli.ids.is_empty() {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else {
        cli.ids.clone()
    };
    let runs = runner::run_experiments_with(&ids, cli.quick, cli.profiled());

    let mut unknown = false;
    for run in &runs {
        match &run.output {
            Some(out) => {
                print!("{}", out.render());
                // The latency budget: where delivered SDUs spent their
                // time, per phase, with the analytic-bound verdict.
                if let Some(exp) = run.audit.experiment(&run.id) {
                    print!("{}", runner::attribution_table(&run.id, &exp.attribution));
                }
                // Where the CPU nanoseconds went, when profiled.
                if let Some(p) = &run.profile {
                    print!("{}", p.table(&run.id, run.perf.as_ref().map(|(q, _, _)| q)));
                }
                // The sharded runtime's superstep accounting, when the
                // experiment ran sharded simulations.
                if let Some(acc) = &run.shard {
                    print!("{}", runner::shard_table(&run.id, &acc.profile));
                }
            }
            None => {
                eprintln!("unknown experiment id: {} (try --list)", run.id);
                unknown = true;
            }
        }
    }

    // The live auditor's verdicts: any invariant violation fails the
    // whole reproduction loudly.
    let mut violations = 0u64;
    for run in &runs {
        if run.audit.total_findings == 0 {
            continue;
        }
        violations += run.audit.total_findings;
        eprintln!(
            "AUDIT FAILURE in {}: {} invariant violation(s)",
            run.id, run.audit.total_findings
        );
        for f in &run.audit.findings {
            eprintln!("  {f}");
        }
        let suppressed = run.audit.total_findings - run.audit.findings.len() as u64;
        if suppressed > 0 {
            eprintln!("  ... and {suppressed} more");
        }
    }

    if let Some(path) = &cli.metrics {
        let mut buf = String::new();
        for run in &runs {
            for line in &run.audit.window_lines {
                buf.push_str(&line.render());
                buf.push('\n');
            }
        }
        if let Err(e) = std::fs::write(path, buf) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &cli.json {
        let doc = runner::report_json(&runs, cli.quick);
        if let Err(e) = std::fs::write(path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &cli.profile {
        let doc = profile_report::profile_doc(&runs, cli.quick);
        if let Err(e) = std::fs::write(path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &cli.timeline {
        let doc = runner::timeline_json(&runs);
        if let Err(e) = std::fs::write(path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} (open in Perfetto / chrome://tracing)");
    }

    if let Some(path) = &cli.profile_folded {
        if let Err(e) = std::fs::write(path, profile_report::folded(&runs)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    let mut trace_failed = false;
    if let Some(path) = &cli.trace {
        if let Some(sink) = telemetry::uninstall_global() {
            sink.borrow_mut().flush();
            // A failed write silently truncates the trace file; surface
            // it and fail instead of reporting a clean run.
            let lost = sink.borrow().dropped();
            if lost > 0 {
                eprintln!("trace write to {path} failed: {lost} record(s) lost");
                trace_failed = true;
            } else {
                eprintln!("wrote {path} ({} trace records)", sink.borrow().len());
            }
        }
    }

    if unknown {
        std::process::exit(2);
    }
    if trace_failed {
        std::process::exit(1);
    }
    if violations > 0 {
        eprintln!("protocol audit failed: {violations} invariant violation(s)");
        std::process::exit(1);
    }
}
