//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro              # run every experiment at full size
//! repro e1 e5        # run a subset
//! repro --quick all  # CI-sized workloads
//! repro --list       # show the experiment index
//! ```

use harness::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-') && *a != "all")
        .cloned()
        .collect();

    if list {
        println!("experiment index (paper artifact → id):");
        for (id, title) in [
            ("e1", "Retransmission probability & mean periods (P_R, s-bar)"),
            ("e2", "Throughput efficiency vs offered traffic N"),
            ("e3", "Throughput efficiency vs residual BER"),
            ("e4", "Throughput efficiency vs link distance"),
            ("e5", "Transparent buffer size (B_LAMS finite, B_HDLC = inf)"),
            ("e6", "Sender holding time H_frame vs W_cp"),
            ("e7", "Low-traffic delivery time D_low(N)"),
            ("e8", "Burst-error resilience (Gilbert-Elliott)"),
            ("e9", "Enforced recovery & failure detection"),
            ("e10", "Bounded numbering size"),
            ("e11", "Stop-Go flow control"),
            ("e12", "W_cp x C_depth ablation"),
            ("e13", "Store-and-forward relay chain (end-to-end)"),
            ("e14", "Optimal frame length"),
            ("e15", "Full-duplex operation (no-piggyback cost)"),
            ("e16", "Delay vs offered load (throughput/delay tradeoff)"),
            ("e17", "Go-Back-N baseline collapse"),
        ] {
            println!("  {id:>4}  {title}");
        }
        return;
    }

    let run_ids: Vec<&str> = if ids.is_empty() {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    for id in run_ids {
        match experiments::run_by_id(id, quick) {
            Some(out) => print!("{}", out.render()),
            None => eprintln!("unknown experiment id: {id} (try --list)"),
        }
    }
}
