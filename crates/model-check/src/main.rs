//! Adversarial schedule sweep for the sans-IO LAMS-DLC machines.
//!
//! ```text
//! model-check [--schedules N]
//! ```
//!
//! Runs `N` (default 1000) derived schedules through the pure machines
//! and reports invariant violations. Exits non-zero if any invariant
//! broke.

use model_check::run_sweep;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut schedules: u64 = 1000;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--schedules" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => schedules = n,
                _ => {
                    eprintln!("--schedules requires an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: model-check [--schedules N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("model-check: exploring {schedules} adversarial schedules");
    let report = run_sweep(schedules);
    println!(
        "complete: {} | declared link failures: {} | violations: {} | \
         retransmissions across completed runs: {}",
        report.complete,
        report.link_failures,
        report.violations.len(),
        report.retransmissions,
    );
    if report.violations.is_empty() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
