//! E14 — optimal frame length (ours; the §1 NBDT thread): user-payload
//! goodput vs frame size at several residual BERs, simulated, against the
//! analytic optimum. LAMS-DLC's renumbering (like NBDT's absolute
//! numbering) leaves the frame size free to be tuned.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, ScenarioConfig};
use analysis::framesize::{goodput_fraction, optimal_payload_bits};
use sim_core::Duration;

/// Payload sizes swept, bytes.
pub const PAYLOADS: &[usize] = &[128, 512, 1024, 4096, 16384];

/// Wire + FEC-tail overhead per LAMS I-frame, bits (19 header/FCS bytes
/// plus the convolutional tail).
const OVERHEAD_BITS: f64 = 19.0 * 8.0 + 12.0;

/// Run E14.
pub fn run(quick: bool) -> ExperimentOutput {
    let ber = 1e-5;
    let mut table = Table::new(
        "steady-state user-payload goodput vs frame size (residual BER 1e-5)",
        &["payload_bytes", "analytic_goodput", "sim_goodput"],
    );
    // Keep the byte volume constant so every row does the same work.
    let total_bytes: u64 = if quick { 4 << 20 } else { 32 << 20 };
    let runs = parallel::map(PAYLOADS.to_vec(), |payload| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.payload_bytes = payload;
        cfg.n_packets = (total_bytes / payload as u64).max(300);
        cfg.data_residual_ber = ber;
        cfg.ctrl_residual_ber = ber / 10.0;
        cfg.deadline = Duration::from_secs(600);
        run_lams(&cfg)
    });
    for (&payload, r) in PAYLOADS.iter().zip(runs) {
        // Steady-state goodput fraction — exactly the quantity g(L)
        // models: the payload share of a slot times the fraction of
        // transmissions that are first transmissions (1/s̄). Measuring a
        // time-based ratio instead would fold in the batch completion
        // tail, which the frame-size tradeoff is not about.
        let payload_bits = payload as f64 * 8.0;
        let payload_fraction = payload_bits / (payload_bits + OVERHEAD_BITS);
        let sim_goodput =
            payload_fraction * r.delivered_unique as f64 / r.transmissions.max(1) as f64;
        table.row(vec![
            (payload as u64).into(),
            goodput_fraction(payload_bits, OVERHEAD_BITS, ber).into(),
            sim_goodput.into(),
        ]);
    }
    let mut optima = Table::new(
        "analytic optimal payload vs residual BER",
        &["residual_ber", "optimal_payload_bytes"],
    );
    for ber in [1e-6, 1e-5, 1e-4] {
        let l = optimal_payload_bits(OVERHEAD_BITS, ber).unwrap() / 8.0;
        optima.row(vec![ber.into(), l.into()]);
    }
    ExperimentOutput {
        id: "E14",
        title: "Optimal frame length (§1 NBDT thread; renumbering frees the size)".into(),
        tables: vec![table, optima],
        traces: vec![],
        notes: vec![
            "expected shape: goodput rises with frame size while header \
             amortisation dominates, peaks near the analytic optimum \
             L* ≈ √(OH/p) ≈ 500 B at residual 1e-5, then falls as the \
             per-frame error probability grows"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_goodput_peaks_in_the_middle() {
        let out = run(true);
        let t = &out.tables[0];
        // Simulated goodput at the extremes is below the best row.
        let best = (0..t.len())
            .map(|r| t.value(r, 2).unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        let first = t.value(0, 2).unwrap();
        let last = t.value(t.len() - 1, 2).unwrap();
        assert!(best > first, "goodput should improve past 128 B frames");
        assert!(best > last, "goodput should fall by 16 kB frames at 1e-5");
        // Analytic and simulated goodput agree loosely at every size.
        for row in 0..t.len() {
            let a = t.value(row, 1).unwrap();
            let s = t.value(row, 2).unwrap();
            assert!((a - s).abs() / a < 0.15, "row {row}: analytic {a} sim {s}");
        }
        // And the analytic optimum at 1e-5 is ≈ √(OH/p)/8 ≈ 500 B.
        let opt = out.tables[1].value(1, 1).unwrap();
        assert!(opt > 300.0 && opt < 800.0, "optimum {opt} B");
    }
}
