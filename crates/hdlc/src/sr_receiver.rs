//! Selective-repeat HDLC receiver.
//!
//! Holds out-of-order frames in a resequencing buffer of (at most) the
//! window size and delivers **in sequence** — the in-sequence constraint
//! the paper relaxes in LAMS-DLC and whose cost (buffer occupancy,
//! delayed delivery) the experiments measure. SREJs are emitted once per
//! missing/corrupted sequence number; the sender's timeout covers SREJ
//! loss (§2.3: "if a SREJ is lost, the sender resends the corresponding
//! frame after the timeout period has expired"). An RR is returned
//! whenever a Poll-bit frame arrives — the paper's single
//! response per (re)transmission period.

use crate::config::HdlcConfig;
use crate::frame::{HdlcFrame, RxStatus};
use bytes::Bytes;
use proto_core::Instant;
use proto_core::{Trace, TraceEvent};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A datagram delivered upward, in sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SrDelivery {
    /// End-to-end datagram id.
    pub packet_id: u64,
    /// Link sequence number.
    pub ns: u64,
    /// Payload.
    pub payload: Bytes,
    /// Instant processing completed.
    pub ready_at: Instant,
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SrReceiverStats {
    /// Clean in-window frames accepted.
    pub accepted: u64,
    /// Frames delivered in sequence.
    pub delivered: u64,
    /// Duplicates dropped.
    pub duplicates: u64,
    /// SREJs emitted.
    pub srejs_sent: u64,
    /// RRs emitted (poll responses).
    pub rrs_sent: u64,
    /// Corrupted arrivals recorded.
    pub corrupted: u64,
    /// Frames inferred lost from sequence gaps.
    pub gaps_inferred: u64,
    /// Peak resequencing-buffer occupancy (bounded by the window — the
    /// §4 receiving-buffer requirement of SR-HDLC).
    pub peak_buffered: usize,
}

/// The SR-HDLC receiving endpoint.
pub struct SrReceiver {
    cfg: HdlcConfig,
    /// Next in-sequence number expected for delivery.
    expected: u64,
    /// Highest first-transmission number seen (gap detection; first
    /// transmissions are emitted in order on a FIFO link).
    highest_seen: Option<u64>,
    buffer: BTreeMap<u64, (u64, Bytes)>,
    /// Sequence numbers already SREJ'd (one SREJ per number).
    srej_sent: BTreeSet<u64>,
    pending_tx: VecDeque<HdlcFrame>,
    processing: VecDeque<SrDelivery>,
    server_free_at: Instant,
    stats: SrReceiverStats,
    trace: Trace,
}

impl SrReceiver {
    /// Create a receiver.
    pub fn new(cfg: HdlcConfig) -> Self {
        cfg.validate().expect("invalid HdlcConfig");
        SrReceiver {
            cfg,
            expected: 0,
            highest_seen: None,
            buffer: BTreeMap::new(),
            srej_sent: BTreeSet::new(),
            pending_tx: VecDeque::new(),
            processing: VecDeque::new(),
            server_free_at: Instant::ZERO,
            stats: SrReceiverStats::default(),
            trace: Trace::disabled(),
        }
    }

    /// Mark the link active.
    pub fn start(&mut self, now: Instant) {
        self.server_free_at = now;
    }

    /// Counters.
    pub fn stats(&self) -> SrReceiverStats {
        self.stats
    }

    /// Frames held for resequencing (the §4 receiving-buffer occupancy).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Next sequence number expected in order.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Earliest instant of time-driven work (processing completions).
    pub fn poll_timeout(&self) -> Option<Instant> {
        self.processing.front().map(|d| d.ready_at)
    }

    /// The receiver has no timers of its own; provided for driver symmetry.
    pub fn on_timeout(&mut self, _now: Instant) {}

    /// Drain the next outbound supervisory frame.
    pub fn poll_transmit(&mut self, _now: Instant) -> Option<HdlcFrame> {
        self.pending_tx.pop_front()
    }

    /// Pop the next completed in-sequence delivery at `now`.
    pub fn poll_deliver(&mut self, now: Instant) -> Option<SrDelivery> {
        if self.processing.front().is_some_and(|d| d.ready_at <= now) {
            self.processing.pop_front()
        } else {
            None
        }
    }

    /// Inject a frame from the channel.
    pub fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        let HdlcFrame::Info {
            ns,
            packet_id,
            poll,
            payload,
        } = frame
        else {
            return; // supervisory frames are sender-bound
        };
        self.trace.emit(now, || TraceEvent::IFrameRx {
            seq: ns,
            clean: status == RxStatus::Ok,
            len: payload.len() as u64,
        });
        // Gap inference on first transmissions: numbers above the highest
        // seen that get skipped were transmitted (in order) and lost.
        if self.highest_seen.is_none_or(|h| ns > h) {
            let from = self.highest_seen.map_or(0, |h| h + 1);
            for missing in from..ns {
                if missing >= self.expected
                    && !self.buffer.contains_key(&missing)
                    && self.srej_sent.insert(missing)
                {
                    self.stats.gaps_inferred += 1;
                    self.stats.srejs_sent += 1;
                    // HDLC has no checkpoints; cp_index 0 marks "none".
                    self.trace.emit(now, || TraceEvent::Nak {
                        seq: missing,
                        cp_index: 0,
                    });
                    self.pending_tx.push_back(HdlcFrame::Srej { nr: missing });
                }
            }
            self.highest_seen = Some(ns);
        }

        match status {
            RxStatus::PayloadCorrupted => {
                self.stats.corrupted += 1;
                // Every corrupted arrival is a *witnessed* error: SREJ it
                // again even if an earlier copy was already rejected (a
                // retransmission corrupted anew needs a new retransmission
                // — unlike gap-inferred losses, where repetition would be
                // a blind retry and the sender timeout owns recovery).
                if ns >= self.expected && !self.buffer.contains_key(&ns) {
                    self.srej_sent.insert(ns);
                    self.stats.srejs_sent += 1;
                    self.trace.emit(now, || TraceEvent::Nak {
                        seq: ns,
                        cp_index: 0,
                    });
                    self.pending_tx.push_back(HdlcFrame::Srej { nr: ns });
                }
            }
            RxStatus::Ok => {
                if ns < self.expected || self.buffer.contains_key(&ns) {
                    self.stats.duplicates += 1;
                } else if ns >= self.expected + self.cfg.window as u64 {
                    // Outside the receive window: protocol violation on a
                    // conforming sender; drop.
                    self.stats.duplicates += 1;
                } else {
                    self.stats.accepted += 1;
                    self.srej_sent.remove(&ns);
                    self.buffer.insert(ns, (packet_id, payload));
                    self.advance(now);
                    // Peak measures frames *held* for resequencing after
                    // any in-order prefix has drained.
                    self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffer.len());
                }
            }
        }

        // A Poll demands an immediate RR — the paper's per-period response.
        if poll {
            self.stats.rrs_sent += 1;
            self.trace.emit(now, || TraceEvent::Control {
                kind: "rr",
                seq: self.expected,
            });
            self.pending_tx.push_back(HdlcFrame::Rr {
                nr: self.expected,
                fin: true,
            });
        }
    }

    /// Deliver the contiguous prefix (in-sequence constraint). When a
    /// recovery completes — the resequencing buffer drains after having
    /// held out-of-order frames — the receiver volunteers an RR: the
    /// paper's "the receiver must send an RR command after all I-frames
    /// have successfully arrived" (the window's final positive
    /// acknowledgement / new credit).
    fn advance(&mut self, now: Instant) {
        let was_buffered = !self.buffer.is_empty();
        let mut delivered_any = false;
        while let Some((packet_id, payload)) = self.buffer.remove(&self.expected) {
            let start = self.server_free_at.max(now);
            let ready_at = start + self.cfg.t_proc;
            self.server_free_at = ready_at;
            self.processing.push_back(SrDelivery {
                packet_id,
                ns: self.expected,
                payload,
                ready_at,
            });
            self.stats.delivered += 1;
            self.expected += 1;
            delivered_any = true;
        }
        if was_buffered && delivered_any && self.buffer.is_empty() {
            self.stats.rrs_sent += 1;
            self.trace.emit(now, || TraceEvent::Control {
                kind: "rr",
                seq: self.expected,
            });
            self.pending_tx.push_back(HdlcFrame::Rr {
                nr: self.expected,
                fin: false,
            });
        }
    }
}

impl proto_core::Machine for SrReceiver {
    type Frame = HdlcFrame;
    type Event = ();

    fn start(&mut self, now: Instant) {
        SrReceiver::start(self, now);
    }

    fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        SrReceiver::handle_frame(self, now, frame, status);
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<HdlcFrame> {
        SrReceiver::poll_transmit(self, now)
    }

    fn poll_timeout(&self) -> Option<Instant> {
        SrReceiver::poll_timeout(self)
    }

    fn on_timeout(&mut self, now: Instant) {
        SrReceiver::on_timeout(self, now);
    }

    fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }
}

impl proto_core::ReceiverMachine for SrReceiver {
    fn poll_deliver(&mut self, now: Instant) -> Option<proto_core::Delivered> {
        SrReceiver::poll_deliver(self, now).map(|d| proto_core::Delivered {
            id: d.packet_id,
            payload: d.payload,
        })
    }

    fn occupancy(&self) -> usize {
        self.buffered()
    }

    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        let s = self.stats();
        vec![
            ("hdlc.sr_receiver.srejs_sent", s.srejs_sent as f64),
            ("hdlc.sr_receiver.peak_reseq_buffer", s.peak_buffered as f64),
            ("hdlc.sr_receiver.duplicates_dropped", s.duplicates as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HdlcConfig {
        let mut c = HdlcConfig::paper_default();
        c.window = 4;
        c.seq_bits = 3;
        c
    }

    fn started() -> (SrReceiver, Instant) {
        let mut r = SrReceiver::new(cfg());
        r.start(Instant::ZERO);
        (r, Instant::ZERO)
    }

    fn info(ns: u64, poll: bool) -> HdlcFrame {
        HdlcFrame::Info {
            ns,
            packet_id: 100 + ns,
            poll,
            payload: Bytes::from_static(b"d"),
        }
    }

    fn tx_all(r: &mut SrReceiver, now: Instant) -> Vec<HdlcFrame> {
        std::iter::from_fn(|| r.poll_transmit(now)).collect()
    }

    #[test]
    fn in_order_delivery() {
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(1, false), RxStatus::Ok);
        let t = now + cfg().t_proc * 2;
        assert_eq!(r.poll_deliver(t).unwrap().ns, 0);
        assert_eq!(r.poll_deliver(t).unwrap().ns, 1);
        assert_eq!(r.stats().delivered, 2);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn out_of_order_held_until_gap_fills() {
        // The defining SR-HDLC cost: frame 1 lost ⇒ 2 and 3 sit in the
        // resequencing buffer; nothing is delivered until 1 arrives.
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(2, false), RxStatus::Ok);
        r.handle_frame(now, info(3, false), RxStatus::Ok);
        let t = now + cfg().t_proc * 10;
        assert_eq!(r.poll_deliver(t).unwrap().ns, 0);
        assert!(r.poll_deliver(t).is_none(), "in-sequence constraint holds");
        assert_eq!(r.buffered(), 2);
        r.handle_frame(t, info(1, false), RxStatus::Ok);
        let t2 = t + cfg().t_proc * 10;
        let delivered: Vec<u64> = std::iter::from_fn(|| r.poll_deliver(t2))
            .map(|d| d.ns)
            .collect();
        assert_eq!(delivered, vec![1, 2, 3]);
        assert_eq!(r.stats().peak_buffered, 2);
    }

    #[test]
    fn gap_triggers_one_srej_per_missing_seq() {
        let (mut r, now) = started();
        r.handle_frame(now, info(3, false), RxStatus::Ok);
        let tx = tx_all(&mut r, now);
        assert_eq!(
            tx,
            vec![
                HdlcFrame::Srej { nr: 0 },
                HdlcFrame::Srej { nr: 1 },
                HdlcFrame::Srej { nr: 2 }
            ]
        );
        // A later frame does not repeat those SREJs.
        r.handle_frame(now, info(4, false), RxStatus::Ok);
        assert!(tx_all(&mut r, now).is_empty());
        assert_eq!(r.stats().srejs_sent, 3);
    }

    #[test]
    fn corrupted_frame_re_srejd_on_repeat() {
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::PayloadCorrupted);
        assert_eq!(tx_all(&mut r, now), vec![HdlcFrame::Srej { nr: 0 }]);
        // A retransmission corrupted anew is a witnessed error and earns
        // a fresh SREJ (only gap-inferred losses are once-only).
        r.handle_frame(now, info(0, false), RxStatus::PayloadCorrupted);
        assert_eq!(tx_all(&mut r, now), vec![HdlcFrame::Srej { nr: 0 }]);
        assert_eq!(r.stats().corrupted, 2);
        assert_eq!(r.stats().srejs_sent, 2);
    }

    #[test]
    fn recovery_completion_triggers_credit_rr() {
        // Frames 0, 2, 3 arrive; 1 fills the gap later: when the buffer
        // drains the receiver volunteers RR(4) — the paper's "RR after
        // all I-frames successfully arrived".
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(2, false), RxStatus::Ok);
        r.handle_frame(now, info(3, false), RxStatus::Ok);
        tx_all(&mut r, now); // drain the SREJ for 1
        r.handle_frame(now, info(1, false), RxStatus::Ok);
        let tx = tx_all(&mut r, now);
        assert!(
            tx.contains(&HdlcFrame::Rr { nr: 4, fin: false }),
            "completion RR missing: {tx:?}"
        );
    }

    #[test]
    fn poll_answered_with_rr_even_on_corrupted_payload() {
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(1, true), RxStatus::PayloadCorrupted);
        let tx = tx_all(&mut r, now);
        // SREJ for 1, and the RR(expected=1) answering the poll.
        assert!(tx.contains(&HdlcFrame::Srej { nr: 1 }));
        assert!(tx.contains(&HdlcFrame::Rr { nr: 1, fin: true }));
    }

    #[test]
    fn rr_reports_contiguous_prefix_only() {
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(2, true), RxStatus::Ok);
        let tx = tx_all(&mut r, now);
        assert!(tx.contains(&HdlcFrame::Srej { nr: 1 }));
        assert!(
            tx.contains(&HdlcFrame::Rr { nr: 1, fin: true }),
            "tx: {tx:?}"
        );
    }

    #[test]
    fn duplicates_dropped() {
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        assert_eq!(r.stats().duplicates, 1);
        // Buffered duplicate too.
        r.handle_frame(now, info(2, false), RxStatus::Ok);
        r.handle_frame(now, info(2, false), RxStatus::Ok);
        assert_eq!(r.stats().duplicates, 2);
    }

    #[test]
    fn srej_state_cleared_on_arrival() {
        let (mut r, now) = started();
        r.handle_frame(now, info(1, false), RxStatus::Ok); // SREJ 0
        tx_all(&mut r, now);
        r.handle_frame(now, info(0, false), RxStatus::Ok); // gap fills
                                                           // If 0 somehow goes missing again (not possible on FIFO, but the
                                                           // state must not leak): a fresh corrupted copy would re-SREJ.
        assert_eq!(r.stats().srejs_sent, 1);
        assert_eq!(r.expected(), 2);
    }

    #[test]
    fn single_server_processing_spacing() {
        let (mut r, now) = started();
        r.handle_frame(now, info(0, false), RxStatus::Ok);
        r.handle_frame(now, info(1, false), RxStatus::Ok);
        let d0 = r.poll_deliver(now + cfg().t_proc).unwrap();
        assert_eq!(d0.ready_at, now + cfg().t_proc);
        assert!(r.poll_deliver(now + cfg().t_proc).is_none());
        assert_eq!(r.poll_timeout(), Some(now + cfg().t_proc * 2));
    }
}

// ------------------------------------------------------------ sans-IO host contract
