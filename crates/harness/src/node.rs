//! Endpoint adapters: one driving contract for all three protocols.
//!
//! The netsim engine is generic over a [`TxEndpoint`] / [`RxEndpoint`]
//! pair so LAMS-DLC, SR-HDLC and GBN-HDLC run over byte-for-byte
//! identical channel realisations (common random numbers — the
//! comparison the paper's §4 makes analytically). The traits live in
//! the `netsim` crate; this module provides the protocol adapters.

use bytes::Bytes;
use sim_core::Instant;
use telemetry::Registry;

pub use netsim::endpoint::{FrameMeta, RxEndpoint, TxEndpoint};

// ------------------------------------------------------------- LAMS-DLC

/// LAMS-DLC sender adapter.
pub struct LamsTx {
    /// The wrapped protocol sender.
    pub inner: lams_dlc::Sender,
    holding: Vec<f64>,
}

impl LamsTx {
    /// Wrap a configured sender.
    pub fn new(inner: lams_dlc::Sender) -> Self {
        LamsTx {
            inner,
            holding: Vec::new(),
        }
    }
}

impl TxEndpoint for LamsTx {
    type Frame = lams_dlc::Frame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        self.inner.push(lams_dlc::PacketId(id), payload).is_ok()
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        let status = if ok {
            lams_dlc::RxStatus::Ok
        } else {
            lams_dlc::RxStatus::PayloadCorrupted
        };
        self.inner.handle_frame(now, frame, status);
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn is_failed(&self) -> bool {
        self.inner.state() == lams_dlc::SenderState::Failed
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: lams_dlc::wire::encoded_len(frame),
            is_info: frame.is_info(),
        }
    }

    fn drain_holding(&mut self, out: &mut Vec<f64>) {
        while let Some(e) = self.inner.poll_event() {
            if let lams_dlc::SenderEvent::Released { held_for_ns, .. } = e {
                self.holding.push(held_for_ns as f64 / 1e9);
            }
        }
        out.append(&mut self.holding);
    }

    fn rate(&self) -> f64 {
        self.inner.rate()
    }

    fn transmissions(&self) -> u64 {
        let s = self.inner.stats();
        s.new_transmissions + s.retransmissions
    }

    fn retransmissions(&self) -> u64 {
        self.inner.stats().retransmissions
    }

    fn extra_stats(&self) -> Registry {
        let s = self.inner.stats();
        Registry::from_iter([
            ("lams.sender.request_naks", s.request_naks as f64),
            ("lams.sender.unsafe_gaps", s.unsafe_gaps as f64),
            ("lams.sender.resolve_expiries", s.resolve_expiries as f64),
            (
                "lams.sender.suspect_retransmissions",
                s.suspect_retransmissions as f64,
            ),
            ("lams.sender.checkpoints_received", s.checkpoints as f64),
        ])
    }
}

/// LAMS-DLC receiver adapter.
pub struct LamsRx {
    /// The wrapped protocol receiver.
    pub inner: lams_dlc::Receiver,
}

impl RxEndpoint for LamsRx {
    type Frame = lams_dlc::Frame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        let status = if ok {
            lams_dlc::RxStatus::Ok
        } else {
            lams_dlc::RxStatus::PayloadCorrupted
        };
        self.inner.handle_frame(now, frame, status);
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn poll_deliver(&mut self, now: Instant) -> Option<(u64, usize)> {
        self.inner
            .poll_deliver(now)
            .map(|d| (d.packet_id.0, d.payload.len()))
    }

    fn occupancy(&self) -> usize {
        self.inner.processing_occupancy()
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: lams_dlc::wire::encoded_len(frame),
            is_info: frame.is_info(),
        }
    }

    fn extra_stats(&self) -> Registry {
        let s = self.inner.stats();
        Registry::from_iter([
            (
                "lams.receiver.overflow_discards",
                s.overflow_discards as f64,
            ),
            ("lams.receiver.enforced_naks_sent", s.enforced_sent as f64),
            ("lams.receiver.checkpoints_sent", s.checkpoints_sent as f64),
            ("lams.receiver.gaps_inferred", s.gaps_inferred as f64),
            ("lams.receiver.corrupted_arrivals", s.corrupted as f64),
        ])
    }
}

// -------------------------------------------------------------- SR-HDLC

/// SR-HDLC sender adapter.
pub struct SrTx {
    /// The wrapped protocol sender.
    pub inner: hdlc::SrSender,
    holding: Vec<f64>,
}

impl SrTx {
    /// Wrap a configured sender.
    pub fn new(inner: hdlc::SrSender) -> Self {
        SrTx {
            inner,
            holding: Vec::new(),
        }
    }
}

impl TxEndpoint for SrTx {
    type Frame = hdlc::HdlcFrame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        self.inner.push(id, payload);
        true
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        let status = if ok {
            hdlc::RxStatus::Ok
        } else {
            hdlc::RxStatus::PayloadCorrupted
        };
        self.inner.handle_frame(now, frame, status);
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: hdlc::wire::encoded_len(frame),
            is_info: frame.is_info(),
        }
    }

    fn drain_holding(&mut self, out: &mut Vec<f64>) {
        while let Some(hdlc::SrSenderEvent::Released { held_for_ns, .. }) = self.inner.poll_event()
        {
            self.holding.push(held_for_ns as f64 / 1e9);
        }
        out.append(&mut self.holding);
    }

    fn transmissions(&self) -> u64 {
        let s = self.inner.stats();
        s.new_transmissions + s.retransmissions
    }

    fn retransmissions(&self) -> u64 {
        self.inner.stats().retransmissions
    }

    fn extra_stats(&self) -> Registry {
        let s = self.inner.stats();
        Registry::from_iter([
            ("hdlc.sr_sender.timeouts", s.timeouts as f64),
            ("hdlc.sr_sender.srejs_processed", s.srejs as f64),
            ("hdlc.sr_sender.rrs_processed", s.rrs as f64),
        ])
    }
}

/// SR-HDLC receiver adapter.
pub struct SrRx {
    /// The wrapped protocol receiver.
    pub inner: hdlc::SrReceiver,
}

impl RxEndpoint for SrRx {
    type Frame = hdlc::HdlcFrame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        let status = if ok {
            hdlc::RxStatus::Ok
        } else {
            hdlc::RxStatus::PayloadCorrupted
        };
        self.inner.handle_frame(now, frame, status);
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn poll_deliver(&mut self, now: Instant) -> Option<(u64, usize)> {
        self.inner
            .poll_deliver(now)
            .map(|d| (d.packet_id, d.payload.len()))
    }

    fn occupancy(&self) -> usize {
        self.inner.buffered()
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: hdlc::wire::encoded_len(frame),
            is_info: frame.is_info(),
        }
    }

    fn extra_stats(&self) -> Registry {
        let s = self.inner.stats();
        Registry::from_iter([
            ("hdlc.sr_receiver.srejs_sent", s.srejs_sent as f64),
            ("hdlc.sr_receiver.peak_reseq_buffer", s.peak_buffered as f64),
            ("hdlc.sr_receiver.duplicates_dropped", s.duplicates as f64),
        ])
    }
}

// ------------------------------------------------------------- GBN-HDLC

/// GBN-HDLC sender adapter.
pub struct GbnTx {
    /// The wrapped protocol sender.
    pub inner: hdlc::GbnSender,
}

impl TxEndpoint for GbnTx {
    type Frame = hdlc::HdlcFrame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        self.inner.push(id, payload);
        true
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        let status = if ok {
            hdlc::RxStatus::Ok
        } else {
            hdlc::RxStatus::PayloadCorrupted
        };
        self.inner.handle_frame(now, frame, status);
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: hdlc::wire::encoded_len(frame),
            is_info: frame.is_info(),
        }
    }

    fn drain_holding(&mut self, _out: &mut Vec<f64>) {}

    fn transmissions(&self) -> u64 {
        let s = self.inner.stats();
        s.new_transmissions + s.retransmissions
    }

    fn retransmissions(&self) -> u64 {
        self.inner.stats().retransmissions
    }

    fn extra_stats(&self) -> Registry {
        let s = self.inner.stats();
        Registry::from_iter([
            ("hdlc.gbn_sender.timeouts", s.timeouts as f64),
            ("hdlc.gbn_sender.rejs_processed", s.rejs as f64),
        ])
    }
}

/// GBN-HDLC receiver adapter.
pub struct GbnRx {
    /// The wrapped protocol receiver.
    pub inner: hdlc::GbnReceiver,
}

impl RxEndpoint for GbnRx {
    type Frame = hdlc::HdlcFrame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        let status = if ok {
            hdlc::RxStatus::Ok
        } else {
            hdlc::RxStatus::PayloadCorrupted
        };
        self.inner.handle_frame(now, frame, status);
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn poll_deliver(&mut self, now: Instant) -> Option<(u64, usize)> {
        self.inner
            .poll_deliver(now)
            .map(|d| (d.packet_id, d.payload.len()))
    }

    fn occupancy(&self) -> usize {
        0 // GBN holds nothing out of order
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: hdlc::wire::encoded_len(frame),
            is_info: frame.is_info(),
        }
    }

    fn extra_stats(&self) -> Registry {
        let s = self.inner.stats();
        Registry::from_iter([
            ("hdlc.gbn_receiver.discarded", s.discarded as f64),
            ("hdlc.gbn_receiver.rejs_sent", s.rejs_sent as f64),
        ])
    }
}
