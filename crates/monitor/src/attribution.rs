//! Causal latency attribution: per-SDU critical-path reconstruction.
//!
//! A [`LinkAttribution`] replays one link's trace stream and splits every
//! delivered SDU's latency (first transmission → first clean arrival of
//! the chain) into named phases that partition the interval *exactly*,
//! in integer nanoseconds:
//!
//! | phase            | meaning                                             |
//! |------------------|-----------------------------------------------------|
//! | `first_flight`   | propagation + serialization of the first copy       |
//! | `nak_wait`       | corruption → first checkpoint carrying the NAK      |
//! | `nak_loss`       | extra intervals because carrying checkpoints were   |
//! |                  | lost (NAK cumulation repeats), and Suspect waits    |
//! | `control_flight` | the triggering checkpoint's flight back to the tx   |
//! | `stop_go`        | sender throttled by Stop-Go while the retx queued   |
//! | `retx_wait`      | sender-side queueing/pacing before the retx left    |
//! | `retx_flight`    | propagation of the retransmitted copy               |
//! | `enforced`       | time burned inside enforced-recovery restarts       |
//!
//! Resequencer hold time is attributed *after* delivery and therefore
//! lives outside the per-SDU sum; it is aggregated per experiment from
//! the collector's `reseq_hold` records.
//!
//! Segmentation uses a monotone cursor per chain: each milestone `m`
//! charges `m − cursor` to its phase only when `m` is ahead of the
//! cursor, so out-of-order milestones contribute zero and the phase sums
//! always partition `[first_tx, delivered]`. An internal audit checks
//! `Σ phases == measured latency` for every delivered SDU and raises an
//! [`Invariant::AttributionSum`] finding if the bookkeeping ever drifts.
//!
//! The same pass cross-checks observed NAK resolution cycles (receiver
//! records the error → sender decides the retransmission) against the
//! analytic resolving period `R + W_cp/2 + C_depth·W_cp` computed from
//! the link's announced `sender_config` with the formula in
//! `analysis::periods::resolving_period_raw`. Stop-Go throttle spans and
//! enforced-recovery restarts pause the protocol clock, so their overlap
//! with the cycle is excluded before comparing. Excesses surface as
//! [`Invariant::ResolutionBound`] findings.

use crate::finding::{AuditFinding, Findings, Invariant};
use sim_core::Instant;
use std::collections::{BTreeMap, HashMap};
use telemetry::Json;

/// The latency phases, in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// First copy's flight time (send → arrival, clean or corrupted).
    FirstFlight,
    /// Corruption → emission of the first checkpoint carrying the NAK.
    NakWait,
    /// Extra full checkpoint intervals because carrying checkpoints were
    /// lost in transit (the NAK rode the cumulation window), plus
    /// Suspect defensive-retransmit wait.
    NakLoss,
    /// The triggering checkpoint's flight back to the sender.
    ControlFlight,
    /// Stop-Go throttle time while the retransmission was queued.
    StopGo,
    /// Sender-side queueing/pacing before the retransmission left.
    RetxWait,
    /// Retransmitted copy's flight time.
    RetxFlight,
    /// Enforced-recovery (resolve/failure timer) restart time.
    Enforced,
}

/// Stable machine-readable phase names, indexable by `Phase as usize`.
pub const PHASE_NAMES: [&str; 8] = [
    "first_flight",
    "nak_wait",
    "nak_loss",
    "control_flight",
    "stop_go",
    "retx_wait",
    "retx_flight",
    "enforced",
];

/// Aggregate of one phase (or of resequencer holds) over many SDUs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// SDUs that spent a non-zero time in this phase.
    pub count: u64,
    /// Total nanoseconds charged to this phase.
    pub total_ns: u64,
    /// Largest single-SDU charge, nanoseconds.
    pub max_ns: u64,
}

impl PhaseAgg {
    /// Record one SDU's charge (zero charges are not counted).
    pub fn add(&mut self, ns: u64) {
        if ns == 0 {
            return;
        }
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another aggregate into this one.
    pub fn absorb(&mut self, other: &PhaseAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// `{count, total_ns, max_ns}` — all integers, so an offline replay
    /// can reproduce the rendered block byte-for-byte.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.into()),
            ("total_ns", self.total_ns.into()),
            ("max_ns", self.max_ns.into()),
        ])
    }
}

/// Per-experiment attribution summary: phase breakdown, partial-chain
/// counts, and the resolution-vs-analytic-bound cross-check.
#[derive(Clone, Debug, Default)]
pub struct AttributionAgg {
    /// Delivered SDUs attributed.
    pub sdus: u64,
    /// Delivered on the first copy (latency == `first_flight`).
    pub clean: u64,
    /// Needed at least one retransmission.
    pub errored: u64,
    /// Chains cut short by run end or anomalous release: counted, never
    /// folded into the phase sums.
    pub incomplete: u64,
    /// Delivered SDUs whose phase sum failed to match their latency.
    pub audit_failures: u64,
    /// Sum of delivered-SDU latencies; equals the sum of all phase
    /// `total_ns` by construction (audited per SDU).
    pub latency_total_ns: u64,
    /// Worst NAK cumulation-repeat count seen before a retransmission.
    pub max_nak_repeats: u64,
    /// Per-phase aggregates, indexed like [`PHASE_NAMES`].
    pub phases: [PhaseAgg; 8],
    /// Post-delivery resequencer hold (outside the per-SDU sum).
    pub reseq: PhaseAgg,
    /// NAK resolution cycles measured (error record → retx decision).
    pub res_cycles: u64,
    /// Worst adjusted resolution cycle, nanoseconds.
    pub res_max_ns: u64,
    /// Analytic resolving-period bound, nanoseconds (0 until a
    /// `sender_config` was seen).
    pub res_bound_ns: u64,
    /// Cycles that exceeded the analytic bound.
    pub res_violations: u64,
}

impl AttributionAgg {
    /// Fold another aggregate into this one (sums; maxima for maxima).
    pub fn absorb(&mut self, other: &AttributionAgg) {
        self.sdus += other.sdus;
        self.clean += other.clean;
        self.errored += other.errored;
        self.incomplete += other.incomplete;
        self.audit_failures += other.audit_failures;
        self.latency_total_ns += other.latency_total_ns;
        self.max_nak_repeats = self.max_nak_repeats.max(other.max_nak_repeats);
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.absorb(theirs);
        }
        self.reseq.absorb(&other.reseq);
        self.res_cycles += other.res_cycles;
        self.res_max_ns = self.res_max_ns.max(other.res_max_ns);
        self.res_bound_ns = self.res_bound_ns.max(other.res_bound_ns);
        self.res_violations += other.res_violations;
    }

    /// The report's `attribution` block. Every value is an integer so
    /// the offline `trace-tools attribution` replay reproduces it
    /// byte-for-byte.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sdus", self.sdus.into()),
            ("clean", self.clean.into()),
            ("errored", self.errored.into()),
            ("incomplete", self.incomplete.into()),
            ("audit_failures", self.audit_failures.into()),
            ("latency_total_ns", self.latency_total_ns.into()),
            ("max_nak_repeats", self.max_nak_repeats.into()),
            (
                "phases",
                Json::obj(
                    PHASE_NAMES
                        .iter()
                        .zip(self.phases.iter())
                        .map(|(name, agg)| (*name, agg.to_json())),
                ),
            ),
            ("reseq_hold", self.reseq.to_json()),
            (
                "resolution",
                Json::obj([
                    ("cycles", self.res_cycles.into()),
                    ("max_ns", self.res_max_ns.into()),
                    ("bound_ns", self.res_bound_ns.into()),
                    ("violations", self.res_violations.into()),
                ]),
            ),
        ])
    }
}

/// One in-flight chain's attribution state, keyed by its current wire
/// sequence number (renumbering moves it).
#[derive(Clone, Debug)]
struct Chain {
    /// First transmission instant, nanoseconds.
    first_tx: u64,
    /// Monotone segmentation cursor; phase sums always equal
    /// `cursor − first_tx`.
    cursor: u64,
    phases: [u64; 8],
    /// Copies sent so far (1 = original only).
    copies: u32,
    /// First checkpoint index that carried the current NAK, if any.
    err_cp_first: Option<u64>,
    /// When the receiver recorded the current error (opens a resolution
    /// cycle closed by the sender's retransmission decision).
    pending_err: Option<u64>,
    /// Worst cumulation-repeat count this chain saw.
    max_repeats: u64,
    /// Delivered clean; later events no longer charge phases.
    done: bool,
}

impl Chain {
    fn new(t: u64) -> Self {
        Chain {
            first_tx: t,
            cursor: t,
            phases: [0; 8],
            copies: 1,
            err_cp_first: None,
            pending_err: None,
            max_repeats: 0,
            done: false,
        }
    }

    /// Charge `[cursor, to]` to `phase` when `to` is ahead of the
    /// cursor; out-of-order milestones charge nothing.
    fn seg(&mut self, to: u64, phase: Phase) {
        if to > self.cursor {
            self.phases[phase as usize] += to - self.cursor;
            self.cursor = to;
        }
    }

    /// The flight phase a copy's arrival closes into.
    fn flight(&self) -> Phase {
        if self.copies == 1 {
            Phase::FirstFlight
        } else {
            Phase::RetxFlight
        }
    }
}

/// Total overlap of `[from, to]` with the closed spans plus a
/// still-open span, nanoseconds.
fn overlap(spans: &[(u64, u64)], open: Option<u64>, from: u64, to: u64) -> u64 {
    let mut total = 0;
    for &(a, b) in spans {
        total += b.min(to).saturating_sub(a.max(from));
    }
    if let Some(a) = open {
        total += to.saturating_sub(a.max(from));
    }
    total
}

/// Reconstructs per-SDU latency attribution for one link from its trace
/// stream. Mirrors [`crate::LinkAuditor`]'s gating: only links that
/// announced a `sender_config` (LAMS-DLC senders) produce output.
pub struct LinkAttribution {
    experiment: &'static str,
    /// Sender node label (for findings); set by `sender_config`.
    cfg_node: &'static str,
    /// Analytic resolving-period bound from the announced config;
    /// `None` until armed.
    bound_ns: Option<u64>,
    chains: HashMap<u64, Chain>,
    /// Checkpoint emission instants by index (receiver side).
    cp_emit: BTreeMap<u64, u64>,
    /// Checkpoint acceptance instants by index (sender side).
    cp_rx: BTreeMap<u64, u64>,
    stop_open: Option<u64>,
    stop_spans: Vec<(u64, u64)>,
    enforced_open: Option<u64>,
    enforced_spans: Vec<(u64, u64)>,
    /// The running aggregate, drained at run end.
    pub agg: AttributionAgg,
}

impl LinkAttribution {
    /// Fresh attribution state for one link inside `experiment`.
    pub fn new(experiment: &'static str) -> Self {
        LinkAttribution {
            experiment,
            cfg_node: "",
            bound_ns: None,
            chains: HashMap::new(),
            cp_emit: BTreeMap::new(),
            cp_rx: BTreeMap::new(),
            stop_open: None,
            stop_spans: Vec::new(),
            enforced_open: None,
            enforced_spans: Vec::new(),
            agg: AttributionAgg::default(),
        }
    }

    /// Whether this link announced a LAMS-DLC sender config.
    pub fn armed(&self) -> bool {
        self.bound_ns.is_some()
    }

    /// Sender announced its timing: arm attribution and fix the
    /// analytic resolution bound.
    pub fn on_sender_config(
        &mut self,
        node: &'static str,
        w_cp_ns: u64,
        rtt_ns: u64,
        c_depth: u64,
    ) {
        self.cfg_node = node;
        let bound = analysis::periods::resolving_period_raw(
            rtt_ns as f64 / 1e9,
            w_cp_ns as f64 / 1e9,
            c_depth as u32,
        );
        self.bound_ns = Some((bound * 1e9).round() as u64);
        self.agg.res_bound_ns = self.bound_ns.unwrap_or(0);
    }

    /// A copy left the sender. Fresh sends open a chain; retransmissions
    /// were already charged by the preceding `retx_cause` record.
    pub fn on_tx(&mut self, t: Instant, seq: u64, retx: bool) {
        if !retx {
            self.chains.insert(seq, Chain::new(t.as_nanos()));
        }
    }

    /// Renumbering moves the chain to its fresh wire sequence number.
    pub fn on_renumbered(&mut self, old_seq: u64, new_seq: u64) {
        if let Some(c) = self.chains.remove(&old_seq) {
            self.chains.insert(new_seq, c);
        }
    }

    /// The sender decided to retransmit `seq` (already renumbered) and
    /// told us why: decompose the elapsed time into phases and close the
    /// open resolution cycle against the analytic bound.
    pub fn on_retx_cause(
        &mut self,
        t: Instant,
        seq: u64,
        cause: &'static str,
        cp_index: u64,
        out: &mut Findings,
    ) {
        let LinkAttribution {
            experiment,
            cfg_node,
            bound_ns,
            chains,
            cp_emit,
            cp_rx,
            stop_open,
            stop_spans,
            enforced_open,
            enforced_spans,
            agg,
        } = self;
        let Some(c) = chains.get_mut(&seq) else {
            return;
        };
        if c.done {
            return;
        }
        let tn = t.as_nanos();
        match cause {
            "nak" => {
                let err_cp = c.err_cp_first.take().unwrap_or(cp_index);
                if let Some(&e) = cp_emit.get(&err_cp) {
                    c.seg(e, Phase::NakWait);
                }
                let repeats = cp_index.saturating_sub(err_cp);
                c.max_repeats = c.max_repeats.max(repeats);
                if repeats > 0 {
                    if let Some(&e) = cp_emit.get(&cp_index) {
                        c.seg(e, Phase::NakLoss);
                    }
                }
                if let Some(&r) = cp_rx.get(&cp_index) {
                    c.seg(r, Phase::ControlFlight);
                }
                // Tail up to the decision: Stop-Go throttle overlap
                // first, the remainder is sender-side queueing/pacing.
                if tn > c.cursor {
                    let tail = tn - c.cursor;
                    let stop = overlap(stop_spans, *stop_open, c.cursor, tn).min(tail);
                    c.phases[Phase::StopGo as usize] += stop;
                    c.phases[Phase::RetxWait as usize] += tail - stop;
                    c.cursor = tn;
                }
                // Resolution cross-check: error record → retx decision,
                // minus spans where the protocol clock was paused.
                if let Some(err_t) = c.pending_err.take() {
                    let cycle = tn.saturating_sub(err_t);
                    let allow = overlap(stop_spans, *stop_open, err_t, tn)
                        + overlap(enforced_spans, *enforced_open, err_t, tn);
                    let adjusted = cycle.saturating_sub(allow);
                    agg.res_cycles += 1;
                    agg.res_max_ns = agg.res_max_ns.max(adjusted);
                    if let Some(bound) = *bound_ns {
                        if adjusted > bound {
                            agg.res_violations += 1;
                            out.push(AuditFinding {
                                t,
                                node: cfg_node,
                                experiment,
                                invariant: Invariant::ResolutionBound,
                                window: (Instant::from_nanos(err_t), t),
                                detail: format!(
                                    "NAK resolution took {:.3} ms (adjusted; raw {:.3} ms) \
                                     > analytic resolving period {:.3} ms for seq {seq}",
                                    adjusted as f64 / 1e6,
                                    cycle as f64 / 1e6,
                                    bound as f64 / 1e6,
                                ),
                            });
                        }
                    }
                }
            }
            "resolve" => {
                // Enforced recovery / resolving timer forced the copy
                // out: everything since the last milestone is enforced
                // restart time.
                c.seg(tn, Phase::Enforced);
                c.err_cp_first = None;
                c.pending_err = None;
            }
            _ => {
                // "suspect": defensive retransmit after a checkpoint
                // index gap — time spent waiting out the lost reports.
                c.seg(tn, Phase::NakLoss);
                c.err_cp_first = None;
                c.pending_err = None;
            }
        }
        c.copies += 1;
    }

    /// The receiver recorded an error for `seq`: close the flight
    /// segment and open the NAK wait (and the resolution cycle).
    pub fn on_nak(&mut self, t: Instant, seq: u64, cp_index: u64) {
        let Some(c) = self.chains.get_mut(&seq) else {
            return;
        };
        if c.done {
            return;
        }
        let tn = t.as_nanos();
        let flight = c.flight();
        c.seg(tn, flight);
        if c.err_cp_first.is_none() {
            c.err_cp_first = Some(cp_index);
        }
        c.pending_err = Some(tn);
    }

    /// A copy arrived. Clean first arrivals close the chain: charge the
    /// final flight segment, audit the phase sum against the measured
    /// latency, and fold into the aggregate.
    pub fn on_rx(&mut self, t: Instant, seq: u64, clean: bool, out: &mut Findings) {
        if !clean {
            return;
        }
        let Some(c) = self.chains.get_mut(&seq) else {
            return;
        };
        if c.done {
            return;
        }
        let tn = t.as_nanos();
        let flight = c.flight();
        c.seg(tn, flight);
        c.done = true;
        let latency = tn.saturating_sub(c.first_tx);
        let sum: u64 = c.phases.iter().sum();
        if sum != latency {
            self.agg.audit_failures += 1;
            out.push(AuditFinding {
                t,
                node: self.cfg_node,
                experiment: self.experiment,
                invariant: Invariant::AttributionSum,
                window: (Instant::from_nanos(c.first_tx), t),
                detail: format!(
                    "phase sum {sum} ns != measured latency {latency} ns for seq {seq}"
                ),
            });
        }
        self.agg.sdus += 1;
        if c.copies > 1 {
            self.agg.errored += 1;
        } else {
            self.agg.clean += 1;
        }
        self.agg.latency_total_ns += latency;
        self.agg.max_nak_repeats = self.agg.max_nak_repeats.max(c.max_repeats);
        for (agg, &ns) in self.agg.phases.iter_mut().zip(c.phases.iter()) {
            agg.add(ns);
        }
    }

    /// Receiver emitted checkpoint `index`.
    pub fn on_cp_emit(&mut self, t: Instant, index: u64) {
        self.cp_emit.insert(index, t.as_nanos());
    }

    /// Sender accepted checkpoint `index`.
    pub fn on_cp_rx(&mut self, t: Instant, index: u64) {
        self.cp_rx.insert(index, t.as_nanos());
    }

    /// Stop-Go flow-control transition on the sender.
    pub fn on_stop_go(&mut self, t: Instant, stop: bool) {
        let tn = t.as_nanos();
        if stop {
            if self.stop_open.is_none() {
                self.stop_open = Some(tn);
            }
        } else if let Some(a) = self.stop_open.take() {
            self.stop_spans.push((a, tn));
        }
    }

    /// Enforced recovery started on the sender.
    pub fn on_enforced_start(&mut self, t: Instant) {
        if self.enforced_open.is_none() {
            self.enforced_open = Some(t.as_nanos());
        }
    }

    /// Enforced recovery resolved.
    pub fn on_enforced_end(&mut self, t: Instant) {
        if let Some(a) = self.enforced_open.take() {
            self.enforced_spans.push((a, t.as_nanos()));
        }
    }

    /// The sender released `seq` (implicit ACK): the chain is complete.
    /// A release before clean delivery leaves a partial chain, counted
    /// as incomplete and never folded into the phase sums.
    pub fn on_release(&mut self, seq: u64) {
        if let Some(c) = self.chains.remove(&seq) {
            if !c.done {
                self.agg.incomplete += 1;
            }
        }
    }

    /// Run ended: chains still in flight (or parked in the resequencer)
    /// become well-formed partial attributions — counted as incomplete,
    /// with no phase-sum audit and no fold into the phase totals.
    pub fn on_run_finished(&mut self) {
        for (_, c) in self.chains.drain() {
            if !c.done {
                self.agg.incomplete += 1;
            }
        }
        self.cp_emit.clear();
        self.cp_rx.clear();
        self.stop_open = None;
        self.stop_spans.clear();
        self.enforced_open = None;
        self.enforced_spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn armed() -> LinkAttribution {
        let mut at = LinkAttribution::new("e1");
        // W_cp = 5 ms, RTT = 27 ms, C_depth = 3 → bound = 44.5 ms.
        at.on_sender_config("tx", 5 * MS, 27 * MS, 3);
        at
    }

    #[test]
    fn clean_delivery_is_pure_first_flight() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_rx(Instant::from_nanos(15 * MS), 1, true, &mut out);
        at.on_release(1);
        at.on_run_finished();
        assert_eq!(out.total(), 0);
        assert_eq!((at.agg.sdus, at.agg.clean, at.agg.errored), (1, 1, 0));
        assert_eq!(at.agg.latency_total_ns, 14 * MS);
        assert_eq!(at.agg.phases[Phase::FirstFlight as usize].total_ns, 14 * MS);
        let other: u64 = (1..8).map(|i| at.agg.phases[i].total_ns).sum();
        assert_eq!(other, 0);
    }

    #[test]
    fn errored_delivery_partitions_into_phases() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        // tx @1, corrupt arrival @15 (NAK, checkpoint 1 carries it),
        // cp1 emitted @16, accepted @30, retx decision @30, clean @44.
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_nak(Instant::from_nanos(15 * MS), 1, 1);
        at.on_cp_emit(Instant::from_nanos(16 * MS), 1);
        at.on_cp_rx(Instant::from_nanos(30 * MS), 1);
        at.on_renumbered(1, 2);
        at.on_retx_cause(Instant::from_nanos(30 * MS), 2, "nak", 1, &mut out);
        at.on_tx(Instant::from_nanos(30 * MS), 2, true);
        at.on_rx(Instant::from_nanos(44 * MS), 2, true, &mut out);
        at.on_release(2);
        at.on_run_finished();
        assert_eq!(out.total(), 0, "{:?}", out.list());
        assert_eq!((at.agg.sdus, at.agg.clean, at.agg.errored), (1, 0, 1));
        let p = |ph: Phase| at.agg.phases[ph as usize].total_ns;
        assert_eq!(p(Phase::FirstFlight), 14 * MS);
        assert_eq!(p(Phase::NakWait), MS);
        assert_eq!(p(Phase::NakLoss), 0);
        assert_eq!(p(Phase::ControlFlight), 14 * MS);
        assert_eq!(p(Phase::StopGo), 0);
        assert_eq!(p(Phase::RetxWait), 0);
        assert_eq!(p(Phase::RetxFlight), 14 * MS);
        assert_eq!(at.agg.latency_total_ns, 43 * MS);
        let total: u64 = at.agg.phases.iter().map(|a| a.total_ns).sum();
        assert_eq!(total, at.agg.latency_total_ns);
        // Resolution cycle 15 ms, well under the 44.5 ms bound.
        assert_eq!(at.agg.res_cycles, 1);
        assert_eq!(at.agg.res_max_ns, 15 * MS);
        assert_eq!(at.agg.res_violations, 0);
    }

    #[test]
    fn lost_checkpoints_become_nak_loss_and_repeats() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_nak(Instant::from_nanos(15 * MS), 1, 1);
        at.on_cp_emit(Instant::from_nanos(16 * MS), 1);
        // Checkpoints 1 and 2 lost; 3 gets through at 26 → accepted @40.
        at.on_cp_emit(Instant::from_nanos(21 * MS), 2);
        at.on_cp_emit(Instant::from_nanos(26 * MS), 3);
        at.on_cp_rx(Instant::from_nanos(40 * MS), 3);
        at.on_renumbered(1, 2);
        at.on_retx_cause(Instant::from_nanos(40 * MS), 2, "nak", 3, &mut out);
        at.on_rx(Instant::from_nanos(54 * MS), 2, true, &mut out);
        at.on_run_finished();
        let p = |ph: Phase| at.agg.phases[ph as usize].total_ns;
        assert_eq!(p(Phase::NakWait), MS); // 15 → 16
        assert_eq!(p(Phase::NakLoss), 10 * MS); // 16 → 26
        assert_eq!(p(Phase::ControlFlight), 14 * MS); // 26 → 40
        assert_eq!(at.agg.max_nak_repeats, 2);
        let total: u64 = at.agg.phases.iter().map(|a| a.total_ns).sum();
        assert_eq!(total, at.agg.latency_total_ns);
    }

    #[test]
    fn stop_go_overlap_splits_the_decision_tail() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_nak(Instant::from_nanos(15 * MS), 1, 1);
        at.on_cp_emit(Instant::from_nanos(16 * MS), 1);
        at.on_cp_rx(Instant::from_nanos(30 * MS), 1);
        // Stop-Go throttles the sender 30 → 36 ms; decision at 40 ms.
        at.on_stop_go(Instant::from_nanos(30 * MS), true);
        at.on_stop_go(Instant::from_nanos(36 * MS), false);
        at.on_renumbered(1, 2);
        at.on_retx_cause(Instant::from_nanos(40 * MS), 2, "nak", 1, &mut out);
        at.on_rx(Instant::from_nanos(54 * MS), 2, true, &mut out);
        at.on_run_finished();
        let p = |ph: Phase| at.agg.phases[ph as usize].total_ns;
        assert_eq!(p(Phase::StopGo), 6 * MS);
        assert_eq!(p(Phase::RetxWait), 4 * MS);
        // The stop span also pauses the resolution clock: 25 − 6 = 19.
        assert_eq!(at.agg.res_max_ns, 19 * MS);
        assert_eq!(at.agg.res_violations, 0);
        let total: u64 = at.agg.phases.iter().map(|a| a.total_ns).sum();
        assert_eq!(total, at.agg.latency_total_ns);
    }

    #[test]
    fn resolve_retx_charges_enforced() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_enforced_start(Instant::from_nanos(20 * MS));
        at.on_renumbered(1, 2);
        at.on_retx_cause(Instant::from_nanos(61 * MS), 2, "resolve", 0, &mut out);
        at.on_enforced_end(Instant::from_nanos(62 * MS));
        at.on_rx(Instant::from_nanos(75 * MS), 2, true, &mut out);
        at.on_run_finished();
        let p = |ph: Phase| at.agg.phases[ph as usize].total_ns;
        assert_eq!(p(Phase::Enforced), 60 * MS); // 1 → 61
        assert_eq!(p(Phase::RetxFlight), 14 * MS);
        assert_eq!(at.agg.res_cycles, 0, "resolve closes no NAK cycle");
        let total: u64 = at.agg.phases.iter().map(|a| a.total_ns).sum();
        assert_eq!(total, at.agg.latency_total_ns);
    }

    #[test]
    fn resolution_beyond_bound_is_a_finding() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_nak(Instant::from_nanos(15 * MS), 1, 1);
        at.on_cp_emit(Instant::from_nanos(16 * MS), 1);
        at.on_cp_rx(Instant::from_nanos(30 * MS), 1);
        at.on_renumbered(1, 2);
        // Decision only at 90 ms: 75 ms cycle > 44.5 ms bound.
        at.on_retx_cause(Instant::from_nanos(90 * MS), 2, "nak", 1, &mut out);
        assert_eq!(at.agg.res_violations, 1);
        assert_eq!(out.total(), 1);
        assert_eq!(out.list()[0].invariant, Invariant::ResolutionBound);
        assert!(out.list()[0].detail.contains("resolving period"));
    }

    #[test]
    fn truncated_chains_count_incomplete_without_folding() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        // One delivered, one still in flight, one renumbered but not yet
        // re-delivered when the run ends.
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_rx(Instant::from_nanos(15 * MS), 1, true, &mut out);
        at.on_tx(Instant::from_nanos(2 * MS), 2, false);
        at.on_tx(Instant::from_nanos(3 * MS), 3, false);
        at.on_nak(Instant::from_nanos(17 * MS), 3, 1);
        at.on_renumbered(3, 4);
        at.on_retx_cause(Instant::from_nanos(30 * MS), 4, "nak", 1, &mut out);
        at.on_run_finished();
        assert_eq!(at.agg.sdus, 1);
        assert_eq!(at.agg.incomplete, 2);
        assert_eq!(out.total(), 0, "partial chains raise no findings");
        // Phase totals still partition only the delivered SDU.
        let total: u64 = at.agg.phases.iter().map(|a| a.total_ns).sum();
        assert_eq!(total, at.agg.latency_total_ns);
    }

    #[test]
    fn absorb_merges_aggregates() {
        let mut a = AttributionAgg::default();
        let mut b = AttributionAgg::default();
        a.sdus = 2;
        a.phases[0].add(10);
        a.res_max_ns = 5;
        b.sdus = 3;
        b.phases[0].add(20);
        b.res_max_ns = 9;
        b.incomplete = 1;
        a.absorb(&b);
        assert_eq!(a.sdus, 5);
        assert_eq!(a.incomplete, 1);
        assert_eq!(
            a.phases[0],
            PhaseAgg {
                count: 2,
                total_ns: 30,
                max_ns: 20
            }
        );
        assert_eq!(a.res_max_ns, 9);
    }

    #[test]
    fn json_block_is_all_integers() {
        let mut out = Findings::with_cap(16);
        let mut at = armed();
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_rx(Instant::from_nanos(15 * MS), 1, true, &mut out);
        at.on_run_finished();
        let j = at.agg.to_json();
        let s = j.render();
        assert!(
            !s.contains('.'),
            "attribution JSON must be integer-only: {s}"
        );
        assert_eq!(j.get("sdus").and_then(Json::as_f64), Some(1.0));
        let ff = j
            .get("phases")
            .and_then(|p| p.get("first_flight"))
            .expect("first_flight");
        assert_eq!(ff.get("total_ns").and_then(Json::as_f64), Some(14e6));
        assert!(j
            .get("resolution")
            .and_then(|r| r.get("bound_ns"))
            .is_some());
    }

    #[test]
    fn unarmed_links_stay_silent() {
        let mut out = Findings::with_cap(16);
        let mut at = LinkAttribution::new("e1");
        assert!(!at.armed());
        at.on_tx(Instant::from_nanos(MS), 1, false);
        at.on_rx(Instant::from_nanos(15 * MS), 1, true, &mut out);
        at.on_run_finished();
        // The aggregate fills in, but the monitor only folds armed links.
        assert_eq!(at.agg.res_bound_ns, 0);
    }
}
