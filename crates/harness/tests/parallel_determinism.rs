//! The parallel experiment runner must be a pure speed knob: the
//! `lams-dlc.repro/1` document produced at `--workers N` is byte-identical
//! to the serial one apart from measured wall-clock (the perf blocks).
//!
//! This is the common-random-numbers guarantee end-to-end: every
//! simulation derives all randomness from its config's seed, and the
//! runner merges results, perf accumulators, and trace records in
//! experiment order regardless of which worker ran what.

use harness::{parallel, runner};
use telemetry::Json;

/// Null out every `perf` member (the only fields carrying wall-clock).
fn strip_perf(json: Json) -> Json {
    match json {
        Json::Obj(members) => Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| {
                    if k == "perf" {
                        (k, Json::Null)
                    } else {
                        (k, strip_perf(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_perf).collect()),
        other => other,
    }
}

fn report_at(workers: usize, ids: &[String]) -> (Json, Json) {
    parallel::set_workers(workers);
    let runs = runner::run_experiments(ids, true);
    let full = runner::report_json(&runs, true);
    parallel::set_workers(1);
    (strip_perf(full.clone()), full)
}

#[test]
fn worker_count_does_not_change_results() {
    // A cheap, representative subset: a single-flow sweep (e6), an
    // outage sweep (e9), and the relay topology (e13).
    let ids: Vec<String> = ["e6", "e9", "e13"].iter().map(|s| s.to_string()).collect();
    let (serial, serial_full) = report_at(1, &ids);
    let (par, _) = report_at(3, &ids);
    assert_eq!(
        serial.render(),
        par.render(),
        "parallel run changed results beyond perf blocks"
    );
    // The stripped comparison must actually have removed something —
    // guard against the schema silently renaming "perf".
    assert_ne!(
        serial.render(),
        serial_full.render(),
        "strip_perf found no perf blocks; schema changed?"
    );
}
