//! Rendering for the self-profiling results a profiled `repro` run
//! collects: the `lams-dlc.profile/1` JSON document, a human-readable
//! per-experiment table, and collapsed-stack ("folded") flamegraph
//! lines.
//!
//! The span data itself comes from the `profile` crate (see
//! [`profile::Report`]); this module owns everything about how the
//! harness surfaces it. All span durations stay integer nanoseconds
//! end-to-end so the offline validator can check the tree exactly:
//! every child's total nests inside its parent's, and
//! `self = total − Σ children` holds with no rounding.

use crate::runner::ExperimentRun;
use profile::{alloc::AllocSnapshot, SampleSummary, SpanTree};
use telemetry::{Json, Registry};

/// Registry counter: span enters whose timing went unattributed.
pub const SPANS_DROPPED: &str = "profile.spans.dropped";
/// Registry counter: span enters that failed node allocation (table at
/// capacity).
pub const SPANS_TRUNCATED: &str = "profile.spans.truncated";

/// One experiment's self-profile: the span tree plus the wall clock it
/// is measured against, capacity-loss counters, queue-depth samples,
/// and (when the binary installed the counting allocator) the
/// allocation delta.
#[derive(Clone, Debug, Default)]
pub struct ExperimentProfile {
    /// Wall-clock nanoseconds from profiler install to drain — the
    /// denominator for span coverage.
    pub wall_ns: u64,
    /// The recorded span tree (call-path keyed).
    pub tree: SpanTree,
    /// Span enters whose timing went unattributed.
    pub dropped: u64,
    /// Span enters rejected because the span table was at capacity.
    pub truncated: u64,
    /// Event-queue depth samples taken at the engine's periodic sample
    /// ticks.
    pub queue_depth: SampleSummary,
    /// Allocation events/bytes during the experiment, or `None` when
    /// this binary has no counting allocator installed.
    pub alloc: Option<AllocSnapshot>,
}

impl ExperimentProfile {
    /// Assemble from a drained [`profile::Report`] plus the wall clock
    /// and allocation delta measured around it.
    pub fn from_report(
        report: profile::Report,
        wall_ns: u64,
        alloc: Option<AllocSnapshot>,
    ) -> Self {
        ExperimentProfile {
            wall_ns,
            tree: report.tree,
            dropped: report.dropped,
            truncated: report.truncated,
            queue_depth: report.queue_depth,
            alloc,
        }
    }

    /// Fraction of the experiment's wall clock covered by top-level
    /// spans (0.0 when no wall clock was measured).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.tree.total_root_ns() as f64 / self.wall_ns as f64
    }

    /// The capacity-loss counters as a telemetry [`Registry`], under
    /// the canonical names [`SPANS_DROPPED`] / [`SPANS_TRUNCATED`].
    pub fn counters(&self) -> Registry {
        let mut reg = Registry::new();
        reg.add(SPANS_DROPPED, self.dropped as f64);
        reg.add(SPANS_TRUNCATED, self.truncated as f64);
        reg
    }

    /// The per-experiment JSON block embedded in both the repro report
    /// and the standalone profile document.
    pub fn to_json(&self) -> Json {
        let spans: Vec<Json> = self
            .tree
            .roots()
            .iter()
            .map(|&r| span_json(&self.tree, r))
            .collect();
        let alloc = match &self.alloc {
            Some(a) => Json::obj([("allocs", a.allocs.into()), ("bytes", a.bytes.into())]),
            None => Json::Null,
        };
        Json::obj([
            ("wall_ns", self.wall_ns.into()),
            ("counters", self.counters().to_json()),
            (
                "queue_depth",
                Json::obj([
                    ("samples", self.queue_depth.count.into()),
                    ("sum", self.queue_depth.sum.into()),
                    ("max", self.queue_depth.max.into()),
                    ("mean", self.queue_depth.mean().into()),
                ]),
            ),
            ("alloc", alloc),
            ("spans", Json::from(spans)),
        ])
    }

    /// Human-readable breakdown: one row per call path (indented by
    /// depth) with call count, total/self wall-clock, self share of the
    /// experiment wall clock, and mean cost per call. When the
    /// experiment's merged queue profile is supplied, an event-queue
    /// line (compactions, peak depth, horizon) rides along — stats that
    /// were JSON-only before.
    pub fn table(&self, id: &str, queue: Option<&sim_core::QueueProfile>) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "self-profile [{id}]: wall {:.3} ms, {} span path(s), {:.1}% covered",
            self.wall_ns as f64 / 1e6,
            self.tree.len(),
            100.0 * self.coverage(),
        );
        let _ = writeln!(
            s,
            "  {:<32} {:>9} {:>12} {:>12} {:>7} {:>12}",
            "span", "calls", "total ms", "self ms", "self%", "ns/call"
        );
        let wall = self.wall_ns.max(1) as f64;
        for &root in self.tree.roots() {
            self.table_rows(&mut s, root, 0, wall);
        }
        if self.queue_depth.count > 0 {
            let _ = writeln!(
                s,
                "  queue depth: {} sample(s), mean {:.1}, max {}",
                self.queue_depth.count,
                self.queue_depth.mean(),
                self.queue_depth.max,
            );
        }
        if let Some(q) = queue {
            let _ = writeln!(
                s,
                "  event queue: {} compaction(s), peak depth {}, horizon {:.3} s",
                q.compactions,
                q.peak_depth,
                q.horizon.as_secs_f64(),
            );
        }
        if let Some(a) = &self.alloc {
            let _ = writeln!(s, "  allocations: {} ({} bytes)", a.allocs, a.bytes);
        }
        if self.dropped > 0 || self.truncated > 0 {
            let _ = writeln!(
                s,
                "  WARNING: {} span(s) dropped ({} truncated by the table cap)",
                self.dropped, self.truncated
            );
        }
        s
    }

    fn table_rows(&self, s: &mut String, index: u32, depth: usize, wall: f64) {
        use std::fmt::Write as _;
        let n = self.tree.node(index);
        let self_ns = self.tree.self_ns(index);
        let label = format!("{}{}", "  ".repeat(depth), n.name);
        let _ = writeln!(
            s,
            "  {:<32} {:>9} {:>12.3} {:>12.3} {:>6.1}% {:>12}",
            label,
            n.count,
            n.total_ns as f64 / 1e6,
            self_ns as f64 / 1e6,
            100.0 * self_ns as f64 / wall,
            n.total_ns / n.count.max(1),
        );
        for &c in &n.children {
            self.table_rows(s, c, depth + 1, wall);
        }
    }

    /// Append collapsed-stack lines (`id;path;to;span <self_ns>`) for
    /// this experiment — the input format flamegraph tools consume. The
    /// experiment id is the synthetic root frame, so a multi-experiment
    /// file renders as one flamegraph with per-experiment towers.
    pub fn folded_into(&self, id: &str, out: &mut String) {
        for &root in self.tree.roots() {
            self.folded_rows(out, id, root);
        }
    }

    fn folded_rows(&self, out: &mut String, prefix: &str, index: u32) {
        use std::fmt::Write as _;
        let n = self.tree.node(index);
        let path = format!("{prefix};{}", n.name);
        let self_ns = self.tree.self_ns(index);
        if self_ns > 0 {
            let _ = writeln!(out, "{path} {self_ns}");
        }
        for &c in &n.children {
            self.folded_rows(out, &path, c);
        }
    }
}

fn span_json(tree: &SpanTree, index: u32) -> Json {
    let n = tree.node(index);
    let children: Vec<Json> = n.children.iter().map(|&c| span_json(tree, c)).collect();
    Json::obj([
        ("name", Json::from(n.name)),
        ("count", n.count.into()),
        ("total_ns", n.total_ns.into()),
        ("self_ns", tree.self_ns(index).into()),
        ("children", Json::from(children)),
    ])
}

/// Build the standalone `lams-dlc.profile/1` document over completed
/// runs (unprofiled or unknown-id runs are skipped).
pub fn profile_doc(runs: &[ExperimentRun], quick: bool) -> Json {
    let experiments: Vec<Json> = runs
        .iter()
        .filter_map(|run| {
            let p = run.profile.as_ref()?;
            let mut doc = p.to_json();
            if let Json::Obj(members) = &mut doc {
                members.insert(0, ("id".into(), Json::from(run.id.as_str())));
            }
            Some(doc)
        })
        .collect();
    Json::obj([
        ("schema", Json::from("lams-dlc.profile/1")),
        ("quick", Json::from(quick)),
        ("experiments", Json::from(experiments)),
    ])
}

/// Render every profiled run's collapsed stacks into one folded file.
pub fn folded(runs: &[ExperimentRun]) -> String {
    let mut out = String::new();
    for run in runs {
        if let Some(p) = &run.profile {
            p.folded_into(&run.id, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> ExperimentProfile {
        profile::install();
        {
            let _e = profile::span("experiment");
            let _r = profile::span("sim.run");
            {
                let _p = profile::span("queue.pop");
            }
            let _s = profile::span("queue.schedule");
        }
        let report = profile::take().expect("installed");
        let wall_ns = report.tree.total_root_ns() + 1_000;
        ExperimentProfile::from_report(report, wall_ns, None)
    }

    #[test]
    fn counters_use_canonical_registry_names() {
        assert!(telemetry::is_canonical_name(SPANS_DROPPED));
        assert!(telemetry::is_canonical_name(SPANS_TRUNCATED));
        let mut p = sample_profile();
        p.dropped = 3;
        p.truncated = 2;
        let reg = p.counters();
        assert_eq!(reg.get(SPANS_DROPPED), Some(3.0));
        assert_eq!(reg.get(SPANS_TRUNCATED), Some(2.0));
    }

    #[test]
    fn json_block_is_tree_consistent() {
        let p = sample_profile();
        let doc = p.to_json();
        let spans = doc.get("spans").and_then(Json::as_arr).expect("spans");
        assert_eq!(spans.len(), 1);
        let root = &spans[0];
        assert_eq!(root.get("name").and_then(Json::as_str), Some("experiment"));
        // self = total − Σ children, exactly.
        let ns = |j: &Json, key: &str| j.get(key).and_then(Json::as_f64).expect(key) as u64;
        let total = ns(root, "total_ns");
        let self_ns = ns(root, "self_ns");
        let child_total: u64 = root
            .get("children")
            .and_then(Json::as_arr)
            .expect("children")
            .iter()
            .map(|c| ns(c, "total_ns"))
            .sum();
        assert_eq!(self_ns + child_total, total);
        assert!(doc.get("counters").is_some());
        assert!(doc.get("queue_depth").is_some());
        assert_eq!(doc.get("alloc"), Some(&Json::Null));
    }

    #[test]
    fn table_lists_every_call_path_once() {
        let p = sample_profile();
        let t = p.table("e1", None);
        assert!(t.contains("self-profile [e1]"), "{t}");
        for name in ["experiment", "sim.run", "queue.pop", "queue.schedule"] {
            assert_eq!(t.matches(name).count(), 1, "{name} once in:\n{t}");
        }
        assert!(!t.contains("WARNING"), "{t}");
    }

    #[test]
    fn table_surfaces_queue_compactions_when_perf_rides_along() {
        use sim_core::{Instant, QueueProfile};
        let p = sample_profile();
        assert!(
            !p.table("e1", None).contains("compaction"),
            "no queue line without a perf block"
        );
        let q = QueueProfile {
            scheduled: 10,
            popped: 9,
            cancelled: 0,
            peak_depth: 4,
            compactions: 7,
            horizon: Instant::from_millis(1500),
        };
        let t = p.table("e1", Some(&q));
        assert!(t.contains("7 compaction(s)"), "{t}");
        assert!(t.contains("peak depth 4"), "{t}");
        assert!(t.contains("horizon 1.500 s"), "{t}");
    }

    #[test]
    fn folded_lines_carry_full_call_paths() {
        let p = sample_profile();
        let mut out = String::new();
        p.folded_into("e9", &mut out);
        for line in out.lines() {
            let (path, value) = line.rsplit_once(' ').expect("value column");
            assert!(path.starts_with("e9;experiment"), "{line}");
            assert!(value.parse::<u64>().expect("integer ns") > 0, "{line}");
        }
        assert!(
            out.lines()
                .any(|l| l.starts_with("e9;experiment;sim.run;queue.pop ")),
            "{out}"
        );
    }
}
