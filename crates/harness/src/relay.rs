//! Multi-hop store-and-forward relay (paper §2.2 assumption 3).
//!
//! A chain of satellites: `hops` links, `hops + 1` nodes. Every
//! intermediate node receives on one link and forwards on the next —
//! "incoming I-frames destined for other nodes are received by the
//! sender and are stored in its sending buffer. The sender forwards
//! these packets whenever the link is available."
//!
//! This is where §2.3's argument bites end-to-end:
//!
//! * a **LAMS-DLC** intermediate node forwards each datagram the moment
//!   its local processing finishes — out-of-order is fine, only the
//!   destination resequences; one reordering delay is paid once;
//! * an **SR-HDLC** intermediate node may not release a frame upward
//!   (and hence forward it) until every earlier frame has arrived — the
//!   resequencing delay is paid *per hop*, and a loss near the source
//!   stalls the pipeline of every downstream link.

use crate::metrics::RunReport;
use crate::node::{Driver, RxEndpoint, TxEndpoint};
use crate::scenario::ScenarioConfig;
use crate::traffic::TrafficGen;
use netsim::Machine;
use netsim::{NodeRole, SimBuilder};
use sim_core::SeedSplitter;

/// Relay chain configuration: `hops` identical links, each drawn from the
/// base scenario (distance, rate, error model, protocol knobs).
#[derive(Clone, Debug)]
pub struct RelayConfig {
    /// Number of links in the chain (≥ 1).
    pub hops: usize,
    /// Per-link scenario parameters.
    pub base: ScenarioConfig,
}

/// Drive a relay chain where every hop runs the same protocol.
/// `mk_tx(i)` / `mk_rx(i)` build the endpoints of link `i`.
pub fn run_relay<T, R>(
    cfg: &RelayConfig,
    mk_tx: impl Fn(usize) -> T,
    mk_rx: impl Fn(usize) -> R,
    protocol: &str,
) -> RunReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
{
    assert!(cfg.hops >= 1, "need at least one link");
    let h = cfg.hops;
    let base = &cfg.base;
    let gen = TrafficGen::new(
        base.pattern.clone(),
        base.n_packets,
        SeedSplitter::new(base.seed).stream(2),
    );

    // hops + 1 nodes: source, h − 1 relays, sink. Per hop, a forward
    // link (data) and a reverse link (control), with independent
    // channels per hop (fresh RNG streams per link via shifted seeds).
    // Each hop's receiver drains right after its reverse link pumps, so
    // forwarded frames reach the next hop's sender before that link's
    // pump pass — store-and-forward within the same instant.
    let mut b = SimBuilder::new(base.payload_bytes, base.deadline, base.sample_every);
    let mut nodes = Vec::with_capacity(h + 1);
    for n in 0..=h {
        nodes.push(b.node(match n {
            0 => NodeRole::Source,
            n if n == h => NodeRole::Sink,
            _ => NodeRole::Relay,
        }));
    }
    let mut txs = Vec::with_capacity(h);
    let mut rxs = Vec::with_capacity(h);
    for i in 0..h {
        let mut c = base.clone();
        c.seed = base.seed.wrapping_add(1000 * (i as u64 + 1));
        let (f, r) = c.build_channels();
        let lf = b.link(nodes[i], nodes[i + 1], f, "fwd");
        let lr = b.link(nodes[i + 1], nodes[i], r, "rev");
        let t = b.tx(nodes[i], lf, mk_tx(i));
        let rx = b.rx(nodes[i + 1], lr, mk_rx(i));
        b.listen(lf, rx);
        b.listen(lr, t);
        b.drain_after(rx, lr);
        txs.push(t);
        rxs.push(rx);
    }
    let c = b.collector(crate::metrics::Collector::new());
    b.source(gen, txs[0], c);
    for i in 0..h {
        if i + 1 < h {
            b.forward(rxs[i], txs[i + 1]);
        } else {
            b.deliver(rxs[i], c);
        }
    }
    // Report the source node's buffer; intermediate hops contribute to
    // rx occupancy (worst hop).
    b.sample(c, txs[0], rxs.clone());
    b.holding(c, txs[0]);

    let out = b.build().expect("relay wiring is valid").run();
    let failed = out.txs.iter().any(|t| t.is_failed());
    let transmissions: u64 = out.txs.iter().map(|t| t.transmissions()).sum();
    let retransmissions: u64 = out.txs.iter().map(|t| t.retransmissions()).sum();
    let col = out.collectors.into_iter().next().expect("one collector");
    let mut report = col.finish(
        protocol,
        out.issued[0],
        out.finished_at,
        out.deadline_hit,
        failed,
        transmissions,
        retransmissions,
        base.t_f(),
        out.txs[0].extra_stats(),
        out.rxs[h - 1].extra_stats(),
    );
    report.queue = out.queue;
    report.wall_secs = out.wall_secs;
    crate::metrics::perf_absorb(&report.queue, report.wall_secs);
    report
}

/// Per-hop trace labels: hop `i`'s sender/receiver pair shares the
/// `hop<i>` prefix so trace consumers can pair the two sides of each
/// link. Chains longer than the table fall back to untraced endpoints
/// (trace labels are `&'static str` by design).
const HOP_TX: [&str; 8] = [
    "hop0.tx", "hop1.tx", "hop2.tx", "hop3.tx", "hop4.tx", "hop5.tx", "hop6.tx", "hop7.tx",
];
const HOP_RX: [&str; 8] = [
    "hop0.rx", "hop1.rx", "hop2.rx", "hop3.rx", "hop4.rx", "hop5.rx", "hop6.rx", "hop7.rx",
];

fn hop_trace(labels: &[&'static str; 8], i: usize) -> telemetry::trace::Trace {
    labels
        .get(i)
        .map(|l| telemetry::global_handle(l))
        .unwrap_or_else(telemetry::trace::Trace::disabled)
}

/// Relay chain under LAMS-DLC at every hop.
pub fn run_relay_lams(cfg: &RelayConfig) -> RunReport {
    let lcfg = cfg.base.lams_config();
    run_relay(
        cfg,
        |i| Driver::new(lams_dlc::Sender::new(lcfg.clone()).with_trace(hop_trace(&HOP_TX, i))),
        |i| Driver::new(lams_dlc::Receiver::new(lcfg.clone()).with_trace(hop_trace(&HOP_RX, i))),
        "lams-relay",
    )
}

/// Relay chain under SR-HDLC at every hop.
pub fn run_relay_sr(cfg: &RelayConfig) -> RunReport {
    let hcfg = cfg.base.hdlc_config();
    run_relay(
        cfg,
        |i| Driver::new(hdlc::SrSender::new(hcfg.clone()).with_trace(hop_trace(&HOP_TX, i))),
        |i| Driver::new(hdlc::SrReceiver::new(hcfg.clone()).with_trace(hop_trace(&HOP_RX, i))),
        "sr-relay",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Duration;

    fn relay(hops: usize, n: u64, ber: f64) -> RelayConfig {
        let mut base = ScenarioConfig::paper_default();
        base.n_packets = n;
        base.data_residual_ber = ber;
        base.ctrl_residual_ber = ber / 10.0;
        base.deadline = Duration::from_secs(120);
        RelayConfig { hops, base }
    }

    #[test]
    fn single_hop_matches_direct_runner() {
        let cfg = relay(1, 1_000, 1e-6);
        let relayed = run_relay_lams(&cfg);
        let direct = crate::scenario::run_lams(&cfg.base);
        assert_eq!(relayed.lost, 0);
        // Same protocol, same seed-derived... the relay uses shifted seeds,
        // so compare statistically: within 10%.
        let d = (relayed.elapsed_s() - direct.elapsed_s()).abs() / direct.elapsed_s();
        assert!(
            d < 0.1,
            "relay {} vs direct {}",
            relayed.elapsed_s(),
            direct.elapsed_s()
        );
    }

    #[test]
    fn three_hop_chain_is_lossless_and_ordered() {
        let cfg = relay(3, 1_500, 1e-6);
        let r = run_relay_lams(&cfg);
        assert_eq!(r.lost, 0);
        assert_eq!(r.delivered_unique, 1_500);
        assert_eq!(r.e2e_delay.count(), 1_500, "all released in order");
        assert!(!r.deadline_hit);
    }

    #[test]
    fn sr_chain_also_lossless() {
        let cfg = relay(2, 1_000, 1e-6);
        let r = run_relay_sr(&cfg);
        assert_eq!(r.lost, 0);
        assert_eq!(r.delivered_unique, 1_000);
    }

    #[test]
    fn per_hop_resequencing_penalty_compounds() {
        // §2.3's end-to-end claim: over several noisy hops the in-order
        // protocol's mean end-to-end delay grows faster than the
        // out-of-order one's.
        let cfg = relay(3, 3_000, 1e-5);
        let lams = run_relay_lams(&cfg);
        let sr = run_relay_sr(&cfg);
        assert_eq!(lams.lost, 0);
        assert_eq!(sr.lost, 0);
        assert!(
            lams.e2e_delay.mean() < sr.e2e_delay.mean(),
            "lams {} !< sr {}",
            lams.e2e_delay.mean(),
            sr.e2e_delay.mean()
        );
    }

    #[test]
    fn extra_hops_cost_one_propagation_each() {
        // The chain pipelines: serialization happens once (frames flow
        // through intermediate nodes as they arrive), so each extra hop
        // adds ≈ one propagation delay + t_proc, not a full batch time.
        let cfg1 = relay(1, 800, 1e-7);
        let d1 = run_relay_lams(&cfg1).e2e_delay.mean();
        let d3 = run_relay_lams(&relay(3, 800, 1e-7)).e2e_delay.mean();
        let per_hop = cfg1.base.one_way_delay().as_secs_f64();
        let increment = d3 - d1;
        let expect = 2.0 * per_hop;
        assert!(
            (increment - expect).abs() / expect < 0.25,
            "increment {increment}s vs 2 hops of propagation {expect}s"
        );
    }
}
