//! Closed-form model benchmarks: every §4 expression, including the
//! `N_total` sub-period recursion at realistic sizes.

use analysis::buffer::{b_hdlc_growth_rate, b_lams};
use analysis::delivery::{d_low_hdlc, d_low_lams};
use analysis::holding::{h_frame_hdlc, h_frame_lams};
use analysis::numbering::{hdlc_numbering_size, lams_numbering_size};
use analysis::periods::{s_bar_hdlc, s_bar_lams};
use analysis::throughput::{d_high_hdlc, d_high_lams, efficiency_hdlc, efficiency_lams, n_total};
use analysis::LinkParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn full_model(c: &mut Criterion) {
    let p = LinkParams::paper_default();
    c.bench_function("analysis/full_suite_one_point", |b| {
        b.iter(|| {
            let p = black_box(&p);
            black_box((
                s_bar_lams(p),
                s_bar_hdlc(p),
                d_low_lams(p, 1000),
                d_low_hdlc(p, 1000),
                h_frame_lams(p),
                h_frame_hdlc(p),
                b_lams(p),
                b_hdlc_growth_rate(p),
                lams_numbering_size(p),
                hdlc_numbering_size(p, 0.999999),
            ))
        })
    });
}

fn n_total_recursion(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis/n_total");
    for n in [1_000u64, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| n_total(black_box(n), 500.0, 0.05))
        });
    }
    g.finish();
}

fn throughput_curves(c: &mut Criterion) {
    let p = LinkParams::paper_default();
    c.bench_function("analysis/eta_sweep_20_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 1..=20u64 {
                let n = k * 5_000;
                acc += efficiency_lams(black_box(&p), n);
                acc += efficiency_hdlc(black_box(&p), n);
            }
            acc
        })
    });
    c.bench_function("analysis/d_high_100k", |b| {
        b.iter(|| {
            (
                d_high_lams(black_box(&p), 100_000),
                d_high_hdlc(black_box(&p), 100_000),
            )
        })
    });
}

criterion_group!(benches, full_model, n_total_recursion, throughput_curves);
criterion_main!(benches);
