//! Transparent buffer sizes (§4).
//!
//! A buffer size is *transparent* when the protocol can operate
//! continuously without the buffer ever becoming the binding constraint.
//! §4 shows:
//!
//! * **LAMS-DLC**: the sending buffer stabilises once the pipeline fills —
//!   frames flow out at the same rate they flow in after one mean holding
//!   time — so the transparent size is the arrivals during `H_frame`:
//!   `B_LAMS = H_frame/t_f + t_proc/t_f` (sending + receiving sides).
//! * **SR-HDLC**: *no* transparent size exists. Every window must be
//!   resolved before the next opens; during each resolution gap the
//!   sending buffer absorbs `gap/t_f` new frames it can never drain, so
//!   occupancy grows without bound at sustained load (`B_HDLC = ∞`), and
//!   the receiver additionally must hold up to a window for resequencing.

use crate::holding::h_frame_lams;
use crate::params::LinkParams;

/// Transparent sending-buffer size for LAMS-DLC, in frames:
/// `H_frame / t_f`.
pub fn b_lams_sending(p: &LinkParams) -> f64 {
    h_frame_lams(p) / p.t_f
}

/// Transparent receiving-buffer size for LAMS-DLC, in frames:
/// `t_proc / t_f` (frames in processing; nothing is held for
/// resequencing).
pub fn b_lams_receiving(p: &LinkParams) -> f64 {
    p.t_proc / p.t_f
}

/// Total transparent buffer size `B_LAMS` (§4).
pub fn b_lams(p: &LinkParams) -> f64 {
    b_lams_sending(p) + b_lams_receiving(p)
}

/// SR-HDLC transparent buffer size: none exists (`∞`, §4).
pub fn b_hdlc(_p: &LinkParams) -> f64 {
    f64::INFINITY
}

/// The *rate* at which the SR-HDLC sending buffer grows at saturation,
/// in frames per second: during each window's resolution gap
/// (`D_low(W) − W·t_f`) arrivals continue at `1/t_f` while departures
/// stop, so each cycle of length `D_low(W)` accumulates `gap/t_f` frames.
pub fn b_hdlc_growth_rate(p: &LinkParams) -> f64 {
    let gap = crate::delivery::d_low_hdlc(p, p.w) - p.w as f64 * p.t_f;
    let cycle = crate::delivery::d_low_hdlc(p, p.w);
    (gap / p.t_f) / cycle
}

/// SR-HDLC receiving-buffer requirement: the window size (the receiver
/// cannot release out-of-order frames upward).
pub fn b_hdlc_receiving(p: &LinkParams) -> f64 {
    p.w as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkParams;

    fn params() -> LinkParams {
        LinkParams::paper_default()
    }

    #[test]
    fn b_lams_finite_and_in_flight_scale() {
        let p = params();
        let b = b_lams(&p);
        assert!(b.is_finite());
        // Must at least cover the frames in flight over one RTT, and stay
        // within a small multiple of it at low error rates.
        let in_flight = p.r / p.t_f;
        assert!(b > in_flight, "b={b} in_flight={in_flight}");
        assert!(b < 10.0 * in_flight, "b={b} in_flight={in_flight}");
    }

    #[test]
    fn b_hdlc_unbounded() {
        assert!(b_hdlc(&params()).is_infinite());
    }

    #[test]
    fn hdlc_growth_positive_even_error_free() {
        // Even with a perfect channel the resolution gap (one RTT per
        // window) forces growth at saturation.
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        assert!(b_hdlc_growth_rate(&p) > 0.0);
    }

    #[test]
    fn b_lams_shrinks_with_checkpoint_interval() {
        // §3.4: buffer control — a shorter W_cp reduces holding time and
        // hence the transparent size.
        let mut small = params();
        small.i_cp = 1e-3;
        let mut large = params();
        large.i_cp = 20e-3;
        assert!(b_lams(&small) < b_lams(&large));
    }

    #[test]
    fn b_lams_grows_with_distance_and_error() {
        let near = params();
        let mut far = params();
        far.r = 3.0 * near.r;
        assert!(b_lams(&far) > b_lams(&near));
        let noisy = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        assert!(b_lams(&noisy) > b_lams(&near));
    }

    #[test]
    fn receiving_sides_ordering() {
        // LAMS receiving buffer is tiny (t_proc/t_f < 1 frame here);
        // HDLC's is a full window.
        let p = params();
        assert!(b_lams_receiving(&p) < 1.0);
        assert_eq!(b_hdlc_receiving(&p), p.w as f64);
    }
}
