//! Structured telemetry for the LAMS-DLC simulation workspace.
//!
//! Three facilities, all dependency-free and deterministic:
//!
//! * [`trace`] — a stream of sim-time-stamped protocol events
//!   ([`TraceRecord`]) emitted through the [`TraceSink`] trait. Sinks
//!   include a no-op sink (disabled tracing costs one branch per
//!   potential record), a bounded in-memory ring buffer, and a JSONL
//!   file writer. A process-wide sink can be installed so deeply nested
//!   simulation code can emit records without plumbing handles through
//!   every constructor.
//! * [`registry`] — a tiny insertion-ordered counter/gauge registry
//!   ([`Registry`]) replacing ad-hoc `Vec<(&'static str, f64)>`
//!   metric plumbing.
//! * [`json`] — a minimal JSON value model ([`Json`]) with rendering
//!   and parsing, used for machine-readable run reports. No external
//!   serialisation crates are available offline, so this is the one
//!   JSON implementation the workspace shares.
//! * [`timeline`] — Chrome trace-event rendering for the sharded
//!   runtime's superstep spans ([`SuperstepSpan`]), loadable in
//!   Perfetto.

#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use json::Json;
pub use registry::{is_canonical_name, CounterHandle, Registry};
pub use timeline::{timeline_doc, SuperstepSpan, TimelineGroup, TIMELINE_SCHEMA};
pub use trace::{
    global_handle, global_sink, install_global, parse_line, sink_trace, uninstall_global,
    BufferSink, FanoutSink, JsonlSink, RingSink, SharedSink, Trace, TraceEvent, TraceRecord,
    TraceSink,
};
