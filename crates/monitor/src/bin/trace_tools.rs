//! Offline trace analyzer: replay a `--trace` JSONL file through the
//! same auditor/metrics engine the live runs use.
//!
//! ```text
//! trace-tools audit       run.trace.jsonl
//! trace-tools metrics     run.trace.jsonl --window 50 --out series.jsonl
//! trace-tools lifecycle   run.trace.jsonl --limit 20
//! trace-tools summary     run.trace.jsonl
//! trace-tools attribution run.trace.jsonl
//! trace-tools timeline    run.trace.jsonl --out t.json
//! ```

use monitor::{Monitor, MonitorConfig};
use sim_core::Duration;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use telemetry::Json;

const USAGE: &str = "\
usage: trace-tools <command> <trace.jsonl> [options]

Replays a telemetry trace (repro --trace output) offline, rebuilding the
same audit verdicts, windowed metrics, and frame lifecycles the live
monitor produces.

commands:
  audit        check the five LAMS-DLC invariants; print findings
               (exit 1 when any are found)
  metrics      emit windowed metric series as JSONL
  lifecycle    emit per-frame lifecycle records as JSONL
  summary      event-kind counts and per-experiment metric summaries
  attribution  per-experiment latency-attribution blocks, one
               \"<id>\\t<json>\" line each — byte-identical to the live
               report's \"attribution\" blocks
  timeline     rebuild the lams-dlc.timeline/1 Chrome trace-event
               document from the trace's superstep records (synthetic
               span placement; deterministic fields match the live
               repro --timeline export byte-for-byte)

options:
  --window <ms>   metric window width in milliseconds (default 100)
  --out <path>    write JSONL output to <path> instead of stdout
  --limit <n>     emit at most <n> lines (metrics/lifecycle)
";

struct Args {
    command: String,
    trace: String,
    window_ms: u64,
    out: Option<String>,
    limit: Option<usize>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut command = None;
    let mut trace = None;
    let mut window_ms = 100u64;
    let mut out = None;
    let mut limit = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            match it.next() {
                Some(v) if !v.starts_with('-') => Ok(v.clone()),
                _ => Err(format!("{flag} requires a value")),
            }
        };
        match arg.as_str() {
            "--window" => {
                window_ms = value("--window")?
                    .parse()
                    .map_err(|_| "--window must be a positive integer (ms)".to_string())?;
                if window_ms == 0 {
                    return Err("--window must be a positive integer (ms)".into());
                }
            }
            "--out" => out = Some(value("--out")?),
            "--limit" => {
                limit = Some(
                    value("--limit")?
                        .parse()
                        .map_err(|_| "--limit must be a non-negative integer".to_string())?,
                )
            }
            "-h" | "--help" => return Err(String::new()),
            f if f.starts_with('-') => return Err(format!("unknown flag: {f}")),
            positional => {
                if command.is_none() {
                    command = Some(positional.to_string());
                } else if trace.is_none() {
                    trace = Some(positional.to_string());
                } else {
                    return Err(format!("unexpected argument: {positional}"));
                }
            }
        }
    }
    let command = command.ok_or("missing command")?;
    if !matches!(
        command.as_str(),
        "audit" | "metrics" | "lifecycle" | "summary" | "attribution" | "timeline"
    ) {
        return Err(format!("unknown command: {command}"));
    }
    Ok(Args {
        command,
        trace: trace.ok_or("missing trace file")?,
        window_ms,
        out,
        limit,
    })
}

/// Feed every line of the trace into `monitor`, also tallying event
/// kinds for `summary`. Lines that are JSON objects carrying a
/// `"schema"` member are stream metadata (failure-artifact headers,
/// interleaved stats documents), counted under `(meta)` and skipped.
/// Fails with the line number on malformed input.
fn replay(path: &str, monitor: &mut Monitor) -> Result<BTreeMap<&'static str, u64>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("read error in {path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(&line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if v.get("schema").is_some() {
            *kinds.entry("(meta)").or_insert(0) += 1;
            continue;
        }
        let rec = telemetry::TraceRecord::from_json(&v)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        *kinds.entry(rec.event.kind()).or_insert(0) += 1;
        monitor.observe(&rec);
    }
    Ok(kinds)
}

/// Rebuild timeline track groups from a trace's `superstep` records.
///
/// Runs of one experiment appear sequentially in the stream, each with
/// unique `(round, shard)` pairs starting over at round 0 — so a
/// repeated pair marks a run boundary. Spans carry zeroed wall-clock
/// fields, which selects [`telemetry::timeline_doc`]'s synthetic
/// placement; every other field is deterministic, so the document
/// matches the live `repro --timeline` export on everything but
/// `ts`/`dur`.
fn timeline_groups(path: &str) -> Result<Vec<telemetry::TimelineGroup>, String> {
    use std::collections::HashSet;
    use telemetry::TraceEvent;

    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut groups: Vec<telemetry::TimelineGroup> = Vec::new();
    let mut current: Vec<telemetry::SuperstepSpan> = Vec::new();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut exp_id = String::from("(unlabeled)");
    let mut run_idx = 0usize;

    fn flush(
        groups: &mut Vec<telemetry::TimelineGroup>,
        current: &mut Vec<telemetry::SuperstepSpan>,
        seen: &mut HashSet<(u64, u64)>,
        exp_id: &str,
        run_idx: &mut usize,
    ) {
        if !current.is_empty() {
            groups.push(telemetry::TimelineGroup {
                label: format!("{exp_id} run {run_idx}"),
                spans: std::mem::take(current),
            });
            *run_idx += 1;
        }
        seen.clear();
    }

    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("read error in {path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(&line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if v.get("schema").is_some() {
            continue;
        }
        let rec = telemetry::TraceRecord::from_json(&v)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        match rec.event {
            TraceEvent::ExperimentStarted { id } => {
                flush(&mut groups, &mut current, &mut seen, &exp_id, &mut run_idx);
                exp_id = id.to_string();
                run_idx = 0;
            }
            TraceEvent::Superstep {
                round,
                shard,
                grant_ns,
                cut_bound,
                critical_link,
                events,
                inbound,
                outbound,
                queue_depth,
            } => {
                if !seen.insert((round, shard)) {
                    flush(&mut groups, &mut current, &mut seen, &exp_id, &mut run_idx);
                    seen.insert((round, shard));
                }
                current.push(telemetry::SuperstepSpan {
                    round,
                    shard,
                    grant_ns,
                    cut_bound,
                    critical_link,
                    events,
                    inbound,
                    outbound,
                    queue_depth,
                    t0_ns: 0,
                    busy_ns: 0,
                });
            }
            _ => {}
        }
    }
    flush(&mut groups, &mut current, &mut seen, &exp_id, &mut run_idx);
    Ok(groups)
}

fn open_out(out: &Option<String>) -> Result<Box<dyn Write>, String> {
    match out {
        Some(path) => {
            let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Ok(Box::new(BufWriter::new(f)))
        }
        None => Ok(Box::new(std::io::stdout().lock())),
    }
}

fn emit_lines(
    lines: impl IntoIterator<Item = Json>,
    out: &Option<String>,
    limit: Option<usize>,
) -> Result<usize, String> {
    let mut w = open_out(out)?;
    let mut n = 0;
    for line in lines {
        if limit.is_some_and(|l| n >= l) {
            break;
        }
        writeln!(w, "{}", line.render()).map_err(|e| format!("write failed: {e}"))?;
        n += 1;
    }
    w.flush().map_err(|e| format!("write failed: {e}"))?;
    Ok(n)
}

fn run(args: &Args) -> Result<ExitCode, String> {
    if args.command == "timeline" {
        let groups = timeline_groups(&args.trace)?;
        let doc = telemetry::timeline_doc(&groups);
        let mut w = open_out(&args.out)?;
        // Same bytes as `repro --timeline`: pretty JSON + newline.
        writeln!(w, "{}", doc.render_pretty()).map_err(|e| format!("write failed: {e}"))?;
        w.flush().map_err(|e| format!("write failed: {e}"))?;
        eprintln!("timeline: {} track group(s)", groups.len());
        return Ok(ExitCode::SUCCESS);
    }
    let cfg = MonitorConfig {
        window: Duration::from_millis(args.window_ms),
        keep_lifecycles: args.command == "lifecycle",
        ..MonitorConfig::default()
    };
    let mut monitor = Monitor::new(cfg);
    let kinds = replay(&args.trace, &mut monitor)?;
    // Streams without a trace_header are simulator traces from before
    // the header existed.
    let domain = monitor.clock_domain().unwrap_or("sim");
    let report = monitor.take_report();

    match args.command.as_str() {
        "audit" => {
            for f in &report.findings {
                println!("{f}");
            }
            let suppressed = report.total_findings - report.findings.len() as u64;
            if suppressed > 0 {
                println!("... and {suppressed} more finding(s) beyond the cap");
            }
            let runs: u64 = report.experiments.iter().map(|e| e.runs).sum();
            eprintln!(
                "audit: {} finding(s) across {} run(s), {} record(s), {domain} clock",
                report.total_findings, runs, report.records
            );
            Ok(if report.total_findings > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        "metrics" => {
            let n = emit_lines(report.window_lines, &args.out, args.limit)?;
            eprintln!(
                "metrics: {n} window line(s) from {} record(s)",
                report.records
            );
            Ok(ExitCode::SUCCESS)
        }
        "lifecycle" => {
            let n = emit_lines(
                report.lifecycles.iter().map(|lc| lc.to_json()),
                &args.out,
                args.limit,
            )?;
            eprintln!("lifecycle: {n} frame(s) from {} record(s)", report.records);
            Ok(ExitCode::SUCCESS)
        }
        "summary" => {
            let mut w = open_out(&args.out)?;
            writeln!(w, "records: {}", report.records).map_err(|e| e.to_string())?;
            writeln!(w, "clock domain: {domain}").map_err(|e| e.to_string())?;
            writeln!(w, "event kinds:").map_err(|e| e.to_string())?;
            for (kind, n) in &kinds {
                writeln!(w, "  {kind:<24} {n}").map_err(|e| e.to_string())?;
            }
            writeln!(w, "experiments:").map_err(|e| e.to_string())?;
            for exp in &report.experiments {
                let id = if exp.id.is_empty() {
                    "(unlabeled)"
                } else {
                    exp.id
                };
                writeln!(w, "  {id}: {}", exp.to_json().render()).map_err(|e| e.to_string())?;
            }
            writeln!(w, "audit findings: {}", report.total_findings).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        "attribution" => {
            let mut w = open_out(&args.out)?;
            let mut n = 0;
            for exp in &report.experiments {
                if args.limit.is_some_and(|l| n >= l) {
                    break;
                }
                let id = if exp.id.is_empty() {
                    "(unlabeled)"
                } else {
                    exp.id
                };
                writeln!(w, "{id}\t{}", exp.attribution.to_json().render())
                    .map_err(|e| format!("write failed: {e}"))?;
                n += 1;
            }
            w.flush().map_err(|e| format!("write failed: {e}"))?;
            eprintln!(
                "attribution: {n} experiment(s) from {} record(s)",
                report.records
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("trace-tools: {msg}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("trace-tools: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Instant;
    use telemetry::{TraceEvent, TraceRecord};

    fn superstep(round: u64, shard: u64, events: u64) -> String {
        TraceRecord {
            t: Instant::from_nanos(round * 10 + shard),
            node: "coord",
            event: TraceEvent::Superstep {
                round,
                shard,
                grant_ns: round * 10 + shard,
                cut_bound: shard > 0,
                critical_link: shard,
                events,
                inbound: 0,
                outbound: 0,
                queue_depth: 0,
            },
        }
        .to_json()
        .render()
    }

    fn started(id: &'static str) -> String {
        TraceRecord {
            t: Instant::ZERO,
            node: "runner",
            event: TraceEvent::ExperimentStarted { id },
        }
        .to_json()
        .render()
    }

    #[test]
    fn groups_split_on_markers_and_repeated_rounds() {
        // Two runs of e18 (round restarts at 0), then one run of e13.
        let lines = [
            started("e18"),
            superstep(0, 0, 5),
            superstep(0, 1, 3),
            superstep(1, 0, 2),
            superstep(0, 0, 7), // (0,0) again → new run
            superstep(0, 1, 1),
            started("e13"),
            superstep(0, 0, 9),
        ]
        .join("\n");
        let path = std::env::temp_dir().join("trace_tools_timeline_test.jsonl");
        std::fs::write(&path, lines).expect("write temp trace");
        let groups = timeline_groups(path.to_str().expect("utf8 path")).expect("parse");
        let _ = std::fs::remove_file(&path);

        let labels: Vec<&str> = groups.iter().map(|g| g.label.as_str()).collect();
        assert_eq!(labels, ["e18 run 0", "e18 run 1", "e13 run 0"]);
        assert_eq!(groups[0].spans.len(), 3);
        assert_eq!(groups[1].spans.len(), 2);
        assert_eq!(groups[1].spans[0].events, 7);
        assert!(
            groups
                .iter()
                .all(|g| g.spans.iter().all(|s| s.t0_ns == 0 && s.busy_ns == 0)),
            "offline spans carry no wall clock"
        );
        let doc = telemetry::timeline_doc(&groups);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(telemetry::TIMELINE_SCHEMA)
        );
    }
}
