//! Period lengths and low-traffic delivery times (§4).
//!
//! Exact forms are implemented (the paper derives exact expressions and
//! then drops small terms with `≈`; we keep the exact ones and provide
//! the approximations separately for comparison).
//!
//! **Note on a typo in the TR:** the paper defines
//! `D_retrn^HDLC = t_f + q·d_resol + (1−q)·d_retrn` with
//! `q = (1−P_F)(1−P_C)`, `d_resol = R + 2t_proc + t_c`, and
//! `d_retrn = t_out = R + α`, but its printed expansion transposes the
//! coefficients of `α` and `(2t_proc + t_c)`. We implement the expansion
//! that follows from the stated definition (α is paid when the
//! retransmission round *fails*), which is also the physically meaningful
//! one.

use crate::params::LinkParams;
use crate::periods::{n_bar_cp, s_bar_hdlc, s_bar_lams};

// ---------------------------------------------------------------- LAMS-DLC

/// LAMS-DLC transmission period for `n` frames (§4):
/// `D_trans = n·t_f + t_c + t_proc + R + (n̄_cp − ½)·I_cp`.
pub fn d_trans_lams(p: &LinkParams, n: u64) -> f64 {
    n as f64 * p.t_f + p.t_c + p.t_proc + p.r + (n_bar_cp(p) - 0.5) * p.i_cp
}

/// LAMS-DLC retransmission period (§4) — the transmission period of a
/// single frame.
pub fn d_retrn_lams(p: &LinkParams) -> f64 {
    d_trans_lams(p, 1)
}

/// LAMS-DLC mean total time for the safe delivery of `n` I-frames in low
/// traffic (exact §4 form):
/// `D_low = (n + s̄ − 1)·t_f + s̄·(R + t_c + t_proc) + s̄·(n̄_cp − ½)·I_cp`.
pub fn d_low_lams(p: &LinkParams, n: u64) -> f64 {
    let s = s_bar_lams(p);
    (n as f64 + s - 1.0) * p.t_f + s * (p.r + p.t_c + p.t_proc) + s * (n_bar_cp(p) - 0.5) * p.i_cp
}

/// The paper's `≈` version of [`d_low_lams`], keeping only the dominant
/// terms: `n·t_f + s̄·R + s̄·(n̄_cp − ½)·I_cp`.
pub fn d_low_lams_approx(p: &LinkParams, n: u64) -> f64 {
    let s = s_bar_lams(p);
    n as f64 * p.t_f + s * p.r + s * (n_bar_cp(p) - 0.5) * p.i_cp
}

// ---------------------------------------------------------------- SR-HDLC

/// HDLC transmission delay `d_trans` (§4): the response either arrives
/// (`1 − P_C`) after `R + 2t_proc + t_c`, or is lost (`P_C`) and the
/// timeout `t_out = R + α` is paid.
pub fn little_d_trans_hdlc(p: &LinkParams) -> f64 {
    p.p_c * p.t_out() + (1.0 - p.p_c) * (p.r + 2.0 * p.t_proc + p.t_c)
}

/// HDLC resolve delay `d_resol = R + 2t_proc + t_c` (§4).
pub fn little_d_resol_hdlc(p: &LinkParams) -> f64 {
    p.r + 2.0 * p.t_proc + p.t_c
}

/// SR-HDLC transmission period for a window of `w` frames (§4):
/// `D_trans = w·t_f + d_trans`.
pub fn d_trans_hdlc(p: &LinkParams, w: u64) -> f64 {
    w as f64 * p.t_f + little_d_trans_hdlc(p)
}

/// SR-HDLC retransmission period (§4, corrected expansion — see module
/// docs): `t_f + q·d_resol + (1−q)·t_out` with `q = (1−P_F)(1−P_C)`.
pub fn d_retrn_hdlc(p: &LinkParams) -> f64 {
    let q = (1.0 - p.p_f) * (1.0 - p.p_c);
    p.t_f + q * little_d_resol_hdlc(p) + (1.0 - q) * p.t_out()
}

/// SR-HDLC retransmission period **as printed in the TR** (§4):
/// `t_f + R + α·q + (1−q)·(2t_proc + t_c)` — the coefficients of `α` and
/// `(2t_proc + t_c)` are transposed relative to the stated definition.
/// Kept for exact-reproduction comparisons; the printed version charges
/// the timeout slack α on (nearly) *every* retransmission period, making
/// HDLC look worse in high-mobility networks, which is the reading the
/// paper's conclusions rely on.
pub fn d_retrn_hdlc_paper(p: &LinkParams) -> f64 {
    let q = (1.0 - p.p_f) * (1.0 - p.p_c);
    p.t_f + p.r + p.alpha * q + (1.0 - q) * (2.0 * p.t_proc + p.t_c)
}

/// SR-HDLC mean total time for the safe delivery of `w` frames (one
/// window) in low traffic (§4):
/// `D_low = D_trans(w) + (s̄_HDLC − 1)·D_retrn`.
pub fn d_low_hdlc(p: &LinkParams, w: u64) -> f64 {
    d_trans_hdlc(p, w) + (s_bar_hdlc(p) - 1.0) * d_retrn_hdlc(p)
}

/// [`d_low_hdlc`] using the TR's printed retransmission-period expansion.
pub fn d_low_hdlc_paper(p: &LinkParams, w: u64) -> f64 {
    d_trans_hdlc(p, w) + (s_bar_hdlc(p) - 1.0) * d_retrn_hdlc_paper(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkParams;
    use proptest::prelude::*;

    fn params() -> LinkParams {
        LinkParams::paper_default()
    }

    #[test]
    fn lams_periods_structure() {
        let p = params();
        // Retransmission period is the single-frame transmission period.
        assert_eq!(d_retrn_lams(&p), d_trans_lams(&p, 1));
        // Adding frames adds exactly t_f each.
        let d10 = d_trans_lams(&p, 10);
        let d11 = d_trans_lams(&p, 11);
        assert!((d11 - d10 - p.t_f).abs() < 1e-15);
    }

    #[test]
    fn lams_error_free_delivery_time() {
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        // s̄ = 1, n̄_cp = 1: D_low(n) = n·t_f + R + t_c + t_proc + I_cp/2.
        let expect = 100.0 * p.t_f + p.r + p.t_c + p.t_proc + 0.5 * p.i_cp;
        assert!((d_low_lams(&p, 100) - expect).abs() < 1e-12);
    }

    #[test]
    fn approx_close_to_exact_at_low_error() {
        let p = params();
        let exact = d_low_lams(&p, 1000);
        let approx = d_low_lams_approx(&p, 1000);
        assert!(
            (exact - approx).abs() / exact < 0.01,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn hdlc_transmission_delay_blends_timeout() {
        let mut p = params();
        p.p_c = 0.0;
        assert!((little_d_trans_hdlc(&p) - (p.r + 2.0 * p.t_proc + p.t_c)).abs() < 1e-15);
        p.p_c = 1.0 - 1e-12;
        assert!((little_d_trans_hdlc(&p) - p.t_out()).abs() < 1e-6);
    }

    #[test]
    fn hdlc_retrn_period_pays_alpha_on_failure() {
        // With certain failure, the retransmission period costs the full
        // timeout; with certain success, only the resolve delay.
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        assert!((d_retrn_hdlc(&p) - (p.t_f + little_d_resol_hdlc(&p))).abs() < 1e-15);
        let mut p2 = params();
        p2.p_f = 1.0 - 1e-12;
        assert!((d_retrn_hdlc(&p2) - (p2.t_f + p2.t_out())).abs() < 1e-6);
    }

    #[test]
    fn paper_headline_lams_faster_at_high_error_and_large_alpha() {
        // The §4 conclusion: with α ≫ n̄_cp·I_cp and s̄_HDLC > s̄_LAMS,
        // D_low^HDLC(N) > D_low^LAMS(N) in a LAMS network. The claim needs
        // the high-mobility regime the paper assumes (large var(R_t) ⇒
        // large α) together with a non-trivial error rate, and it is the
        // TR's own printed D_retrn (which charges α per retransmission
        // period) that carries it.
        let mut p = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        p.alpha = 50e-3; // 10,000 km-class pass, large range spread
        let n = p.w;
        assert!(
            d_low_hdlc_paper(&p, n) > d_low_lams(&p, n),
            "hdlc={} lams={}",
            d_low_hdlc_paper(&p, n),
            d_low_lams(&p, n)
        );
    }

    #[test]
    fn printed_variant_charges_alpha_when_alpha_dominates() {
        // The printed expansion weights α by q ≈ 1, the corrected one by
        // (1 − q) ≪ 1: with α much larger than the supervisory terms the
        // printed retransmission period is the longer of the two.
        let mut p = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        p.alpha = 50e-3;
        assert!(d_retrn_hdlc_paper(&p) > d_retrn_hdlc(&p));
        // Both agree when α equals the supervisory delay (coefficients
        // become symmetric).
        let mut q = params();
        q.alpha = 2.0 * q.t_proc + q.t_c;
        assert!((d_retrn_hdlc_paper(&q) - d_retrn_hdlc(&q)).abs() < 1e-12);
    }

    #[test]
    fn protocols_converge_on_clean_short_link() {
        // With no errors and negligible α the two are nearly equivalent
        // (the paper: "nearly equivalent if s̄_LAMS = s̄_HDLC and α small").
        let mut p = params();
        p.p_f = 0.0;
        p.p_c = 0.0;
        p.alpha = 0.0;
        let n = 1000;
        let lams = d_low_lams(&p, n);
        let hdlc = d_low_hdlc(&p, n);
        assert!((lams - hdlc).abs() / hdlc < 0.1, "lams={lams} hdlc={hdlc}");
    }

    proptest! {
        #[test]
        fn prop_delivery_time_monotone_in_n(n in 1u64..10_000) {
            let p = params();
            prop_assert!(d_low_lams(&p, n + 1) > d_low_lams(&p, n));
            prop_assert!(d_low_hdlc(&p, n + 1) > d_low_hdlc(&p, n));
        }

        #[test]
        fn prop_delivery_time_monotone_in_error(
            pf in 0.0..0.3f64, bump in 1e-4..0.3f64,
        ) {
            let mut lo = params();
            lo.p_f = pf;
            let mut hi = params();
            hi.p_f = (pf + bump).min(0.99);
            prop_assert!(d_low_lams(&hi, 100) >= d_low_lams(&lo, 100) - 1e-12);
            prop_assert!(d_low_hdlc(&hi, 100) >= d_low_hdlc(&lo, 100) - 1e-12);
        }
    }
}
