//! Low-overhead self-profiling for the simulation workspace.
//!
//! The simulator is deeply observable at the *protocol* level (traces,
//! audits, latency attribution) but was a black box at the *CPU* level.
//! This crate answers "where do the nanoseconds go" with three
//! facilities, all dependency-free so every other crate — including
//! `sim-core` at the bottom of the workspace graph — can use them:
//!
//! * **Wall-clock spans** — RAII [`SpanGuard`]s over a monotonic clock
//!   ([`std::time::Instant`]), accumulated into a per-thread span tree
//!   keyed by call path. Each tree node carries a call count and total
//!   nanoseconds; self time falls out as `total − Σ children`, which the
//!   nesting discipline guarantees is exact in integer nanoseconds.
//! * **Queue-depth sampling** — a constant-space `count/sum/max`
//!   summary fed by the engine's periodic sample events.
//! * **Allocation counting** — an optional [`alloc::CountingAlloc`]
//!   global allocator wrapper (see the `bench` crate's `alloc-profile`
//!   feature) whose totals are read via [`alloc::snapshot`].
//!
//! # Enablement model
//!
//! Profiling is per-thread, mirroring the telemetry global-sink
//! pattern: [`install`] puts a fresh profiler in a thread-local,
//! [`take`] removes it and returns the [`Report`]. Hot code holds a
//! [`Prof`] handle (resolved once via [`current`]) and opens spans
//! through it; when no profiler is installed the handle is empty and
//! [`Prof::span`] is a single branch — the same disabled-mode shape as
//! `Trace::emit`, so instrumented hot paths cost effectively nothing
//! when not profiling.
//!
//! Profiling never feeds back into simulation state: it only reads the
//! wall clock, so fingerprints, audit verdicts, and every other
//! deterministic output are byte-identical with profiling on or off.

#![warn(missing_docs)]

pub mod alloc;
mod span;

pub use span::{
    Prof, Profiler, Report, SampleSummary, SpanGuard, SpanNode, SpanTree, DEFAULT_SPAN_CAP,
};

use std::cell::RefCell;
use std::rc::Rc;

thread_local! {
    static PROFILER: RefCell<Option<Rc<RefCell<Profiler>>>> = const { RefCell::new(None) };
}

/// Install a fresh profiler (default span-table capacity) on this
/// thread, replacing any previous one.
pub fn install() {
    install_with_capacity(DEFAULT_SPAN_CAP);
}

/// Install a fresh profiler whose span table holds at most `cap` nodes.
/// Entries beyond the cap are counted as dropped/truncated rather than
/// recorded (see [`Report::dropped`] / [`Report::truncated`]).
pub fn install_with_capacity(cap: usize) {
    PROFILER.with(|p| {
        *p.borrow_mut() = Some(Rc::new(RefCell::new(Profiler::new(cap))));
    });
}

/// Remove this thread's profiler and return its report, or `None` when
/// none was installed. Open spans (live guards) are force-closed at the
/// current clock reading so the tree is always consistent.
pub fn take() -> Option<Report> {
    let prof = PROFILER.with(|p| p.borrow_mut().take())?;
    // Guards may still hold clones of the Rc; they become no-ops once
    // the stack has been drained by `finish`.
    Some(match Rc::try_unwrap(prof) {
        Ok(cell) => cell.into_inner().finish(),
        Err(rc) => rc.borrow_mut().finish_in_place(),
    })
}

/// True when this thread currently has a profiler installed.
pub fn enabled() -> bool {
    PROFILER.with(|p| p.borrow().is_some())
}

/// A handle to this thread's profiler — empty (disabled, near-zero
/// cost) when none is installed. Resolve once per run/record loop and
/// reuse; the handle stays bound to the profiler that was installed
/// when it was resolved.
pub fn current() -> Prof {
    Prof::from_shared(PROFILER.with(|p| p.borrow().clone()))
}

/// Open a span against this thread's current profiler. Convenience for
/// cold call sites; hot paths should resolve [`current`] once instead
/// (this form pays a thread-local lookup per call).
pub fn span(name: &'static str) -> SpanGuard {
    current().into_span(name)
}

/// Fold a finished [`Report`] from another thread into this thread's
/// profiler (no-op when none is installed). The sharded coordinator
/// uses this to merge worker-thread span trees into the profiled run's
/// report, so `--profile` attribution covers shard workers too.
pub fn absorb(report: &Report) {
    PROFILER.with(|p| {
        if let Some(rc) = p.borrow().as_ref() {
            rc.borrow_mut().absorb_report(report);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_is_inert() {
        assert!(!enabled());
        assert!(take().is_none());
        let prof = current();
        assert!(!prof.enabled());
        {
            let _g = prof.span("never.recorded");
            let _h = span("also.never");
        }
        assert!(take().is_none());
    }

    #[test]
    fn install_take_roundtrip() {
        install();
        assert!(enabled());
        {
            let _g = span("root");
        }
        let report = take().expect("installed");
        assert!(!enabled());
        assert_eq!(report.tree.roots().len(), 1);
        let root = report.tree.node(report.tree.roots()[0]);
        assert_eq!(root.name, "root");
        assert_eq!(root.count, 1);
    }

    #[test]
    fn absorb_is_inert_when_disabled_and_merges_when_installed() {
        // Build a "worker" report on this thread, then absorb it.
        install();
        {
            let _g = span("superstep");
        }
        let worker = take().expect("installed");

        absorb(&worker); // disabled: must not panic or install anything
        assert!(!enabled());

        install();
        {
            let _g = span("merge");
        }
        absorb(&worker);
        let report = take().expect("installed");
        let names: Vec<&str> = report
            .tree
            .roots()
            .iter()
            .map(|&i| report.tree.node(i).name)
            .collect();
        assert_eq!(names, vec!["merge", "superstep"]);
    }

    #[test]
    fn take_force_closes_live_guards() {
        install();
        let prof = current();
        let guard = prof.span("left.open");
        let report = take().expect("installed");
        let root = report.tree.node(report.tree.roots()[0]);
        assert_eq!(root.count, 1, "open span closed by take()");
        drop(guard); // must be a no-op, not a panic or double-count
    }
}
