//! E12 — ablation over the two LAMS-DLC design knobs: checkpoint interval
//! `W_cp` and cumulation depth `C_depth` (ours; the paper fixes them and
//! argues qualitatively).
//!
//! The tradeoff surface: a shorter `W_cp` shrinks holding time/buffers
//! (§3.4) but spends more reverse-channel capacity on checkpoints; a
//! deeper `C_depth` hardens NAK delivery against control loss and bursts
//! but delays failure detection (`C_depth · W_cp`).

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, ScenarioConfig};
use sim_core::Duration;

/// `W_cp` grid, ms.
pub const W_CP_MS: &[u64] = &[1, 5, 20];
/// `C_depth` grid.
pub const C_DEPTH: &[u32] = &[1, 3, 6];

/// Run E12.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 2_000 } else { 10_000 };
    let mut table = Table::new(
        "C_depth × W_cp ablation (residual BER 1e-5 / control 1e-4: hostile)",
        &[
            "w_cp_ms",
            "c_depth",
            "efficiency",
            "holding_ms",
            "lost",
            "lams.sender.request_naks",
            "failure_detect_bound_ms",
        ],
    );
    let grid: Vec<(u64, u32)> = W_CP_MS
        .iter()
        .flat_map(|&ms| C_DEPTH.iter().map(move |&depth| (ms, depth)))
        .collect();
    let runs = parallel::map(grid.clone(), |(ms, depth)| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.w_cp = Duration::from_millis(ms);
        cfg.c_depth = depth;
        // Hostile control channel: the knob under test is NAK
        // redundancy, so make NAK loss non-negligible.
        cfg.data_residual_ber = 1e-5;
        cfg.ctrl_residual_ber = 1e-4;
        cfg.deadline = Duration::from_secs(600);
        let detect = cfg.lams_config().checkpoint_timeout() + cfg.lams_config().failure_timeout();
        (run_lams(&cfg), detect)
    });
    for ((ms, depth), (r, detect)) in grid.into_iter().zip(runs) {
        table.row(vec![
            ms.into(),
            u64::from(depth).into(),
            r.efficiency().into(),
            (r.holding.mean() * 1e3).into(),
            r.lost.into(),
            r.extra("lams.sender.request_naks").unwrap_or(0.0).into(),
            (detect.as_secs_f64() * 1e3).into(),
        ]);
    }
    ExperimentOutput {
        id: "E12",
        title: "Design-knob ablation: W_cp × C_depth".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec!["expected shape: holding time scales with W_cp; zero loss \
             everywhere (the unsafe-gap hardening covers even C_depth = 1 \
             under heavy control loss); failure-detection latency grows \
             with C_depth · W_cp — the knob's cost"
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_zero_loss_and_tradeoffs() {
        let out = run(true);
        let t = &out.tables[0];
        for row in 0..t.len() {
            assert_eq!(t.value(row, 4).unwrap(), 0.0, "row {row}: lost frames");
        }
        // Holding time grows with W_cp at fixed depth (rows are grouped by
        // w_cp, depth varies fastest).
        let h_small = t.value(1, 3).unwrap(); // w_cp=1ms, depth=3
        let h_large = t.value(7, 3).unwrap(); // w_cp=20ms, depth=3
        assert!(h_large > h_small, "holding: {h_small} !< {h_large}");
        // Failure-detection bound grows with C_depth at fixed w_cp.
        let d1 = t.value(3, 6).unwrap(); // w_cp=5, depth=1
        let d6 = t.value(5, 6).unwrap(); // w_cp=5, depth=6
        assert!(d6 > d1);
    }
}
