//! Numbering-size requirements (§2.3, §3.3).
//!
//! A numbering scheme must uniquely identify every unacknowledged frame.
//! The required number of distinct values is `H_frame / t_f` — the frames
//! that can be outstanding during one holding time:
//!
//! * **LAMS-DLC** substitutes the *bounded* resolving period for
//!   `H_frame` (a frame either resolves inside
//!   `R + I_cp/2 + C_depth·I_cp` or the sender halts), so the numbering
//!   size is finite and small;
//! * **HDLC** pins one number to a frame until its positive ACK arrives —
//!   an unbounded wait under repeated control loss — so no finite
//!   numbering size suffices for continuous operation in the worst case;
//!   in practice the window (and thus `M = 2W`) must scale with the link
//!   frame length.

use crate::params::LinkParams;

/// LAMS-DLC required numbering size: resolving period over the frame
/// time (§3.3).
pub fn lams_numbering_size(p: &LinkParams) -> f64 {
    let resolving = p.r + 0.5 * p.i_cp + p.c_depth as f64 * p.i_cp;
    resolving / p.t_f
}

/// Minimum HDLC numbering size for continuous operation at a given
/// confidence: the window must cover the link frame length, and the
/// modulus must be at least twice the window; moreover each number stays
/// pinned for `s̄_HDLC` round trips on average, growing with the error
/// rate. `quantile` (e.g. 0.999) picks how much of the holding-time tail
/// the numbering must cover.
pub fn hdlc_numbering_size(p: &LinkParams, quantile: f64) -> f64 {
    assert!((0.0..1.0).contains(&quantile));
    let p_r = crate::periods::p_r_hdlc(p);
    // Attempts needed so that P[still unresolved] ≤ 1 − quantile.
    let attempts = if p_r <= 0.0 {
        1.0
    } else {
        ((1.0 - quantile).ln() / p_r.ln()).max(1.0)
    };
    // Each attempt pins the number for about one timeout; numbers in
    // flight during that span all need distinct values, and SR needs 2×.
    let pinned = attempts * p.t_out();
    2.0 * (pinned / p.t_f).max(p.w as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkParams;

    fn params() -> LinkParams {
        LinkParams::paper_default()
    }

    #[test]
    fn lams_size_is_bounded_and_modest() {
        let p = params();
        let n = lams_numbering_size(&p);
        // Resolving period ≈ 26.7ms + 2.5ms + 15ms = 44.2ms over 27.3µs.
        assert!(n > 1000.0 && n < 5000.0, "n={n}");
    }

    #[test]
    fn lams_size_independent_of_error_rate() {
        // The bound is deterministic — unlike HDLC it does not grow with
        // the channel error rate.
        let clean = params().with_residual_ber(1e-9, 1e-9, 8192, 512);
        let noisy = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        assert_eq!(lams_numbering_size(&clean), lams_numbering_size(&noisy));
    }

    #[test]
    fn hdlc_size_grows_with_error_rate() {
        let clean = params().with_residual_ber(1e-8, 1e-9, 8192, 512);
        let noisy = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        let q = 0.999999;
        assert!(
            hdlc_numbering_size(&noisy, q) > hdlc_numbering_size(&clean, q),
            "noisy={} clean={}",
            hdlc_numbering_size(&noisy, q),
            hdlc_numbering_size(&clean, q)
        );
    }

    #[test]
    fn hdlc_size_grows_with_confidence() {
        let p = params().with_residual_ber(1e-5, 1e-6, 8192, 512);
        assert!(hdlc_numbering_size(&p, 0.999999) >= hdlc_numbering_size(&p, 0.9));
    }

    #[test]
    fn hdlc_at_least_double_window() {
        let p = params();
        assert!(hdlc_numbering_size(&p, 0.9) >= 2.0 * p.w as f64);
    }

    #[test]
    fn lams_size_scales_with_link_length() {
        let mut near = params();
        near.r = 13e-3; // 2,000 km
        let mut far = params();
        far.r = 67e-3; // 10,000 km
        assert!(lams_numbering_size(&far) > lams_numbering_size(&near));
    }
}
