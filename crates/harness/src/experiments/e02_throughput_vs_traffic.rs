//! E2 — throughput efficiency vs offered traffic `N` (the §4 high-traffic
//! figure: `η_LAMS` grows with `N`, `η_HDLC` is window-bound).

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use analysis::throughput::{efficiency_hdlc, efficiency_lams};

/// Traffic sweep (frames per batch). All points exceed the HDLC window
/// (1024): below one window the two protocols are within noise of each
/// other (both pay ≈ N·t_f + one response tail) — the LAMS advantage is
/// the *per-window* stall, which needs N ≫ W to show.
pub fn sweep(quick: bool) -> Vec<u64> {
    if quick {
        vec![2_000, 8_000]
    } else {
        vec![2_000, 5_000, 10_000, 20_000, 50_000]
    }
}

/// Run E2.
pub fn run(quick: bool) -> ExperimentOutput {
    let mut table = Table::new(
        "throughput efficiency vs offered traffic N (batch, saturation)",
        &[
            "N",
            "eta_lams_analytic",
            "eta_hdlc_analytic",
            "eta_lams_sim",
            "eta_hdlc_sim",
            "ratio_sim",
        ],
    );
    let runs = parallel::map(sweep(quick), |n| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        (n, cfg.link_params(), run_lams(&cfg), run_sr(&cfg))
    });
    for (n, p, lams, sr) in runs {
        let ratio = lams.efficiency() / sr.efficiency().max(1e-12);
        table.row(vec![
            n.into(),
            efficiency_lams(&p, n).into(),
            efficiency_hdlc(&p, n).into(),
            lams.efficiency().into(),
            sr.efficiency().into(),
            ratio.into(),
        ]);
    }
    ExperimentOutput {
        id: "E2",
        title: "Throughput efficiency vs channel traffic (paper §4, η equations)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: η_LAMS rises toward line rate with N; η_HDLC \
             plateaus at ≈ W·t_f / D_low(W); ratio ≈ 2 at W ≈ one BDP"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_lams_dominates_and_grows() {
        let out = run(true);
        let t = &out.tables[0];
        assert!(t.len() >= 2);
        let mut last_lams = 0.0;
        for row in 0..t.len() {
            let lams_sim = t.value(row, 3).unwrap();
            let hdlc_sim = t.value(row, 4).unwrap();
            assert!(lams_sim > hdlc_sim, "row {row}: {lams_sim} !> {hdlc_sim}");
            assert!(lams_sim >= last_lams - 0.03, "η_LAMS should not collapse");
            last_lams = lams_sim;
        }
        // Analytic and simulated LAMS efficiency converge as N grows (the
        // paper's (s̄−1) tail term under-counts the retransmission round
        // at small N, so allow more slack there).
        for row in 0..t.len() {
            let a = t.value(row, 1).unwrap();
            let s = t.value(row, 3).unwrap();
            let tol = if row + 1 == t.len() { 0.15 } else { 0.35 };
            assert!((a - s).abs() / a < tol, "row {row}: analytic {a} sim {s}");
        }
    }
}
