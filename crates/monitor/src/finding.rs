//! Structured audit findings: what broke, where, and when.

use sim_core::Instant;
use std::fmt;
use telemetry::Json;

/// The LAMS-DLC runtime invariants the auditor checks (paper §3), plus
/// a catch-all for records that are structurally impossible for a
/// well-formed trace (the fault-injection tests exercise it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// (a) No-loss delivery: every buffered frame is either delivered
    /// clean before release or still resolving when the run ends.
    NoLoss,
    /// (b) Renumbering: wire sequence numbers are strictly monotone;
    /// every retransmission carries a fresh number.
    MonotoneSeq,
    /// (c) Checkpoint cadence: the receiver emits every `W_cp`; the
    /// sender hears one within `C_depth·W_cp` (+slack) or enters
    /// enforced recovery.
    CheckpointCadence,
    /// (d) Buffer release only on implicit positive acknowledgement
    /// (a checkpoint covering the frame, at the checkpoint instant).
    ReleaseOnAck,
    /// (e) Bounded numbering: every frame resolves (release or
    /// renumber) within its resolving period.
    NumberingBound,
    /// The event stream itself is inconsistent (release of an unknown
    /// frame, non-monotone checkpoint indices, ...).
    StreamIntegrity,
    /// An observed NAK resolution cycle (receiver error record →
    /// sender retransmission decision, Stop-Go and enforced-recovery
    /// overlap excluded) exceeded the analytic resolving period
    /// `R + W_cp/2 + C_depth·W_cp`.
    ResolutionBound,
    /// A delivered SDU's latency-attribution phases failed to sum to
    /// its measured delivery latency (internal audit of the
    /// attribution layer itself).
    AttributionSum,
}

impl Invariant {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::NoLoss => "no_loss",
            Invariant::MonotoneSeq => "monotone_seq",
            Invariant::CheckpointCadence => "checkpoint_cadence",
            Invariant::ReleaseOnAck => "release_on_ack",
            Invariant::NumberingBound => "numbering_bound",
            Invariant::StreamIntegrity => "stream_integrity",
            Invariant::ResolutionBound => "resolution_bound",
            Invariant::AttributionSum => "attribution_sum",
        }
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Simulated time of the offending event.
    pub t: Instant,
    /// Node (trace label) the offending event belongs to.
    pub node: &'static str,
    /// Experiment the run belonged to (`""` outside the runner).
    pub experiment: &'static str,
    /// Which invariant was violated.
    pub invariant: Invariant,
    /// The offending event window `[from, to]` in simulated time
    /// (for instantaneous violations both ends equal `t`).
    pub window: (Instant, Instant),
    /// Human-readable description with the relevant numbers.
    pub detail: String,
}

impl AuditFinding {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("t", Json::Num(self.t.as_secs_f64())),
            ("node", self.node.into()),
            ("experiment", self.experiment.into()),
            ("invariant", self.invariant.name().into()),
            ("from", Json::Num(self.window.0.as_secs_f64())),
            ("to", Json::Num(self.window.1.as_secs_f64())),
            ("detail", self.detail.as_str().into()),
        ])
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}s {}{}{}] {}: {}",
            self.t.as_secs_f64(),
            self.node,
            if self.experiment.is_empty() { "" } else { " " },
            self.experiment,
            self.invariant.name(),
            self.detail
        )
    }
}

/// Bounded findings accumulator: keeps the first `cap` findings in
/// arrival order, counts the rest so a pathological run can't eat
/// unbounded memory while still failing loudly.
#[derive(Debug, Default)]
pub struct Findings {
    list: Vec<AuditFinding>,
    cap: usize,
    total: u64,
}

impl Findings {
    /// A collector keeping at most `cap` findings.
    pub fn with_cap(cap: usize) -> Self {
        Findings {
            list: Vec::new(),
            cap,
            total: 0,
        }
    }

    /// Record one finding (kept while under the cap).
    pub fn push(&mut self, f: AuditFinding) {
        self.total += 1;
        if self.list.len() < self.cap {
            self.list.push(f);
        }
    }

    /// Findings detected, including ones beyond the cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Findings dropped once the cap was reached.
    pub fn suppressed(&self) -> u64 {
        self.total - self.list.len() as u64
    }

    /// The kept findings in arrival order.
    pub fn list(&self) -> &[AuditFinding] {
        &self.list
    }

    /// Drain into the kept findings, resetting the collector.
    pub fn take(&mut self) -> Vec<AuditFinding> {
        self.total = 0;
        std::mem::take(&mut self.list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(n: u64) -> AuditFinding {
        AuditFinding {
            t: Instant::from_nanos(n),
            node: "tx",
            experiment: "e1",
            invariant: Invariant::NoLoss,
            window: (Instant::from_nanos(n), Instant::from_nanos(n)),
            detail: format!("f{n}"),
        }
    }

    #[test]
    fn cap_bounds_kept_findings() {
        let mut fs = Findings::with_cap(2);
        for i in 0..5 {
            fs.push(finding(i));
        }
        assert_eq!(fs.total(), 5);
        assert_eq!(fs.list().len(), 2);
        assert_eq!(fs.suppressed(), 3);
        assert_eq!(fs.list()[0].detail, "f0");
    }

    #[test]
    fn json_and_display_carry_the_window() {
        let f = finding(3);
        let j = f.to_json();
        assert_eq!(j.get("invariant").and_then(Json::as_str), Some("no_loss"));
        assert!(j.get("from").and_then(Json::as_f64).is_some());
        let s = f.to_string();
        assert!(s.contains("no_loss") && s.contains("f3"), "{s}");
    }
}
