//! HDLC frame types used by the baselines.
//!
//! The experiments run data in one direction, so acknowledgement traffic
//! is carried by supervisory frames rather than piggybacked `N(R)` fields
//! (which also keeps the comparison with LAMS-DLC — whose assumption 4
//! forbids piggybacking — apples-to-apples).

use bytes::Bytes;

/// An HDLC frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HdlcFrame {
    /// Information frame. `ns` is the logical send sequence number —
    /// unlike LAMS-DLC, the *same* number is reused for every
    /// retransmission of the same I-frame (the in-sequence constraint
    /// requires it, §2.3).
    Info {
        /// Send sequence number `N(S)`.
        ns: u64,
        /// End-to-end datagram id (opaque payload identity for metrics).
        packet_id: u64,
        /// Poll bit: demands an immediate supervisory response.
        poll: bool,
        /// User payload.
        payload: Bytes,
    },
    /// Receive Ready: cumulative acknowledgement of everything below
    /// `nr`; grants further window credit.
    Rr {
        /// Receive sequence number `N(R)` — next expected.
        nr: u64,
        /// Final bit (set when answering a poll).
        fin: bool,
    },
    /// Selective Reject: retransmit exactly frame `nr` (SR mode).
    Srej {
        /// The rejected sequence number.
        nr: u64,
    },
    /// Reject: retransmit from `nr` onward (GBN mode).
    Rej {
        /// First sequence number to resend.
        nr: u64,
    },
}

impl HdlcFrame {
    /// Short label for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            HdlcFrame::Info { .. } => "I",
            HdlcFrame::Rr { .. } => "RR",
            HdlcFrame::Srej { .. } => "SREJ",
            HdlcFrame::Rej { .. } => "REJ",
        }
    }

    /// Is this an information frame?
    pub fn is_info(&self) -> bool {
        matches!(self, HdlcFrame::Info { .. })
    }
}

/// Reception status from the channel (same convention as LAMS-DLC:
/// headers survive, payload corruption is flagged; fully destroyed frames
/// simply never arrive and are found by timeout or SREJ). Re-exported
/// from `proto-core`, where every host finds it.
pub use proto_core::RxStatus;

impl proto_core::WireFrame for HdlcFrame {
    fn wire_len(&self) -> usize {
        crate::wire::encoded_len(self)
    }

    fn is_info(&self) -> bool {
        HdlcFrame::is_info(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        let i = HdlcFrame::Info {
            ns: 0,
            packet_id: 0,
            poll: false,
            payload: Bytes::new(),
        };
        assert_eq!(i.kind(), "I");
        assert!(i.is_info());
        assert_eq!(HdlcFrame::Rr { nr: 0, fin: false }.kind(), "RR");
        assert_eq!(HdlcFrame::Srej { nr: 0 }.kind(), "SREJ");
        assert_eq!(HdlcFrame::Rej { nr: 0 }.kind(), "REJ");
    }
}
