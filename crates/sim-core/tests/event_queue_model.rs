//! Model-based property test for [`sim_core::EventQueue`].
//!
//! The queue's slab/bitmap internals are checked against the dumbest
//! possible reference: a flat `Vec` of `(at, insertion_seq, value)`
//! entries where pop scans for the minimum `(at, seq)` pair. Random
//! interleavings of schedule / pop / cancel / reschedule / peek must
//! keep both structures in lock-step — lengths, pop order (including
//! FIFO tie-breaks among simultaneous events), peeked timestamps, and
//! the final drain order.

use proptest::prelude::*;
use sim_core::{Duration, EventId, EventQueue, Instant};

/// One pending event in the reference model. `seq` mirrors the queue's
/// insertion order: it advances on every schedule *and* reschedule (a
/// rescheduled event re-enters the queue at the back of its instant).
struct ModelEntry {
    at: Instant,
    seq: u64,
    value: u64,
    id: EventId,
}

struct Model {
    entries: Vec<ModelEntry>,
    next_seq: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    fn insert(&mut self, at: Instant, value: u64, id: EventId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(ModelEntry { at, seq, value, id });
    }

    /// Index of the entry a correct queue must pop next: minimum `at`,
    /// ties broken by insertion order.
    fn next_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.at, e.seq))
            .map(|(i, _)| i)
    }

    fn min_at(&self) -> Option<Instant> {
        self.entries.iter().map(|e| e.at).min()
    }
}

/// Apply one scripted operation to both structures and cross-check.
fn step(
    q: &mut EventQueue<u64>,
    model: &mut Model,
    next_value: &mut u64,
    (op, dt, pick): (u8, u8, u16),
) {
    let now = q.now();
    match op % 8 {
        // Schedule at now + dt. dt is intentionally tiny (0..=255 ns)
        // so simultaneous events — the FIFO tie-break case — are common.
        0..=2 => {
            let at = now + Duration::from_nanos(dt as u64);
            let value = *next_value;
            *next_value += 1;
            let id = q.schedule(at, value);
            model.insert(at, value, id);
        }
        // Pop: both sides must agree on (time, payload) or emptiness.
        3..=4 => match model.next_index() {
            Some(i) => {
                let e = model.entries.remove(i);
                prop_assert_eq!(q.pop(), Some((e.at, e.value)));
            }
            None => {
                prop_assert_eq!(q.pop(), None);
                prop_assert!(q.is_empty());
            }
        },
        // Cancel a random pending event; a second cancel is a no-op.
        // The earliest live instant must track the removal immediately
        // (the cancelled entry may have been the minimum).
        5 => {
            if !model.entries.is_empty() {
                let e = model.entries.remove(pick as usize % model.entries.len());
                prop_assert!(q.cancel(e.id));
                prop_assert!(!q.cancel(e.id));
                prop_assert_eq!(q.next_instant(), model.min_at());
            }
        }
        // Reschedule a random pending event to now + dt: it keeps its
        // payload but re-enters the queue at the back of its instant.
        6 => {
            if !model.entries.is_empty() {
                let i = pick as usize % model.entries.len();
                let at = now + Duration::from_nanos(dt as u64);
                let old_id = model.entries[i].id;
                let new_id = q.reschedule(old_id, at);
                prop_assert!(new_id.is_some(), "pending event must reschedule");
                let e = &mut model.entries[i];
                e.at = at;
                e.seq = model.next_seq;
                e.id = new_id.unwrap();
                model.next_seq += 1;
                // The superseded id is dead.
                prop_assert!(!q.cancel(old_id));
                // The old instant's heap entry is dead; the earliest
                // live instant must reflect only the new one.
                prop_assert_eq!(q.next_instant(), model.min_at());
            }
        }
        // Peek must see the model's minimum timestamp, through both the
        // legacy name and `next_instant` (the horizon probe).
        _ => {
            prop_assert_eq!(q.peek_time(), model.min_at());
            prop_assert_eq!(q.next_instant(), model.min_at());
        }
    }
    prop_assert_eq!(q.len(), model.entries.len());
    prop_assert_eq!(q.is_empty(), model.entries.is_empty());
}

fn run_script(ops: Vec<(u8, u8, u16)>) {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Model::new();
    let mut next_value = 0u64;
    for op in ops {
        step(&mut q, &mut model, &mut next_value, op);
    }
    // Drain both completely: the remaining pop order is the model's
    // (at, seq) order, FIFO among ties.
    while let Some(i) = model.next_index() {
        let e = model.entries.remove(i);
        assert_eq!(q.pop(), Some((e.at, e.value)));
    }
    assert_eq!(q.pop(), None);
    assert!(q.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn queue_matches_reference_model(
        ops in proptest::collection::vec(
            (proptest::num::u8::ANY, proptest::num::u8::ANY, proptest::num::u16::ANY),
            0..200,
        ),
    ) {
        run_script(ops);
    }

    #[test]
    fn queue_matches_reference_model_under_heavy_ties(
        // dt restricted to {0, 1}: almost everything lands on the same
        // couple of instants, hammering the FIFO tie-break path.
        ops in proptest::collection::vec(
            (proptest::num::u8::ANY, 0u8..2, proptest::num::u16::ANY),
            0..200,
        ),
    ) {
        run_script(ops);
    }
}
