#!/usr/bin/env python3
"""Validate `repro --json` output and its worker-count determinism.

Usage:
    check_repro.py report.json [report_parallel.json]

With one argument: validate the `lams-dlc.repro/1` schema (top-level
fields, per-experiment structure, perf blocks).

With two arguments: additionally require the two documents to be
identical once every `perf` block (the only wall-clock-bearing field)
is nulled out — the parallel runner must be a pure speed knob.
"""

import json
import sys

EXPECTED_IDS = [f"E{i}" for i in range(1, 18)]


def fail(msg):
    print(f"check_repro: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate(doc, path):
    if doc.get("schema") != "lams-dlc.repro/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'lams-dlc.repro/1'")
    if not isinstance(doc.get("quick"), bool):
        fail(f"{path}: 'quick' must be a bool")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail(f"{path}: 'experiments' must be a non-empty array")
    ids = []
    for e in exps:
        for key in ("id", "title", "tables", "notes"):
            if key not in e:
                fail(f"{path}: experiment missing '{key}': {e.get('id', '?')}")
        ids.append(e["id"])
        perf = e.get("perf")
        if perf is None:
            continue  # an experiment with no simulations (analysis-only)
        for key in ("scheduled", "popped", "peak_depth", "wall_secs",
                    "events_per_sec", "runs"):
            if key not in perf:
                fail(f"{path}: {e['id']} perf block missing '{key}'")
        if perf["popped"] <= 0:
            fail(f"{path}: {e['id']} perf block popped no events")
    if ids != EXPECTED_IDS:
        fail(f"{path}: experiment ids {ids} != {EXPECTED_IDS}")
    return doc


def strip_perf(node):
    if isinstance(node, dict):
        return {k: (None if k == "perf" else strip_perf(v))
                for k, v in node.items()}
    if isinstance(node, list):
        return [strip_perf(v) for v in node]
    return node


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    a = validate(load(sys.argv[1]), sys.argv[1])
    if len(sys.argv) == 3:
        b = validate(load(sys.argv[2]), sys.argv[2])
        if strip_perf(a) != strip_perf(b):
            fail("reports differ beyond perf blocks: the parallel runner "
                 "changed simulation results")
        print("check_repro: OK (schema valid, worker counts agree)")
    else:
        print("check_repro: OK (schema valid)")


if __name__ == "__main__":
    main()
