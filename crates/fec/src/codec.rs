//! The composed link codec and its analytic residual-error model.
//!
//! Per paper assumption 4, the link uses **two FEC grades**: one for
//! I-frames and a stronger one for control frames (whose cumulative NAK
//! content makes their loss costlier). [`LinkCodec`] composes the
//! convolutional code with block interleaving into an encode/decode
//! pipeline for the bit-exact simulation path; [`FecGrade`] captures the
//! analytic view — how the raw channel BER maps to the *residual* BER the
//! ARQ layer sees — used by the fast simulation path and the closed-form
//! analysis.

use crate::bits::BitBuf;
use crate::conv::{ConvCode, CCSDS_K7};
use crate::interleave::BlockInterleaver;
use crate::viterbi::Viterbi;

/// Analytic model of a coding grade: residual BER after decoding as a
/// function of raw channel BER.
///
/// For a rate-1/2 convolutional code with free distance `d_free`, the
/// post-decoding error probability at low BER scales as
/// `C · p^{ceil(d_free/2)}`; we use the leading term with the first
/// distance-spectrum coefficient. This reproduces the regime the paper
/// assumes: raw laser-link BER of 1e-3–1e-5 mapping to residual 1e-5–1e-7
/// for I-frames and lower still for control frames.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FecGrade {
    /// Effective error-floor exponent: residual ≈ `coeff · raw^order`.
    pub order: f64,
    /// Leading coefficient.
    pub coeff: f64,
    /// Code rate (information bits per channel bit) — expansion factor for
    /// transmission-time accounting.
    pub rate: f64,
    /// Residual floor: implementation losses prevent the residual BER from
    /// dropping below this (Paul et al. report a 1e-7 floor).
    pub floor: f64,
}

impl FecGrade {
    /// The I-frame grade: rate-1/2 K=7 code, residual floor 1e-7.
    pub const IFRAME: FecGrade = FecGrade {
        order: 3.0,
        coeff: 2.0e3,
        rate: 0.5,
        floor: 1.0e-7,
    };

    /// The control-frame grade: stronger (lower-rate, deeper) coding, one
    /// extra order of error suppression and a 1e-9 floor.
    pub const CFRAME: FecGrade = FecGrade {
        order: 4.0,
        coeff: 2.0e4,
        rate: 0.25,
        floor: 1.0e-9,
    };

    /// Residual BER seen by the ARQ layer for a raw channel BER.
    pub fn residual_ber(&self, raw_ber: f64) -> f64 {
        if raw_ber <= 0.0 {
            return 0.0;
        }
        let r = self.coeff * raw_ber.powf(self.order);
        r.clamp(self.floor.min(raw_ber), raw_ber)
    }

    /// Probability that a frame of `info_bits` information bits is
    /// residually erroneous: `1 - (1 - residual)^bits`.
    pub fn frame_error_prob(&self, raw_ber: f64, info_bits: u64) -> f64 {
        let ber = self.residual_ber(raw_ber);
        if ber <= 0.0 || info_bits == 0 {
            0.0
        } else {
            1.0 - f64::exp(info_bits as f64 * f64::ln_1p(-ber))
        }
    }

    /// Channel bits occupied by `info_bits` information bits under this
    /// grade's code rate.
    pub fn channel_bits(&self, info_bits: u64) -> u64 {
        (info_bits as f64 / self.rate).ceil() as u64
    }
}

/// The bit-exact encode/decode pipeline: convolutional code + interleaver.
pub struct LinkCodec {
    code: ConvCode,
    viterbi: Viterbi,
    interleaver: BlockInterleaver,
}

/// Outcome of decoding a received block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Decoded cleanly back to the transmitted information bits (the caller
    /// confirms via CRC; the codec itself cannot know).
    Bits(BitBuf),
    /// The received block was structurally invalid (wrong length).
    Malformed,
}

impl LinkCodec {
    /// Compose `code` with a `rows × cols` interleaver.
    pub fn new(code: ConvCode, rows: usize, cols: usize) -> Self {
        LinkCodec {
            code,
            viterbi: Viterbi::new(code),
            interleaver: BlockInterleaver::new(rows, cols),
        }
    }

    /// The default I-frame codec: K=7 code with a 32×16 interleaver
    /// (bursts up to 32 channel bits become isolated errors).
    pub fn iframe_default() -> Self {
        Self::new(CCSDS_K7, 32, 16)
    }

    /// Coded length (channel bits) for `info_bits` information bits:
    /// convolutional expansion plus interleaver padding.
    pub fn coded_len(&self, info_bits: usize) -> usize {
        let conv = 2 * (info_bits + (self.code.constraint - 1) as usize);
        let block = self.interleaver.block_len();
        conv.div_ceil(block) * block
    }

    /// Encode information bits into channel bits.
    pub fn encode(&self, info: &BitBuf) -> BitBuf {
        self.interleaver.interleave(&self.code.encode(info))
    }

    /// Decode channel bits; `info_bits` is the expected information length
    /// (known from the frame header / fixed framing).
    pub fn decode(&self, received: &BitBuf, info_bits: usize) -> DecodeOutcome {
        if received.len() != self.coded_len(info_bits) {
            return DecodeOutcome::Malformed;
        }
        let deinter = self.interleaver.deinterleave(received);
        let conv_len = 2 * (info_bits + (self.code.constraint - 1) as usize);
        let trimmed: BitBuf = deinter.iter().take(conv_len).collect();
        match self.viterbi.decode(&trimmed) {
            Some(bits) => DecodeOutcome::Bits(bits),
            None => DecodeOutcome::Malformed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_monotone_in_raw() {
        let g = FecGrade::IFRAME;
        let mut last = 0.0;
        for exp in (-80..-20).map(|e| e as f64 / 10.0) {
            let raw = 10f64.powf(exp);
            let r = g.residual_ber(raw);
            assert!(r >= last, "residual not monotone at raw={raw}");
            assert!(r <= raw, "coding made things worse at raw={raw}");
            last = r;
        }
    }

    #[test]
    fn paper_regime_mapping() {
        // Raw laser BER ~1e-3.3 should land in the paper's residual window
        // 1e-5..1e-7 for I-frames.
        let g = FecGrade::IFRAME;
        let r = g.residual_ber(5e-4);
        assert!((1e-8..1e-4).contains(&r), "residual {r}");
        // The floor binds at very low raw BER.
        assert_eq!(g.residual_ber(1e-9), f64::min(1e-9, g.floor));
    }

    #[test]
    fn cframe_stronger_than_iframe() {
        for exp in [-3.0, -3.5, -4.0, -5.0] {
            let raw = 10f64.powf(exp);
            assert!(
                FecGrade::CFRAME.residual_ber(raw) <= FecGrade::IFRAME.residual_ber(raw),
                "CFRAME weaker at raw={raw}"
            );
        }
    }

    #[test]
    fn frame_error_prob_sane() {
        let g = FecGrade::IFRAME;
        assert_eq!(g.frame_error_prob(0.0, 8000), 0.0);
        assert_eq!(g.frame_error_prob(1e-3, 0), 0.0);
        let p = g.frame_error_prob(1e-3, 8000);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn channel_bits_expansion() {
        assert_eq!(FecGrade::IFRAME.channel_bits(1000), 2000);
        assert_eq!(FecGrade::CFRAME.channel_bits(1000), 4000);
    }

    #[test]
    fn codec_roundtrip_clean() {
        let codec = LinkCodec::iframe_default();
        let info = BitBuf::from_bytes(&[0xCA, 0xFE, 0xBA, 0xBE, 0x01, 0x02]);
        let coded = codec.encode(&info);
        assert_eq!(coded.len(), codec.coded_len(info.len()));
        match codec.decode(&coded, info.len()) {
            DecodeOutcome::Bits(b) => assert_eq!(b, info),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn codec_corrects_channel_burst() {
        let codec = LinkCodec::iframe_default();
        let info = BitBuf::from_bytes(&[0x55; 32]);
        let mut coded = codec.encode(&info);
        // 30-bit contiguous burst: within the interleaver's protection.
        for i in 200..230 {
            coded.toggle(i);
        }
        match codec.decode(&coded, info.len()) {
            DecodeOutcome::Bits(b) => assert_eq!(b, info),
            other => panic!("burst not corrected: {other:?}"),
        }
    }

    #[test]
    fn codec_rejects_wrong_length() {
        let codec = LinkCodec::iframe_default();
        let junk = BitBuf::from_bits(&[true; 33]);
        assert_eq!(codec.decode(&junk, 100), DecodeOutcome::Malformed);
    }
}
