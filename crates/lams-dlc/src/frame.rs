//! LAMS-DLC frame types (§3.1).
//!
//! Two frame classes, as in HDLC: **I-frames** carrying user data with a
//! send sequence number `N(S)`, and **C-frames** (control). Unlike HDLC,
//! acknowledgement information is *never* piggybacked on I-frames
//! (assumption 4: control frames use a stronger FEC grade, which rules out
//! mixing them with data). Three control commands exist:
//!
//! * **Check-Point-NAK** — the periodic checkpoint command, carrying the
//!   cumulative NAK list and the Stop-Go flow-control bit;
//! * **Enforced-NAK / Resolving Command** — a checkpoint with the
//!   Enforced bit set, sent in immediate response to a Request-NAK
//!   (it is called a Resolving Command when its NAK list is empty);
//! * **Request-NAK** — sent by the *sender* to probe a suspected link
//!   failure.

use bytes::Bytes;

/// End-to-end datagram identity, assigned by the network layer at the
/// source. Survives link-level renumbering; the destination resequencer
/// orders and deduplicates on it (§2.3: relaxing in-sequence moves
/// ordering responsibility to the destination node).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Flow-control indication carried by every checkpoint (§3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopGo {
    /// Receiver anticipates no overflow: sender may increase its rate.
    Go,
    /// Receiver anticipates receive-buffer overflow: sender must decrease
    /// its rate.
    Stop,
}

/// An information frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfoFrame {
    /// Logical send sequence number `N(S)`. Monotonically increasing across
    /// first transmissions *and* retransmissions (retransmitted I-frames
    /// receive a fresh number, §3.2); reduced modulo the configured
    /// numbering size on the wire.
    pub seq: u64,
    /// End-to-end datagram id carried opaquely for the destination.
    pub packet_id: PacketId,
    /// User payload.
    pub payload: Bytes,
}

/// A control frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlFrame {
    /// The periodic checkpoint (Check-Point-NAK), or — with `enforced`
    /// set — the Enforced-NAK / Resolving Command.
    CheckPoint(CheckPoint),
    /// Sender-to-receiver probe demanding an immediate Enforced-NAK.
    RequestNak {
        /// Identifies the probe so the matching Enforced-NAK can be
        /// correlated.
        probe: u64,
    },
}

/// Body of a checkpoint command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckPoint {
    /// Monotone checkpoint counter (lets the sender ignore stale or
    /// reordered checkpoints and measure checkpoint loss).
    pub index: u64,
    /// Highest logical sequence number the receiver has accounted for
    /// (arrived — readable or not — or inferred from a gap). Everything at
    /// or below this that is not in `naks` has been received error-free:
    /// the checkpoint's implicit positive acknowledgement that releases
    /// sender buffer space (§3.2).
    pub covered: u64,
    /// Sequence numbers reported erroneous within the last `C_depth`
    /// checkpoint intervals (cumulative NAK, §3.2). Sorted ascending.
    pub naks: Vec<u64>,
    /// The Enforced bit: set when this checkpoint answers a Request-NAK.
    pub enforced: bool,
    /// When answering a Request-NAK, echoes the probe id; `None` on
    /// ordinary periodic checkpoints.
    pub probe: Option<u64>,
    /// Flow control indication.
    pub stop_go: StopGo,
}

/// Any LAMS-DLC frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Information frame.
    Info(InfoFrame),
    /// Control frame.
    Control(ControlFrame),
}

/// Reception status attached by the physical layer / FEC decoder.
///
/// The type now lives in `proto-core` (every host speaks it); the
/// re-export keeps the historical `lams_dlc::RxStatus` path. Headers
/// carry their own (stronger) protection, so a frame can be
/// *payload-corrupted but identifiable* — the case the paper's NAK
/// scheme depends on. A frame whose header is also destroyed is
/// indistinguishable from silence and is detected by the sequence gap it
/// leaves (assumption 9: losses are detectable errors).
pub use proto_core::RxStatus;

impl Frame {
    /// Convenience: the frame's kind as a short static label (metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Info(_) => "I",
            Frame::Control(ControlFrame::CheckPoint(cp)) if cp.enforced => "ENAK",
            Frame::Control(ControlFrame::CheckPoint(_)) => "CP",
            Frame::Control(ControlFrame::RequestNak { .. }) => "REQNAK",
        }
    }

    /// Is this an information frame?
    pub fn is_info(&self) -> bool {
        matches!(self, Frame::Info(_))
    }
}

impl CheckPoint {
    /// A checkpoint with an empty NAK list functions purely as a positive
    /// acknowledgement / resynchronization point; when also `enforced`,
    /// the paper calls it a **Resolving Command**.
    pub fn is_resolving_command(&self) -> bool {
        self.enforced && self.naks.is_empty()
    }
}

impl proto_core::WireFrame for Frame {
    fn wire_len(&self) -> usize {
        crate::wire::encoded_len(self)
    }

    fn is_info(&self) -> bool {
        Frame::is_info(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(enforced: bool, naks: Vec<u64>) -> CheckPoint {
        CheckPoint {
            index: 1,
            covered: 10,
            naks,
            enforced,
            probe: None,
            stop_go: StopGo::Go,
        }
    }

    #[test]
    fn kind_labels() {
        let i = Frame::Info(InfoFrame {
            seq: 0,
            packet_id: PacketId(0),
            payload: Bytes::new(),
        });
        assert_eq!(i.kind(), "I");
        assert!(i.is_info());
        assert_eq!(
            Frame::Control(ControlFrame::CheckPoint(cp(false, vec![]))).kind(),
            "CP"
        );
        assert_eq!(
            Frame::Control(ControlFrame::CheckPoint(cp(true, vec![]))).kind(),
            "ENAK"
        );
        assert_eq!(
            Frame::Control(ControlFrame::RequestNak { probe: 3 }).kind(),
            "REQNAK"
        );
    }

    #[test]
    fn resolving_command_definition() {
        assert!(cp(true, vec![]).is_resolving_command());
        assert!(!cp(true, vec![5]).is_resolving_command());
        assert!(!cp(false, vec![]).is_resolving_command());
    }
}
