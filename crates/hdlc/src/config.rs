//! HDLC baseline configuration.

use proto_core::Duration;

/// Parameters of the SR-HDLC / GBN-HDLC baselines, mirroring the paper's
/// §4 analysis model.
#[derive(Clone, Debug)]
pub struct HdlcConfig {
    /// Send window `W`. Must satisfy `W ≤ 2^(seq_bits-1)` (the
    /// selective-repeat ½-numbering rule; the paper: `W ≈ M/2`,
    /// `M = 2^l`).
    pub window: usize,
    /// Bits in the wire sequence-number field (`l`; `M = 2^l`).
    pub seq_bits: u32,
    /// Retransmission timeout `t_out = R + α` (§4: α ≥ R_max − R̄ in a
    /// high-mobility network).
    pub t_out: Duration,
    /// I-frame transmission time `t_f`.
    pub t_f: Duration,
    /// Control (supervisory) frame transmission time `t_c`.
    pub t_c: Duration,
    /// Deterministic processing time `t_proc`.
    pub t_proc: Duration,
}

impl HdlcConfig {
    /// A configuration matched to [`LamsConfig::paper_default`]
    /// (same link: R ≈ 26.7 ms, 300 Mbps, 1 kB frames), with
    /// `α = 10 ms` of mobility slack and a window sized to one
    /// bandwidth-delay product.
    ///
    /// [`LamsConfig::paper_default`]: https://docs.rs/lams-dlc
    pub fn paper_default() -> Self {
        HdlcConfig {
            window: 1024,
            seq_bits: 11, // M = 2048, W = M/2
            t_out: Duration::from_micros(26_700 + 10_000),
            t_f: Duration::from_micros(27),
            t_c: Duration::from_micros(10),
            t_proc: Duration::from_micros(10),
        }
    }

    /// Wire sequence modulus `M = 2^l`.
    pub fn modulus(&self) -> u64 {
        1u64 << self.seq_bits
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.seq_bits == 0 || self.seq_bits > 32 {
            return Err(format!("seq_bits out of range: {}", self.seq_bits));
        }
        if (self.window as u64) > self.modulus() / 2 {
            return Err(format!(
                "window {} exceeds half the numbering space {} (SR ambiguity)",
                self.window,
                self.modulus()
            ));
        }
        if self.t_out.is_zero() || self.t_f.is_zero() {
            return Err("t_out and t_f must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        HdlcConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn window_half_rule_enforced() {
        let mut c = HdlcConfig::paper_default();
        c.window = (c.modulus() / 2 + 1) as usize;
        assert!(c.validate().is_err());
        c.window = (c.modulus() / 2) as usize;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn degenerate_rejected() {
        let mut c = HdlcConfig::paper_default();
        c.window = 0;
        assert!(c.validate().is_err());
        let mut c = HdlcConfig::paper_default();
        c.seq_bits = 0;
        assert!(c.validate().is_err());
        let mut c = HdlcConfig::paper_default();
        c.t_out = Duration::ZERO;
        assert!(c.validate().is_err());
    }
}
