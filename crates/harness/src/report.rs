//! Plain-text rendering of experiment output.
//!
//! Experiments produce [`Table`]s (rows of labelled numeric columns) and
//! time-series traces; both print as aligned monospace blocks that diff
//! cleanly and feed any plotting tool.

use sim_core::stats::Series;
use std::fmt::Write as _;
use telemetry::Json;

/// A rectangular table with named columns.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

/// One table cell.
#[derive(Clone, Debug)]
pub enum Cell {
    /// Free text (row label).
    Text(String),
    /// A number rendered with engineering precision.
    Num(f64),
    /// An integer count.
    Int(u64),
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl Cell {
    /// Machine-readable form: text → string, numbers → number.
    pub fn to_json(&self) -> Json {
        match self {
            Cell::Text(s) => Json::from(s.as_str()),
            Cell::Num(v) => Json::from(*v),
            Cell::Int(v) => Json::from(*v),
        }
    }

    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => format!("{v}"),
            Cell::Num(v) => {
                if *v == 0.0 {
                    "0".into()
                } else if v.is_infinite() {
                    "inf".into()
                } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
                    format!("{v:.4e}")
                } else {
                    format!("{v:.4}")
                }
            }
        }
    }
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Title accessor.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Fetch a cell's numeric value (Num or Int) by row/column index.
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        match self.rows.get(row)?.get(col)? {
            Cell::Num(v) => Some(*v),
            Cell::Int(v) => Some(*v as f64),
            Cell::Text(_) => None,
        }
    }

    /// Machine-readable form:
    /// `{"title", "columns": [str], "rows": [[cell, ...], ...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::from(self.title.as_str())),
            (
                "columns",
                Json::from(
                    self.columns
                        .iter()
                        .map(|c| Json::from(c.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "rows",
                Json::from(
                    self.rows
                        .iter()
                        .map(|r| Json::from(r.iter().map(Cell::to_json).collect::<Vec<_>>()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Render to an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// Machine-readable form of a series, decimated to at most `max_points`:
/// `{"name", "points_total", "points": [[t_seconds, value], ...]}`.
pub fn series_json(series: &Series, max_points: usize) -> Json {
    let d = series.decimate(max_points);
    Json::obj([
        ("name", Json::from(d.name())),
        ("points_total", Json::from(series.len() as u64)),
        (
            "points",
            Json::from(
                d.points()
                    .iter()
                    .map(|&(t, v)| Json::from(vec![Json::from(t.as_secs_f64()), Json::from(v)]))
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

/// Render a series as a two-column block under a heading, decimated to a
/// printable number of points.
pub fn render_series(series: &Series, max_points: usize) -> String {
    let d = series.decimate(max_points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## trace: {} ({} of {} points)",
        d.name(),
        d.len(),
        series.len()
    );
    let _ = writeln!(out, "{:>16}  {:>16}", "t_seconds", "value");
    for &(t, v) in d.points() {
        let _ = writeln!(out, "{:>16.9}  {:>16.6}", t.as_secs_f64(), v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Instant;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "x", "n"]);
        t.row(vec!["alpha".into(), 1.5.into(), 10u64.into()]);
        t.row(vec!["b".into(), 0.00001.into(), 2u64.into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("alpha"));
        assert!(s.contains("1.0000e-5"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn value_accessor() {
        let mut t = Table::new("v", &["a", "b"]);
        t.row(vec![2.5.into(), 7u64.into()]);
        assert_eq!(t.value(0, 0), Some(2.5));
        assert_eq!(t.value(0, 1), Some(7.0));
        assert_eq!(t.value(1, 0), None);
        let mut t2 = Table::new("t", &["s"]);
        t2.row(vec!["text".into()]);
        assert_eq!(t2.value(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec![1.0.into()]);
    }

    #[test]
    fn series_rendering() {
        let mut s = Series::new("queue");
        for i in 0..100 {
            s.push(Instant::from_millis(i), i as f64);
        }
        let out = render_series(&s, 10);
        assert!(out.contains("queue"));
        assert_eq!(out.lines().count(), 12);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(Cell::Num(0.0).render(), "0");
        assert_eq!(Cell::Num(f64::INFINITY).render(), "inf");
        assert_eq!(Cell::Num(0.5).render(), "0.5000");
        assert_eq!(Cell::Int(42).render(), "42");
    }
}
