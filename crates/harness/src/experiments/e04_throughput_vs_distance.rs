//! E4 — throughput efficiency vs link distance (paper §2.1: 2,000–10,000
//! km). Longer links stretch the HDLC per-window stall (one RTT) while
//! LAMS amortises it; α also grows with distance (range spread scales
//! with geometry).

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, ScenarioConfig};
use analysis::throughput::{efficiency_hdlc, efficiency_lams};
use sim_core::Duration;

/// Distance sweep, km.
pub const DISTANCES: &[f64] = &[2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0];

/// Run E4.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 3_000 } else { 20_000 };
    let mut table = Table::new(
        "throughput efficiency vs link distance",
        &[
            "distance_km",
            "rtt_ms",
            "eta_lams_analytic",
            "eta_hdlc_analytic",
            "eta_lams_sim",
            "eta_hdlc_sim",
        ],
    );
    let runs = parallel::map(DISTANCES.to_vec(), |d| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.distance_km = d;
        // α scales with distance: the range spread over a pass grows with
        // the geometry (§4: α ≥ R_max − R̄).
        cfg.alpha = Duration::from_secs_f64(2.5e-3 * d / 1000.0);
        let rtt = cfg.rtt();
        (rtt, cfg.link_params(), run_lams(&cfg), run_sr(&cfg))
    });
    for (&d, (rtt, p, lams, sr)) in DISTANCES.iter().zip(runs) {
        table.row(vec![
            d.into(),
            (rtt.as_secs_f64() * 1e3).into(),
            efficiency_lams(&p, n).into(),
            efficiency_hdlc(&p, n).into(),
            lams.efficiency().into(),
            sr.efficiency().into(),
        ]);
    }
    ExperimentOutput {
        id: "E4",
        title: "Throughput efficiency vs link distance (paper §2.1 range)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: η_HDLC falls roughly as W·t_f/(W·t_f + R) as R \
             grows; η_LAMS stays near its BER-limited ceiling"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_hdlc_degrades_with_distance_faster_than_lams() {
        let out = run(true);
        let t = &out.tables[0];
        let first_hdlc = t.value(0, 5).unwrap();
        let last_hdlc = t.value(t.len() - 1, 5).unwrap();
        assert!(last_hdlc < first_hdlc, "HDLC must degrade with distance");
        // LAMS dominates at every distance, and its margin widens: both
        // pay the s̄·R tail (with finite N), but HDLC pays it per window.
        let mut last_ratio = 0.0;
        for row in 0..t.len() {
            let lams = t.value(row, 4).unwrap();
            let hdlc = t.value(row, 5).unwrap();
            assert!(lams > hdlc, "row {row}");
            let ratio = lams / hdlc;
            assert!(
                ratio >= last_ratio * 0.95,
                "ratio must not shrink: row {row}"
            );
            last_ratio = ratio;
        }
        // Simulated LAMS efficiency tracks the analytic value loosely
        // (the paper's tail term under-counts retransmission rounds at
        // finite N; the gap grows with R — see EXPERIMENTS.md).
        for row in 0..t.len() {
            let a = t.value(row, 2).unwrap();
            let s = t.value(row, 4).unwrap();
            assert!((a - s).abs() / a < 0.35, "row {row}: analytic {a} sim {s}");
        }
    }
}
