//! E8 — burst errors (§3.3): cumulative NAKs ride out bursts as long as
//! `C_depth · W_cp > L_burst`; SR-HDLC loses acknowledgement state and
//! pays timeouts, and a naïve failure detector would resynchronise.
//!
//! The channel is Gilbert–Elliott: clean good state, heavily corrupted
//! bad state (mispointing / tracking loss), sweeping the mean burst
//! length across the protection boundary `C_depth · W_cp = 15 ms`.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, run_sr, BurstCfg, ScenarioConfig};
use sim_core::Duration;

/// Mean burst lengths swept, ms. `C_depth·W_cp = 15 ms` at defaults.
pub const BURST_MS: &[u64] = &[2, 10, 30];

/// Run E8. Burst realisations vary a lot run-to-run, so each row
/// averages several seeds.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 1_500 } else { 10_000 };
    let seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let mut table = Table::new(
        "burst errors: goodput and recovery under Gilbert-Elliott bursts (seed-averaged)",
        &[
            "mean_burst_ms",
            "eta_lams",
            "eta_hdlc",
            "lams_enforced_recoveries",
            "lams_duplicates",
            "lams_silent_loss",
            "lams_declared_failures",
            "hdlc_timeouts",
        ],
    );
    let runs = parallel::map(BURST_MS.to_vec(), |ms| {
        let mut eta_l = 0.0;
        let mut eta_h = 0.0;
        let mut reqnaks = 0.0;
        let mut dups = 0u64;
        let mut silent_loss = 0u64;
        let mut failures = 0u64;
        let mut timeouts = 0.0;
        for &seed in seeds {
            let mut cfg = ScenarioConfig::paper_default();
            cfg.seed = seed;
            cfg.n_packets = n;
            cfg.burst = Some(BurstCfg {
                mean_good: Duration::from_millis(100),
                mean_bad: Duration::from_millis(ms),
                // Good state: the paper's nominal residual floor. Bad
                // state: bursts overwhelm the interleaver — nearly all
                // I-frames and most checkpoints inside a burst corrupt
                // (§3.3: "so too will the NAKs triggered by these
                // erroneous I-frames").
                ber_good: 1e-7,
                ber_bad: 2e-4,
                ctrl_ber_good: 1e-8,
                ctrl_ber_bad: 5e-3,
            });
            cfg.deadline = Duration::from_secs(120);
            let lams = run_lams(&cfg);
            let sr = run_sr(&cfg);
            eta_l += lams.efficiency();
            eta_h += sr.efficiency();
            reqnaks += lams.extra("lams.sender.request_naks").unwrap_or(0.0);
            dups += lams.duplicates;
            // Loss is tolerable only when the failure was *declared*: a
            // burst long enough to exhaust the failure timer is an
            // outage, and the network layer was told.
            if !lams.link_failed {
                silent_loss += lams.lost;
            }
            failures += u64::from(lams.link_failed);
            timeouts += sr.extra("hdlc.sr_sender.timeouts").unwrap_or(0.0);
        }
        (eta_l, eta_h, reqnaks, dups, silent_loss, failures, timeouts)
    });
    for (&ms, (eta_l, eta_h, reqnaks, dups, silent_loss, failures, timeouts)) in
        BURST_MS.iter().zip(runs)
    {
        let k = seeds.len() as f64;
        table.row(vec![
            ms.into(),
            (eta_l / k).into(),
            (eta_h / k).into(),
            (reqnaks / k).into(),
            ((dups as f64) / k).into(),
            silent_loss.into(),
            failures.into(),
            (timeouts / k).into(),
        ]);
    }
    ExperimentOutput {
        id: "E8",
        title: "Burst-error resilience: cumulative NAK vs timeout recovery (paper §3.3)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: below C_depth·W_cp = 15 ms of burst, LAMS sees \
             few/no enforced recoveries and keeps its efficiency edge; \
             beyond it, bursts silence entire checkpoint windows — \
             enforced recoveries (and their duplicates) appear, and a \
             burst outliving the failure timer is declared a link failure. \
             Silent loss stays zero in every regime; HDLC accumulates \
             timeout stalls throughout"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_no_silent_loss_and_lams_leads() {
        let out = run(true);
        let t = &out.tables[0];
        for row in 0..t.len() {
            assert_eq!(
                t.value(row, 5).unwrap(),
                0.0,
                "row {row}: LAMS silently lost frames"
            );
            let lams = t.value(row, 1).unwrap();
            let hdlc = t.value(row, 2).unwrap();
            assert!(lams > hdlc, "row {row}: lams {lams} !> hdlc {hdlc}");
        }
        // Short bursts (< C_depth·W_cp) should need at most rare enforced
        // recoveries compared to long ones.
        let short = t.value(0, 3).unwrap();
        let long = t.value(t.len() - 1, 3).unwrap();
        assert!(
            short <= long,
            "enforced recoveries should not decrease with burst length"
        );
        // Duplicates (the zero-loss hardening's price) only appear when
        // bursts are long enough to wipe whole checkpoint windows.
        assert!(t.value(0, 4).unwrap() <= t.value(t.len() - 1, 4).unwrap() + 1.0);
    }
}
