//! Conservative sharded execution: the per-shard half.
//!
//! A [`Partition`] assigns every node of a [`Topology`] to exactly one
//! shard. Links whose endpoints land in different shards become **cut
//! links**: the sending shard keeps the real [`Channel`] (its RNG, FIFO
//! clamp and outage schedule), while the receiving shard registers a
//! channel-less *stub* that only dispatches injected arrivals to its
//! listeners. [`Partition::plan`] validates the assignment and extracts
//! the per-cut-link **lookahead** (the fixed propagation delay) that the
//! coordinator's conservative horizon rule depends on — a cut link with
//! zero or time-varying delay is rejected at partition time.
//!
//! [`ShardSim`] is the per-shard event loop. It mirrors the serial
//! engine's pump semantics (timers → per-link serve/transmit → drains)
//! but processes events in **granted windows**: [`ShardSim::run_window`]
//! consumes every queued event with `at ≤ grant`, accumulating frames
//! that crossed an outbound cut link into a timestamped batch for the
//! coordinator to route.
//!
//! Determinism across shard counts rests on three rules the types here
//! enforce or document:
//!
//! * **Canonical intra-instant order.** Same-instant events are drained
//!   into a scratch buffer and dispatched in a globally defined order —
//!   pushes by `(source ordinal, sdu id)`, then arrivals by `(global
//!   link id, per-link arrival sequence)`, then wakes — so the dispatch
//!   sequence is independent of how events happened to interleave
//!   across shard queues. (The serial engine's insertion-order
//!   tie-break cannot survive sharding: a cross-shard arrival loses its
//!   insertion position when it travels as a batch.)
//! * **Per-link arrival sequences assigned at transmit.** The shard
//!   owning a channel numbers its arrivals; the FIFO clamp can collapse
//!   distinct transmissions onto one arrival instant, and the sequence
//!   keeps their order well-defined wherever they are replayed.
//! * **Global registration order.** Builders must register links in
//!   ascending global-id order (validated) and endpoints in global
//!   order (documented), so each shard's pump order is the global pump
//!   order restricted to the shard.

use crate::collect::Collect;
use crate::endpoint::{RxEndpoint, TxEndpoint};
use crate::link::{Channel, DelayModel, Fate};
use crate::topology::{ColId, EndpointId, LinkId, NodeId, RxId, Topology, TopologyError, TxId};
use crate::traffic::TrafficGen;
use bytes::Bytes;
use sim_core::{Duration, EventId, EventQueue, Instant, QueueProfile};
use telemetry::TraceEvent;

/// Deterministic node → shard assignment.
#[derive(Clone, Debug)]
pub struct Partition {
    assign: Vec<usize>,
    n_shards: usize,
}

impl Partition {
    /// Explicit assignment: `assign[node] = shard`.
    pub fn explicit(assign: Vec<usize>, n_shards: usize) -> Self {
        Partition { assign, n_shards }
    }

    /// Contiguous balanced ranges: nodes split into `n_shards` runs of
    /// near-equal length (the first `n_nodes % n_shards` runs get one
    /// extra node). The natural partition for chain topologies.
    pub fn contiguous(n_nodes: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let base = n_nodes / n_shards;
        let extra = n_nodes % n_shards;
        let mut assign = Vec::with_capacity(n_nodes);
        for s in 0..n_shards {
            let len = base + usize::from(s < extra);
            assign.extend(std::iter::repeat_n(s, len));
        }
        Partition { assign, n_shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Shard owning `node`, if assigned.
    pub fn shard_of(&self, node: NodeId) -> Option<usize> {
        self.assign.get(node.0).copied()
    }

    /// Validate the assignment against `topo` and extract the cut-link
    /// plan. `delays[link]` is each link's propagation model; cut links
    /// must have a fixed, strictly positive delay — that delay is the
    /// conservative lookahead the coordinator grants windows by.
    ///
    /// Rejected with one precise message each: wrong assignment length,
    /// out-of-range shard indices, empty shards, cut links whose delay
    /// is zero or time-varying, and multi-shard partitions with no
    /// cross-shard links at all (no cuts means no lookahead to grant
    /// windows by).
    pub fn plan(&self, topo: &Topology, delays: &[DelayModel]) -> Result<CutPlan, TopologyError> {
        let mut errors = Vec::new();
        let nodes = topo.nodes();
        if self.n_shards == 0 {
            errors.push("partition has zero shards".to_string());
        }
        if self.assign.len() != nodes {
            errors.push(format!(
                "partition assigns {} nodes but the topology has {nodes}",
                self.assign.len()
            ));
        }
        let mut populated = vec![false; self.n_shards];
        for (i, &s) in self.assign.iter().enumerate() {
            match populated.get_mut(s) {
                Some(slot) => *slot = true,
                None => errors.push(format!(
                    "node {i} assigned to shard {s} but there are only {} shards",
                    self.n_shards
                )),
            }
        }
        for (s, present) in populated.iter().enumerate() {
            if !present {
                errors.push(format!("shard {s} has no nodes"));
            }
        }
        if delays.len() != topo.link_count() {
            errors.push(format!(
                "got {} delay models for {} links",
                delays.len(),
                topo.link_count()
            ));
        }
        let mut cuts = Vec::new();
        if errors.is_empty() {
            for (i, l) in topo.links.iter().enumerate() {
                let (from_shard, to_shard) = (self.assign[l.from.0], self.assign[l.to.0]);
                if from_shard == to_shard {
                    continue;
                }
                match &delays[i] {
                    DelayModel::Fixed(d) if *d > Duration::ZERO => cuts.push(CutLink {
                        link: LinkId(i),
                        from_shard,
                        to_shard,
                        delay: *d,
                    }),
                    DelayModel::Fixed(_) => errors.push(format!(
                        "cut link {i} has zero propagation delay; \
                         cross-shard lookahead needs a positive fixed delay"
                    )),
                    DelayModel::Profile { .. } => errors.push(format!(
                        "cut link {i} has a time-varying delay profile; \
                         cross-shard lookahead needs a fixed delay"
                    )),
                }
            }
        }
        if errors.is_empty() && self.n_shards > 1 && cuts.is_empty() {
            // A multi-shard partition with no cross-shard links means
            // the shards never exchange anything and every horizon is
            // infinite — the "parallelism" is really independent runs.
            // Reject it so a miswired partition fails loudly instead of
            // silently degenerating.
            errors.push(format!(
                "partition has {} shards but no cross-shard links; \
                 conservative windows need at least one cut",
                self.n_shards
            ));
        }
        if !errors.is_empty() {
            return Err(TopologyError(errors));
        }
        Ok(CutPlan {
            n_shards: self.n_shards,
            cuts,
        })
    }
}

/// One link crossing a shard boundary.
#[derive(Clone, Copy, Debug)]
pub struct CutLink {
    /// Global link id.
    pub link: LinkId,
    /// Shard owning the channel (the sending side).
    pub from_shard: usize,
    /// Shard hosting the listeners (the receiving side).
    pub to_shard: usize,
    /// Fixed propagation delay — the conservative lookahead.
    pub delay: Duration,
}

/// A validated partition's cut-link plan, consumed by the coordinator.
#[derive(Clone, Debug)]
pub struct CutPlan {
    /// Number of shards.
    pub n_shards: usize,
    /// Every link crossing a shard boundary.
    pub cuts: Vec<CutLink>,
}

/// One event on a shard's queue.
pub enum ShardEvent<F> {
    /// SDU `id` arrives at local source `source`.
    Push {
        /// Local source index.
        source: usize,
        /// SDU id.
        id: u64,
    },
    /// A frame reaches the far end of local link `link`.
    Arrive {
        /// Local link index.
        link: usize,
        /// Per-link arrival sequence (canonical same-instant order).
        seq: u64,
        /// The frame.
        frame: F,
        /// True if it survived the channel uncorrupted.
        clean: bool,
    },
    /// Re-poll endpoints at a previously requested instant.
    Wake,
}

/// A frame in flight across a cut link, in coordinator-routable form.
/// `(at, link, seq)` is the canonical injection order.
pub struct Inbound<F> {
    /// Arrival instant at the receiving shard.
    pub at: Instant,
    /// Global id of the cut link it travelled.
    pub link: usize,
    /// Per-link arrival sequence assigned at transmit.
    pub seq: u64,
    /// The frame.
    pub frame: F,
    /// True if it survived the channel uncorrupted.
    pub clean: bool,
}

/// Where a receiver's completed deliveries go (shard-local; forwarding
/// never crosses shards — co-located endpoints share a node, and a node
/// lives in exactly one shard).
enum Delivery {
    Collect(ColId),
    Forward(TxId),
}

struct ShardSource {
    gen: TrafficGen,
    tx: TxId,
    /// Local collector credited with pushes, if this shard has one.
    /// `None` on shards whose flow is accounted remotely (the sink
    /// shard's collector is pre-seeded with the push schedule instead).
    col: Option<ColId>,
    /// Global source ordinal — the canonical same-instant dispatch key.
    ordinal: u64,
}

/// One local link: an owned channel (intra-shard or outbound cut) or an
/// inbound stub.
struct LinkSlot {
    global: usize,
    dir: &'static str,
    /// `None` = inbound stub (listeners only).
    channel: Option<Channel>,
    /// Owned cut link: arrivals are exported as batches, not scheduled.
    export: bool,
    senders: Vec<EndpointId>,
    listeners: Vec<EndpointId>,
    /// Next per-link arrival sequence (owned links only).
    next_seq: u64,
}

/// Builder for one shard's slice of a simulation. Mirrors
/// [`crate::SimBuilder`]'s registration API, with global link ids and
/// explicit cut-link roles. Register links in ascending global-id order
/// and endpoints in global registration order: each shard's pump order
/// must be the global order restricted to the shard.
pub struct ShardBuilder<T, R, C> {
    payload_bytes: usize,
    links: Vec<LinkSlot>,
    txs: Vec<T>,
    tx_link: Vec<usize>,
    rxs: Vec<R>,
    rx_link: Vec<usize>,
    rx_delivery: Vec<Option<Delivery>>,
    rx_drain_after: Vec<Option<usize>>,
    collectors: Vec<C>,
    expects: Vec<(ColId, u64)>,
    sources: Vec<ShardSource>,
}

impl<T, R, C> ShardBuilder<T, R, C>
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
{
    /// Start a build with the given SDU payload size.
    pub fn new(payload_bytes: usize) -> Self {
        ShardBuilder {
            payload_bytes,
            links: Vec::new(),
            txs: Vec::new(),
            tx_link: Vec::new(),
            rxs: Vec::new(),
            rx_link: Vec::new(),
            rx_delivery: Vec::new(),
            rx_drain_after: Vec::new(),
            collectors: Vec::new(),
            expects: Vec::new(),
            sources: Vec::new(),
        }
    }

    fn push_link(&mut self, slot: LinkSlot) -> LinkId {
        self.links.push(slot);
        LinkId(self.links.len() - 1)
    }

    /// Add an intra-shard link carried by `channel` (global id `global`).
    pub fn link(&mut self, global: usize, channel: Channel, dir: &'static str) -> LinkId {
        self.push_link(LinkSlot {
            global,
            dir,
            channel: Some(channel),
            export: false,
            senders: Vec::new(),
            listeners: Vec::new(),
            next_seq: 0,
        })
    }

    /// Add an outbound cut link: this shard owns the channel; arrivals
    /// are exported to the coordinator instead of scheduled locally.
    pub fn cut_out(&mut self, global: usize, channel: Channel, dir: &'static str) -> LinkId {
        self.push_link(LinkSlot {
            global,
            dir,
            channel: Some(channel),
            export: true,
            senders: Vec::new(),
            listeners: Vec::new(),
            next_seq: 0,
        })
    }

    /// Add an inbound cut-link stub: no channel, only listeners for
    /// arrivals the coordinator injects.
    pub fn cut_in(&mut self, global: usize) -> LinkId {
        self.push_link(LinkSlot {
            global,
            dir: "",
            channel: None,
            export: false,
            senders: Vec::new(),
            listeners: Vec::new(),
            next_seq: 0,
        })
    }

    /// Host a sending endpoint transmitting on local `link`.
    pub fn tx(&mut self, link: LinkId, endpoint: T) -> TxId {
        let id = TxId(self.txs.len());
        self.txs.push(endpoint);
        self.tx_link.push(link.0);
        if let Some(slot) = self.links.get_mut(link.0) {
            slot.senders.push(EndpointId::Tx(id));
        }
        id
    }

    /// Host a receiving endpoint transmitting its control frames on
    /// local `link`.
    pub fn rx(&mut self, link: LinkId, endpoint: R) -> RxId {
        let id = RxId(self.rxs.len());
        self.rxs.push(endpoint);
        self.rx_link.push(link.0);
        if let Some(slot) = self.links.get_mut(link.0) {
            slot.senders.push(EndpointId::Rx(id));
        }
        id
    }

    /// Host a receiving endpoint that never transmits: a pure listener
    /// (a protocol without reverse traffic, or a receiver whose control
    /// path lives on another shard's links).
    pub fn rx_silent(&mut self, endpoint: R) -> RxId {
        let id = RxId(self.rxs.len());
        self.rxs.push(endpoint);
        self.rx_link.push(usize::MAX);
        id
    }

    /// Deliver local `link`'s arrivals to `endpoint`.
    pub fn listen(&mut self, link: LinkId, endpoint: impl Into<EndpointId>) {
        if let Some(slot) = self.links.get_mut(link.0) {
            slot.listeners.push(endpoint.into());
        }
    }

    /// Register a collector.
    pub fn collector(&mut self, collector: C) -> ColId {
        self.collectors.push(collector);
        ColId(self.collectors.len() - 1)
    }

    /// Shard-local completion condition: `col` must reach `total`
    /// unique deliveries (the sink shard's half of "safe delivery").
    pub fn expect(&mut self, col: ColId, total: u64) {
        self.expects.push((col, total));
    }

    /// Feed `gen`'s SDUs into `tx`. `col` credits pushes locally when
    /// the accounting collector lives on this shard; `ordinal` is the
    /// source's global registration index (canonical dispatch key).
    pub fn source(&mut self, gen: TrafficGen, tx: TxId, col: Option<ColId>, ordinal: u64) {
        self.sources.push(ShardSource {
            gen,
            tx,
            col,
            ordinal,
        });
    }

    /// Terminal receiver: `rx`'s deliveries credit `col`.
    pub fn deliver(&mut self, rx: RxId, col: ColId) {
        if self.rx_delivery.len() <= rx.0 {
            self.rx_delivery.resize_with(rx.0 + 1, || None);
        }
        self.rx_delivery[rx.0] = Some(Delivery::Collect(col));
    }

    /// Store-and-forward receiver: `rx`'s deliveries push into `tx`
    /// (both endpoints co-located on this shard by construction).
    pub fn forward(&mut self, rx: RxId, tx: TxId) {
        if self.rx_delivery.len() <= rx.0 {
            self.rx_delivery.resize_with(rx.0 + 1, || None);
        }
        self.rx_delivery[rx.0] = Some(Delivery::Forward(tx));
    }

    /// Drain `rx`'s deliveries right after local `link` is pumped
    /// (default: after the last local link).
    pub fn drain_after(&mut self, rx: RxId, link: LinkId) {
        if self.rx_drain_after.len() <= rx.0 {
            self.rx_drain_after.resize_with(rx.0 + 1, || None);
        }
        self.rx_drain_after[rx.0] = Some(link.0);
    }

    /// Validate the shard wiring and produce a runnable [`ShardSim`].
    pub fn build(mut self) -> Result<ShardSim<T, R, C>, TopologyError> {
        let mut errors = Vec::new();
        if self.links.is_empty() {
            errors.push("shard has no links".to_string());
        }
        for w in self.links.windows(2) {
            if w[1].global <= w[0].global {
                errors.push(format!(
                    "links must be registered in ascending global-id order \
                     (got {} after {})",
                    w[1].global, w[0].global
                ));
            }
        }
        for (i, slot) in self.links.iter().enumerate() {
            if slot.channel.is_none() {
                if !slot.senders.is_empty() {
                    errors.push(format!(
                        "local link {i} (global {}) is an inbound stub but has senders",
                        slot.global
                    ));
                }
                if slot.listeners.is_empty() {
                    errors.push(format!("inbound cut link {} has no listeners", slot.global));
                }
            }
            if slot.export && !slot.listeners.is_empty() {
                errors.push(format!(
                    "outbound cut link {} cannot have local listeners",
                    slot.global
                ));
            }
        }
        for (i, &l) in self.tx_link.iter().enumerate() {
            if l >= self.links.len() {
                errors.push(format!("tx {i} transmits on an unknown link"));
            }
        }
        for (i, &l) in self.rx_link.iter().enumerate() {
            // `usize::MAX` marks a silent receiver with no transmit link.
            if l != usize::MAX && l >= self.links.len() {
                errors.push(format!("rx {i} transmits on an unknown link"));
            }
        }
        self.rx_delivery.resize_with(self.rxs.len(), || None);
        self.rx_drain_after.resize_with(self.rxs.len(), || None);
        let mut deliveries = Vec::with_capacity(self.rxs.len());
        for (i, d) in self.rx_delivery.drain(..).enumerate() {
            match d {
                Some(Delivery::Forward(t)) => {
                    if t.0 >= self.txs.len() {
                        errors.push(format!("rx {i} forwards into an unknown tx"));
                    }
                    deliveries.push(Delivery::Forward(t));
                }
                Some(Delivery::Collect(c)) => {
                    if c.0 >= self.collectors.len() {
                        errors.push(format!("rx {i} delivers to an unknown collector"));
                    }
                    deliveries.push(Delivery::Collect(c));
                }
                None => {
                    errors.push(format!("rx {i} has no delivery target"));
                    deliveries.push(Delivery::Collect(ColId(0)));
                }
            }
        }
        for (i, s) in self.sources.iter().enumerate() {
            if s.tx.0 >= self.txs.len() {
                errors.push(format!("source {i} feeds an unknown tx"));
            }
            if s.col.is_some_and(|c| c.0 >= self.collectors.len()) {
                errors.push(format!("source {i} uses an unknown collector"));
            }
        }
        for (i, (c, _)) in self.expects.iter().enumerate() {
            if c.0 >= self.collectors.len() {
                errors.push(format!("expect {i} references an unknown collector"));
            }
        }
        if !errors.is_empty() {
            return Err(TopologyError(errors));
        }
        let links = self.links.len();
        let mut drains: Vec<Vec<RxId>> = vec![Vec::new(); links];
        for (i, after) in self.rx_drain_after.iter().enumerate() {
            let li = after.unwrap_or(links - 1);
            drains[li.min(links - 1)].push(RxId(i));
        }
        let mut q = EventQueue::new();
        q.set_profiler(profile::current());
        Ok(ShardSim {
            payload: Bytes::from(vec![0u8; self.payload_bytes]),
            links: self.links,
            txs: self.txs,
            rxs: self.rxs,
            deliveries,
            drains,
            collectors: self.collectors,
            expects: self.expects,
            sources: self.sources,
            q,
            wake: None,
            trace: telemetry::global_handle("channel"),
            last_event_at: Instant::ZERO,
            done_since: None,
            failed_at: None,
            events: 0,
            round: Vec::new(),
            next_round: Vec::new(),
        })
    }
}

/// Everything a finished shard hands back for report assembly, in
/// registration order (mirrors [`crate::Outcome`], restricted to the
/// shard).
pub struct FinishedShard<T, R, C> {
    /// The senders.
    pub txs: Vec<T>,
    /// The receivers.
    pub rxs: Vec<R>,
    /// The collectors.
    pub collectors: Vec<C>,
    /// SDUs issued per local source.
    pub issued: Vec<u64>,
    /// SDUs each local source would issue in total.
    pub targets: Vec<u64>,
    /// Global finish instant (coordinator-decided).
    pub finished_at: Instant,
    /// True if the deadline fired before completion.
    pub deadline_hit: bool,
}

/// One granted window's result, reported to the coordinator.
pub struct WindowSummary<F> {
    /// Simulated time this shard has now committed up to (the grant, or
    /// the failure instant if a sender declared link failure mid-window).
    pub committed: Instant,
    /// Earliest still-queued local event, for the coordinator's
    /// finish-time lower bound.
    pub next_event: Option<Instant>,
    /// Instant the shard-local completion condition last became true
    /// (and has held since); `None` while incomplete.
    pub done_since: Option<Instant>,
    /// Instant a local sender declared link failure, if any.
    pub failed_at: Option<Instant>,
    /// Most recent locally processed event instant.
    pub last_event_at: Instant,
    /// Events processed this window: pushes and arrivals only. Wakes
    /// are engine bookkeeping whose count varies with the window
    /// schedule, so excluding them keeps the sum over shards invariant
    /// across shard counts.
    pub events: u64,
    /// Events still pending on the shard queue at window end.
    pub queue_depth: u64,
    /// Frames that crossed outbound cut links this window, sorted by
    /// `(at, link, seq)`.
    pub outbound: Vec<Inbound<F>>,
}

/// One shard's runnable slice of a simulation: a serial-identical pump
/// over local links, driven in coordinator-granted windows.
pub struct ShardSim<T, R, C>
where
    T: TxEndpoint,
{
    payload: Bytes,
    links: Vec<LinkSlot>,
    txs: Vec<T>,
    rxs: Vec<R>,
    deliveries: Vec<Delivery>,
    drains: Vec<Vec<RxId>>,
    collectors: Vec<C>,
    expects: Vec<(ColId, u64)>,
    sources: Vec<ShardSource>,
    q: EventQueue<ShardEvent<T::Frame>>,
    wake: Option<(Instant, EventId)>,
    trace: telemetry::Trace,
    last_event_at: Instant,
    done_since: Option<Instant>,
    failed_at: Option<Instant>,
    /// Cumulative pushes + arrivals dispatched (wakes excluded);
    /// windows report the per-window delta.
    events: u64,
    /// Scratch buffers for canonical same-instant dispatch.
    round: Vec<ShardEvent<T::Frame>>,
    next_round: Vec<ShardEvent<T::Frame>>,
}

/// Canonical same-instant dispatch key: pushes first (by global source
/// ordinal, then SDU id), then arrivals (by global link id, then
/// per-link arrival sequence), then wakes.
fn canon_key<F>(links: &[LinkSlot], sources: &[ShardSource], ev: &ShardEvent<F>) -> (u8, u64, u64) {
    match ev {
        ShardEvent::Push { source, id } => (0, sources[*source].ordinal, *id),
        ShardEvent::Arrive { link, seq, .. } => (1, links[*link].global as u64, *seq),
        ShardEvent::Wake => (2, 0, 0),
    }
}

impl<T, R, C> ShardSim<T, R, C>
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
{
    /// Start all endpoints at t = 0 and schedule the initial events
    /// (first push per source, one wake). Call once, before the first
    /// window.
    pub fn start(&mut self) {
        for t in self.txs.iter_mut() {
            t.start(Instant::ZERO);
        }
        for r in self.rxs.iter_mut() {
            r.start(Instant::ZERO);
        }
        for (s, src) in self.sources.iter_mut().enumerate() {
            if let Some((at, id)) = src.gen.next() {
                self.q.schedule(at, ShardEvent::Push { source: s, id });
            }
        }
        self.wake = Some((
            Instant::ZERO,
            self.q.schedule(Instant::ZERO, ShardEvent::Wake),
        ));
    }

    /// Schedule coordinator-routed cut-link arrivals. The caller sorts
    /// by `(at, link, seq)`; injection order is insertion order, and the
    /// canonical dispatch key makes same-instant placement deterministic
    /// regardless.
    pub fn inject(&mut self, arrivals: Vec<Inbound<T::Frame>>) {
        for a in arrivals {
            let local = self
                .links
                .binary_search_by_key(&a.link, |l| l.global)
                .unwrap_or_else(|_| panic!("injected arrival on unknown global link {}", a.link));
            self.q.schedule(
                a.at,
                ShardEvent::Arrive {
                    link: local,
                    seq: a.seq,
                    frame: a.frame,
                    clean: a.clean,
                },
            );
        }
    }

    /// The shard-local completion condition: every local source
    /// exhausted, every expected collector total met, every local
    /// sender drained.
    fn locally_done(&self) -> bool {
        self.sources.iter().all(|s| s.gen.issued() >= s.gen.total())
            && self
                .expects
                .iter()
                .all(|(c, n)| self.collectors[c.0].delivered_unique() >= *n)
            && self.txs.iter().all(|t| t.buffered() == 0)
    }

    /// Process every queued event with `at ≤ grant`. With
    /// `stop_on_done` (single-shard runs, where local done is global
    /// done) the window also ends at the first instant the completion
    /// condition holds, exactly like the serial engine.
    pub fn run_window(&mut self, grant: Instant, stop_on_done: bool) -> WindowSummary<T::Frame> {
        let mut outbound: Vec<Inbound<T::Frame>> = Vec::new();
        let mut committed = grant;
        let events_before = self.events;
        while let Some(at) = self.q.next_instant() {
            if at > grant {
                break;
            }
            let (now, first) = self.q.pop().expect("peeked event pops");
            self.last_event_at = now;
            self.dispatch_instant(now, first);
            self.pump(now, &mut outbound);
            if self.locally_done() {
                if self.done_since.is_none() {
                    self.done_since = Some(now);
                }
            } else {
                self.done_since = None;
            }
            if self.txs.iter().any(|t| t.is_failed()) {
                self.failed_at = Some(now);
                committed = now;
                break;
            }
            if stop_on_done && self.done_since.is_some() {
                committed = now;
                break;
            }
            self.rearm_wake(now);
        }
        outbound.sort_by_key(|a| (a.at, a.link, a.seq));
        WindowSummary {
            committed,
            next_event: self.q.next_instant(),
            done_since: self.done_since,
            failed_at: self.failed_at,
            last_event_at: self.last_event_at,
            events: self.events - events_before,
            queue_depth: self.q.len() as u64,
            outbound,
        }
    }

    /// Drain every event at `now` and dispatch in canonical order,
    /// iterating rounds for same-instant cascades (a dispatched push
    /// can schedule its source's next push at the same instant).
    fn dispatch_instant(&mut self, now: Instant, first: ShardEvent<T::Frame>) {
        let mut round = std::mem::take(&mut self.round);
        let mut next = std::mem::take(&mut self.next_round);
        round.push(first);
        while let Some(ev) = self.q.pop_at(now) {
            round.push(ev);
        }
        while !round.is_empty() {
            round.sort_by_key(|ev| canon_key(&self.links, &self.sources, ev));
            for ev in round.drain(..) {
                self.dispatch(now, ev);
            }
            while let Some(ev) = self.q.pop_at(now) {
                next.push(ev);
            }
            std::mem::swap(&mut round, &mut next);
        }
        self.round = round;
        self.next_round = next;
    }

    fn dispatch(&mut self, now: Instant, ev: ShardEvent<T::Frame>) {
        match ev {
            ShardEvent::Push { source, id } => {
                self.events += 1;
                let src = &mut self.sources[source];
                if let Some(col) = src.col {
                    self.collectors[col.0].on_push(now, id);
                }
                self.txs[src.tx.0].push(id, self.payload.clone());
                if let Some((at, nid)) = src.gen.next() {
                    self.q
                        .schedule(at.max(now), ShardEvent::Push { source, id: nid });
                }
            }
            ShardEvent::Arrive {
                link, frame, clean, ..
            } => {
                self.events += 1;
                match self.links[link].listeners.as_slice() {
                    [ep] => match *ep {
                        EndpointId::Tx(t) => self.txs[t.0].handle_frame(now, frame, clean),
                        EndpointId::Rx(r) => self.rxs[r.0].handle_frame(now, frame, clean),
                    },
                    listeners => {
                        let last = listeners.len().saturating_sub(1);
                        let mut frame = Some(frame);
                        for (k, ep) in listeners.iter().enumerate() {
                            let f = if k == last {
                                frame.take().expect("frame consumed once")
                            } else {
                                frame.as_ref().expect("frame present").clone()
                            };
                            match *ep {
                                EndpointId::Tx(t) => self.txs[t.0].handle_frame(now, f, clean),
                                EndpointId::Rx(r) => self.rxs[r.0].handle_frame(now, f, clean),
                            }
                        }
                    }
                }
            }
            ShardEvent::Wake => {
                if self.wake.is_some_and(|(t, _)| t <= now) {
                    self.wake = None;
                }
            }
        }
    }

    /// The serial engine's pump, restricted to local links: timers,
    /// per-link serve/transmit (exported on cut links), drains.
    fn pump(&mut self, now: Instant, outbound: &mut Vec<Inbound<T::Frame>>) {
        for t in self.txs.iter_mut() {
            t.on_timeout(now);
        }
        for r in self.rxs.iter_mut() {
            r.on_timeout(now);
        }
        for li in 0..self.links.len() {
            while let Some(channel) = self.links[li].channel.as_ref() {
                if !channel.idle(now) {
                    break;
                }
                let mut found = None;
                for ep in &self.links[li].senders {
                    found = match *ep {
                        EndpointId::Tx(t) => {
                            self.txs[t.0].poll_transmit(now).map(|f| (T::meta(&f), f))
                        }
                        EndpointId::Rx(r) => {
                            self.rxs[r.0].poll_transmit(now).map(|f| (R::meta(&f), f))
                        }
                    };
                    if found.is_some() {
                        break;
                    }
                }
                let Some((meta, frame)) = found else {
                    break;
                };
                let slot = &mut self.links[li];
                let channel = slot.channel.as_mut().expect("owned link has channel");
                match channel.transmit(now, meta.bytes, meta.is_info) {
                    Fate::Arrives { at, clean } => {
                        let seq = slot.next_seq;
                        slot.next_seq += 1;
                        if slot.export {
                            outbound.push(Inbound {
                                at,
                                link: slot.global,
                                seq,
                                frame,
                                clean,
                            });
                        } else {
                            self.q.schedule(
                                at,
                                ShardEvent::Arrive {
                                    link: li,
                                    seq,
                                    frame,
                                    clean,
                                },
                            );
                        }
                    }
                    Fate::Lost => {
                        let dir = slot.dir;
                        self.trace.emit(now, || TraceEvent::ChannelDrop { dir });
                    }
                }
            }
            for r in 0..self.drains[li].len() {
                let rid = self.drains[li][r];
                while let Some((id, _len)) = self.rxs[rid.0].poll_deliver(now) {
                    match self.deliveries[rid.0] {
                        Delivery::Collect(c) => self.collectors[c.0].on_deliver(now, id),
                        Delivery::Forward(t) => {
                            self.txs[t.0].push(id, self.payload.clone());
                        }
                    }
                }
            }
        }
    }

    /// Re-arm the single wake at the earliest pending protocol instant
    /// over local endpoints and owned channels — the serial engine's
    /// rule verbatim, restricted to the shard.
    fn rearm_wake(&mut self, now: Instant) {
        let mut want: Option<Instant> = None;
        let mut consider = |c: Option<Instant>| {
            if let Some(t) = c {
                want = Some(want.map_or(t, |w| w.min(t)));
            }
        };
        for t in &self.txs {
            consider(t.poll_timeout());
        }
        for r in &self.rxs {
            consider(r.poll_timeout());
        }
        for slot in &self.links {
            if let Some(c) = &slot.channel {
                if !c.idle(now) {
                    consider(Some(c.free_at()));
                }
            }
        }
        let Some(t) = want else {
            return;
        };
        let t = if t > now {
            Some(t)
        } else {
            self.links
                .iter()
                .filter_map(|s| s.channel.as_ref())
                .filter(|c| !c.idle(now))
                .map(|c| c.free_at())
                .min()
        };
        if let Some(t) = t {
            debug_assert!(t > now, "wake must advance time");
            match self.wake {
                Some((at, id)) if t < at => {
                    let id = self.q.reschedule(id, t).expect("tracked wake is pending");
                    self.wake = Some((t, id));
                }
                None => {
                    self.wake = Some((t, self.q.schedule(t, ShardEvent::Wake)));
                }
                Some(_) => {}
            }
        }
    }

    /// The queue's profiling snapshot so far.
    pub fn queue_profile(&self) -> QueueProfile {
        self.q.profile()
    }

    /// Consume the shard into its report-assembly pieces.
    pub fn into_finished(self, finished_at: Instant, deadline_hit: bool) -> FinishedShard<T, R, C> {
        FinishedShard {
            issued: self.sources.iter().map(|s| s.gen.issued()).collect(),
            targets: self.sources.iter().map(|s| s.gen.total()).collect(),
            txs: self.txs,
            rxs: self.rxs,
            collectors: self.collectors,
            finished_at,
            deadline_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::ErrorModel;
    use crate::topology::{LinkSpec, NodeRole};

    fn chain_topo(hops: usize) -> Topology {
        let mut t = Topology::default();
        t.roles.push(NodeRole::Source);
        for _ in 1..hops {
            t.roles.push(NodeRole::Relay);
        }
        t.roles.push(NodeRole::Sink);
        for i in 0..hops {
            t.links.push(LinkSpec {
                from: NodeId(i),
                to: NodeId(i + 1),
                dir: "fwd",
            });
            t.links.push(LinkSpec {
                from: NodeId(i + 1),
                to: NodeId(i),
                dir: "rev",
            });
        }
        t
    }

    fn fixed_delays(n: usize, ms: u64) -> Vec<DelayModel> {
        vec![DelayModel::Fixed(Duration::from_millis(ms)); n]
    }

    #[test]
    fn contiguous_partition_is_balanced_and_total() {
        let p = Partition::contiguous(5, 2);
        assert_eq!(p.n_shards(), 2);
        assert_eq!(p.shard_of(NodeId(0)), Some(0));
        assert_eq!(p.shard_of(NodeId(2)), Some(0));
        assert_eq!(p.shard_of(NodeId(3)), Some(1));
        assert_eq!(p.shard_of(NodeId(4)), Some(1));
        assert_eq!(p.shard_of(NodeId(5)), None);
    }

    #[test]
    fn plan_accepts_chain_and_finds_cuts() {
        let topo = chain_topo(3);
        let p = Partition::contiguous(4, 2);
        let plan = p
            .plan(&topo, &fixed_delays(topo.link_count(), 13))
            .expect("valid partition");
        assert_eq!(plan.n_shards, 2);
        // Nodes 0,1 | 2,3: hop 1 (links 2 fwd, 3 rev) is cut.
        assert_eq!(plan.cuts.len(), 2);
        assert_eq!(plan.cuts[0].link, LinkId(2));
        assert_eq!(plan.cuts[0].from_shard, 0);
        assert_eq!(plan.cuts[0].to_shard, 1);
        assert_eq!(plan.cuts[1].link, LinkId(3));
        assert_eq!(plan.cuts[1].from_shard, 1);
        assert_eq!(plan.cuts[1].to_shard, 0);
        assert_eq!(plan.cuts[0].delay, Duration::from_millis(13));
    }

    #[test]
    fn plan_rejects_wrong_length_and_range() {
        let topo = chain_topo(2);
        let err = Partition::explicit(vec![0, 1], 2)
            .plan(&topo, &fixed_delays(topo.link_count(), 1))
            .expect_err("3 nodes, 2 assigned");
        assert!(err.to_string().contains("assigns 2 nodes"), "{err}");
        let err = Partition::explicit(vec![0, 5, 1], 2)
            .plan(&topo, &fixed_delays(topo.link_count(), 1))
            .expect_err("shard 5 of 2");
        assert!(
            err.to_string().contains("node 1 assigned to shard 5"),
            "{err}"
        );
    }

    #[test]
    fn plan_rejects_empty_shards() {
        let topo = chain_topo(2);
        let err = Partition::explicit(vec![0, 0, 0], 2)
            .plan(&topo, &fixed_delays(topo.link_count(), 1))
            .expect_err("shard 1 empty");
        assert!(err.to_string().contains("shard 1 has no nodes"), "{err}");
        // Every node in exactly one shard, no shard empty: the valid case.
        assert!(Partition::explicit(vec![0, 0, 1], 2)
            .plan(&topo, &fixed_delays(topo.link_count(), 1))
            .is_ok());
    }

    #[test]
    fn plan_rejects_zero_delay_cut_links() {
        let topo = chain_topo(2);
        let mut delays = fixed_delays(topo.link_count(), 1);
        delays[2] = DelayModel::Fixed(Duration::ZERO); // hop 1 fwd: cut
        let err = Partition::explicit(vec![0, 0, 1], 2)
            .plan(&topo, &delays)
            .expect_err("zero-delay cut link");
        assert!(
            err.to_string()
                .contains("cut link 2 has zero propagation delay"),
            "{err}"
        );
        // The same zero delay on an intra-shard link is fine.
        let mut delays = fixed_delays(topo.link_count(), 1);
        delays[0] = DelayModel::Fixed(Duration::ZERO); // hop 0: internal
        assert!(Partition::explicit(vec![0, 0, 1], 2)
            .plan(&topo, &delays)
            .is_ok());
    }

    #[test]
    fn plan_rejects_multi_shard_partition_without_cuts() {
        // Two disconnected nodes: a 2-shard split has no cross-shard
        // links, so there is no lookahead to grant windows by.
        let mut topo = Topology::default();
        topo.roles.push(NodeRole::Source);
        topo.roles.push(NodeRole::Sink);
        let err = Partition::explicit(vec![0, 1], 2)
            .plan(&topo, &[])
            .expect_err("no cross-shard links");
        assert!(err.to_string().contains("no cross-shard links"), "{err}");
        // The same topology in one shard is fine: single-shard runs
        // never need cuts.
        assert!(Partition::explicit(vec![0, 0], 1).plan(&topo, &[]).is_ok());
    }

    #[test]
    fn builder_rejects_bad_cut_wiring() {
        struct NoTx;
        impl TxEndpoint for NoTx {
            type Frame = u64;
            fn start(&mut self, _: Instant) {}
            fn push(&mut self, _: u64, _: Bytes) -> bool {
                false
            }
            fn poll_transmit(&mut self, _: Instant) -> Option<u64> {
                None
            }
            fn handle_frame(&mut self, _: Instant, _: u64, _: bool) {}
            fn on_timeout(&mut self, _: Instant) {}
            fn poll_timeout(&self) -> Option<Instant> {
                None
            }
            fn buffered(&self) -> usize {
                0
            }
            fn meta(_: &u64) -> crate::endpoint::FrameMeta {
                crate::endpoint::FrameMeta {
                    bytes: 1,
                    is_info: true,
                }
            }
            fn drain_holding(&mut self, _: &mut Vec<f64>) {}
            fn transmissions(&self) -> u64 {
                0
            }
            fn retransmissions(&self) -> u64 {
                0
            }
        }
        struct NoRx;
        impl RxEndpoint for NoRx {
            type Frame = u64;
            fn start(&mut self, _: Instant) {}
            fn handle_frame(&mut self, _: Instant, _: u64, _: bool) {}
            fn on_timeout(&mut self, _: Instant) {}
            fn poll_timeout(&self) -> Option<Instant> {
                None
            }
            fn poll_transmit(&mut self, _: Instant) -> Option<u64> {
                None
            }
            fn poll_deliver(&mut self, _: Instant) -> Option<(u64, usize)> {
                None
            }
            fn occupancy(&self) -> usize {
                0
            }
            fn meta(_: &u64) -> crate::endpoint::FrameMeta {
                crate::endpoint::FrameMeta {
                    bytes: 1,
                    is_info: true,
                }
            }
        }
        struct NoCol;
        impl Collect for NoCol {
            fn on_push(&mut self, _: Instant, _: u64) {}
            fn on_deliver(&mut self, _: Instant, _: u64) {}
            fn on_holding(&mut self, _: &[f64]) {}
            fn sample(&mut self, _: Instant, _: usize, _: usize, _: f64) {}
            fn delivered_unique(&self) -> u64 {
                0
            }
        }

        // A sender on an inbound stub, a listener on an outbound cut
        // link, and descending global-id registration: all rejected.
        let mut b: ShardBuilder<NoTx, NoRx, NoCol> = ShardBuilder::new(8);
        let chan = || {
            Channel::new(
                1e6,
                DelayModel::Fixed(Duration::from_millis(1)),
                ErrorModel::Clean,
            )
        };
        let out = b.cut_out(3, chan(), "fwd");
        let stub = b.cut_in(1); // descending: 1 after 3
        b.tx(stub, NoTx);
        b.listen(out, EndpointId::Rx(RxId(0)));
        let r = b.rx(out, NoRx);
        b.deliver(r, ColId(0)); // unknown collector
        let err = match b.build() {
            Err(e) => e,
            Ok(_) => panic!("invalid shard wiring accepted"),
        };
        let msg = err.to_string();
        assert!(msg.contains("ascending global-id order"), "{msg}");
        assert!(msg.contains("inbound stub but has senders"), "{msg}");
        assert!(msg.contains("cannot have local listeners"), "{msg}");
        assert!(msg.contains("delivers to an unknown collector"), "{msg}");
    }
}
